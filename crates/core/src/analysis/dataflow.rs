//! Dataflow/provenance pass (`P1xx`): abstract interpretation of a
//! schedule over *provenance* instead of payloads.
//!
//! Every node's buffer is modeled as a sorted list of disjoint **runs**.
//! A run records, for a contiguous span, which original contributions it
//! holds: a contributor set (bitset over DPUs) and the contributor-side
//! element index of its first element (`elem0`; indices advance one per
//! element, mirroring the elementwise collectives). Regions outside any
//! run are *uninitialized* — never written and not an input location, so
//! they hold the buffer's default fill in the functional executor.
//!
//! The interpreter mirrors [`crate::exec::ExecMachine`] exactly: the same
//! initial placement (offset 0, or piece `i` for AllGather/Gather), the
//! same snapshot semantics within a step (payloads are read before any
//! delivery lands), the same delivery order. A `combine` delivery unions
//! contributor sets and requires element alignment and disjointness — a
//! misaligned or double-counted reduction can never equal the reference
//! reduction for `Sum`, so both are errors. After the last step, each
//! node's declared result spans are checked against the collective's
//! expected provenance: AllReduce must hold *every* contributor at every
//! element, AllGather must hold exactly contributor `k` at piece `k`, and
//! so on per kind.
//!
//! The interpreter state is exposed to the incremental verifier
//! ([`super::incremental`]) as [`DataflowState`]: a copy-on-write vector
//! of per-node run lists (each behind an [`Arc`]) folded one step at a
//! time by [`DataflowState::feed_step`]. A checkpoint (plain `clone`) is
//! O(nodes) pointer copies, and comparing two states short-circuits on
//! pointer equality per node — which is what makes the delta re-lint's
//! convergence test cheap after a repair that only touched a few steps.

use std::sync::Arc;

use crate::collective::CollectiveKind;
use crate::schedule::{ScheduleHeader, ScheduleView, Span, StepRef};

use super::diagnostics::{Diagnostic, Location};

/// `P101` — a transfer reads a region no prior step initialized.
pub const UNINIT_READ: &str = "P101";
/// `P102` — a reduction lands on an uninitialized destination region.
pub const COMBINE_INTO_UNINIT: &str = "P102";
/// `P103` — a reduction combines misaligned element indices.
pub const MISALIGNED_COMBINE: &str = "P103";
/// `P104` — a reduction double-counts a contributor.
pub const DOUBLE_COUNTED: &str = "P104";
/// `P105` — a node's result has the wrong shape (length, or the
/// ReduceScatter partition is broken).
pub const RESULT_SHAPE: &str = "P105";
/// `P106` — a result region is uninitialized or carries the wrong
/// contributor set.
pub const RESULT_PROVENANCE: &str = "P106";
/// `P107` — a result region holds the right contributors but the wrong
/// elements.
pub const RESULT_ELEMENTS: &str = "P107";

/// A set of contributing DPUs, as a bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    fn empty(total: u32) -> NodeSet {
        NodeSet {
            words: vec![0; (total as usize).div_ceil(64).max(1)],
        }
    }

    fn single(total: u32, i: u32) -> NodeSet {
        let mut s = NodeSet::empty(total);
        s.words[i as usize / 64] |= 1 << (i % 64);
        s
    }

    fn full(total: u32) -> NodeSet {
        let mut s = NodeSet::empty(total);
        for i in 0..total {
            s.words[i as usize / 64] |= 1 << (i % 64);
        }
        s
    }

    fn contains(&self, i: u32) -> bool {
        self.words
            .get(i as usize / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    fn union(&self, other: &NodeSet) -> NodeSet {
        NodeSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    fn is_single(&self, i: u32) -> bool {
        self.count() == 1 && self.contains(i)
    }
}

/// A contiguous buffer region of known provenance. The element at buffer
/// index `b` (with `span.start <= b < span.end()`) holds the reduction of
/// element `elem0 + (b - span.start)` over every contributor in `contrib`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Run {
    span: Span,
    elem0: usize,
    contrib: Arc<NodeSet>,
}

impl Run {
    /// Contributor-side element index at buffer index `b`.
    fn elem_at(&self, b: usize) -> usize {
        self.elem0 + (b - self.span.start)
    }

    /// The run clipped to `span` (assumed overlapping).
    fn clip(&self, span: Span) -> Run {
        let start = self.span.start.max(span.start);
        let end = self.span.end().min(span.end());
        Run {
            span: Span::new(start, end - start),
            elem0: self.elem_at(start),
            contrib: self.contrib.clone(),
        }
    }
}

fn overlaps(a: Span, b: Span) -> bool {
    a.start < b.end() && b.start < a.end()
}

/// Data pieces of `runs` inside `span` (clipped) plus the uninitialized
/// gaps between them.
fn read(runs: &[Run], span: Span) -> (Vec<Run>, Vec<Span>) {
    let mut pieces = Vec::new();
    let mut gaps = Vec::new();
    let mut cursor = span.start;
    for r in runs {
        if !overlaps(r.span, span) {
            continue;
        }
        let c = r.clip(span);
        if c.span.start > cursor {
            gaps.push(Span::new(cursor, c.span.start - cursor));
        }
        cursor = c.span.end();
        pieces.push(c);
    }
    if cursor < span.end() {
        gaps.push(Span::new(cursor, span.end() - cursor));
    }
    (pieces, gaps)
}

/// Replaces the `span` portion of `runs` with `pieces` (disjoint,
/// contained in `span`). Boundary runs are split, preserving `elem0`.
fn splice(runs: &mut Vec<Run>, span: Span, pieces: Vec<Run>) {
    let mut kept: Vec<Run> = Vec::with_capacity(runs.len() + pieces.len());
    for r in runs.drain(..) {
        if !overlaps(r.span, span) {
            kept.push(r);
            continue;
        }
        if r.span.start < span.start {
            kept.push(Run {
                span: Span::new(r.span.start, span.start - r.span.start),
                elem0: r.elem0,
                contrib: r.contrib.clone(),
            });
        }
        if span.end() < r.span.end() {
            kept.push(Run {
                span: Span::new(span.end(), r.span.end() - span.end()),
                elem0: r.elem_at(span.end()),
                contrib: r.contrib,
            });
        }
    }
    kept.extend(pieces.into_iter().filter(|p| !p.span.is_empty()));
    kept.sort_by_key(|r| r.span.start);
    *runs = kept;
}

/// One pending delivery of a step (snapshot semantics: all payloads are
/// read before any delivery is applied, in transfer order, like the
/// executor).
struct Delivery {
    dst: usize,
    dst_span: Span,
    /// Payload pieces already shifted into destination coordinates.
    pieces: Vec<Run>,
    combine: bool,
    loc: Location,
}

/// The abstract interpreter's per-node provenance state, folded one step
/// at a time.
///
/// Cloning is a checkpoint: O(nodes) `Arc` bumps, with run storage shared
/// copy-on-write between the checkpoint and the live state. Equality
/// compares per-node run lists, short-circuiting on shared pointers, so
/// two states that diverged in only a few nodes compare in time
/// proportional to the divergence.
#[derive(Debug, Clone)]
pub(super) struct DataflowState {
    state: Vec<Arc<Vec<Run>>>,
}

impl PartialEq for DataflowState {
    fn eq(&self, other: &Self) -> bool {
        self.state.len() == other.state.len()
            && self
                .state
                .iter()
                .zip(&other.state)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl DataflowState {
    /// Initial placement, mirroring `ExecMachine::init`.
    pub(super) fn new(hdr: &ScheduleHeader<'_>) -> DataflowState {
        let total = hdr.geometry.total_dpus();
        let n = hdr.elems_per_node;
        let state = (0..total)
            .map(|i| {
                let offset = match hdr.kind {
                    CollectiveKind::AllGather | CollectiveKind::Gather => i as usize * n,
                    _ => 0,
                };
                Arc::new(if n == 0 || offset + n > hdr.buffer_len {
                    Vec::new()
                } else {
                    vec![Run {
                        span: Span::new(offset, n),
                        elem0: 0,
                        contrib: Arc::new(NodeSet::single(total, i)),
                    }]
                })
            })
            .collect();
        DataflowState { state }
    }

    /// Interprets one step at `(pi, si)` — snapshot reads, then deliveries
    /// in transfer order — appending any provenance findings to `diags`.
    pub(super) fn feed_step(
        &mut self,
        hdr: &ScheduleHeader<'_>,
        pi: usize,
        si: usize,
        step: StepRef<'_>,
        diags: &mut Vec<Diagnostic>,
    ) {
        let total = hdr.geometry.total_dpus();
        if total == 0 {
            return;
        }
        let mut deliveries: Vec<Delivery> = Vec::with_capacity(step.len());
        for (ti, t) in step.transfers().enumerate() {
            let loc = Location::at(pi, si, ti);
            // Transfers the structural/sync passes already rejected
            // cannot be interpreted; skip them rather than panic.
            if t.src.0 >= total
                || t.dsts.iter().any(|d| d.0 >= total)
                || t.src_span.len != t.dst_span.len
                || t.src_span.end() > hdr.buffer_len
                || t.dst_span.end() > hdr.buffer_len
            {
                continue;
            }
            let (pieces, gaps) = read(&self.state[t.src.index()], t.src_span);
            if let Some(gap) = gaps.first() {
                diags.push(Diagnostic::error(
                    UNINIT_READ,
                    loc.on(t.src.0),
                    format!(
                        "transfer reads uninitialized region {gap} of node {}'s buffer",
                        t.src
                    ),
                ));
            }
            let pieces: Vec<Run> = pieces
                .into_iter()
                .map(|p| Run {
                    span: Span::new(
                        t.dst_span.start + (p.span.start - t.src_span.start),
                        p.span.len,
                    ),
                    elem0: p.elem0,
                    contrib: p.contrib,
                })
                .collect();
            for &dst in t.dsts {
                deliveries.push(Delivery {
                    dst: dst.index(),
                    dst_span: t.dst_span,
                    pieces: pieces.clone(),
                    combine: t.combine,
                    loc,
                });
            }
        }
        for d in deliveries {
            let runs = Arc::make_mut(&mut self.state[d.dst]);
            if d.combine {
                apply_combine(runs, &d, diags);
            } else {
                splice(runs, d.dst_span, d.pieces);
            }
        }
    }

    /// The state as a JSON object summarizing each node's run list.
    pub(super) fn to_json(&self) -> String {
        let nodes: Vec<String> = self
            .state
            .iter()
            .map(|runs| {
                let covered: usize = runs.iter().map(|r| r.span.len).sum();
                format!("{{\"runs\":{},\"elems\":{covered}}}", runs.len())
            })
            .collect();
        format!("{{\"nodes\":[{}]}}", nodes.join(","))
    }
}

/// Runs the dataflow pass, appending findings to `diags`.
pub(super) fn check<S: ScheduleView>(schedule: &S, diags: &mut Vec<Diagnostic>) {
    let hdr = schedule.header();
    if hdr.geometry.total_dpus() == 0 {
        return;
    }
    let mut state = DataflowState::new(&hdr);
    for pi in 0..schedule.phase_count() {
        for si in 0..schedule.steps_in(pi) {
            state.feed_step(&hdr, pi, si, schedule.step(pi, si), diags);
        }
    }
    final_check(&hdr, &state, diags);
}

/// Reduces a delivery's payload pieces into a node's runs, in place.
fn apply_combine(runs: &mut Vec<Run>, d: &Delivery, diags: &mut Vec<Diagnostic>) {
    let dpu = d.dst as u32;
    let (mut warned_uninit, mut warned_align, mut warned_double) = (false, false, false);
    for p in &d.pieces {
        let (existing, gaps) = read(runs, p.span);
        if !gaps.is_empty() && !warned_uninit {
            warned_uninit = true;
            diags.push(Diagnostic::error(
                COMBINE_INTO_UNINIT,
                d.loc.on(dpu),
                format!(
                    "reduction lands on uninitialized region {} of node {dpu}'s buffer",
                    gaps[0]
                ),
            ));
        }
        let mut merged: Vec<Run> = Vec::with_capacity(existing.len() + gaps.len());
        for e in existing {
            let seg = e.span;
            let p_elem = p.elem_at(seg.start);
            if p_elem != e.elem0 && !warned_align {
                warned_align = true;
                diags.push(Diagnostic::error(
                    MISALIGNED_COMBINE,
                    d.loc.on(dpu),
                    format!(
                        "reduction at {seg} of node {dpu} combines element {p_elem} \
                         into element {}",
                        e.elem0
                    ),
                ));
            }
            if p.contrib.intersects(&e.contrib) && !warned_double {
                warned_double = true;
                diags.push(Diagnostic::error(
                    DOUBLE_COUNTED,
                    d.loc.on(dpu),
                    format!(
                        "reduction at {seg} of node {dpu} double-counts \
                         contributor(s) already folded in"
                    ),
                ));
            }
            merged.push(Run {
                span: seg,
                elem0: e.elem0,
                contrib: Arc::new(p.contrib.union(&e.contrib)),
            });
        }
        // Reducing into the default fill behaves like an overwrite for
        // `Sum`; model the gap as freshly written payload (the error
        // above already recorded the problem).
        for gap in gaps {
            merged.push(p.clip(gap));
        }
        splice(runs, p.span, merged);
    }
}

/// Expected provenance of one concatenated-result element.
enum Expect {
    /// Reduced over every participant; element index equals the concat
    /// position (AllReduce, Reduce at the root).
    FullAtConcat,
    /// Reduced over every participant; element index equals the *buffer*
    /// index (ReduceScatter's in-place owned pieces).
    FullInPlace,
    /// Exactly one contributor per block of `block` elements: concat
    /// block `j` holds contributor `owner(j)`'s elements starting at
    /// `elem0(j)`.
    Blocks {
        block: usize,
        owner: fn(usize, usize) -> u32,
        elem0: fn(usize, usize, usize) -> usize,
    },
}

/// Checks every node's declared result spans against the collective's
/// expected provenance.
pub(super) fn final_check(
    hdr: &ScheduleHeader<'_>,
    state: &DataflowState,
    diags: &mut Vec<Diagnostic>,
) {
    let total = hdr.geometry.total_dpus();
    if total == 0 {
        return;
    }
    let n = hdr.elems_per_node;
    if hdr.result_spans.len() != total as usize {
        return; // structural P010 already fired
    }

    let chunk = if hdr.kind == CollectiveKind::AllToAll {
        if total == 0 || !n.is_multiple_of(total as usize) {
            diags.push(Diagnostic::error(
                RESULT_SHAPE,
                Location::SCHEDULE,
                format!("All-to-All buffer ({n} elems/node) is not {total} even chunks"),
            ));
            return;
        }
        n / total as usize
    } else {
        0
    };

    for i in 0..total {
        let spans = &hdr.result_spans[i as usize];
        let got_len: usize = spans.iter().map(|s| s.len).sum();
        let expected_len = match hdr.kind {
            CollectiveKind::AllReduce | CollectiveKind::Broadcast | CollectiveKind::AllToAll => n,
            CollectiveKind::ReduceScatter => got_len, // partition checked globally below
            CollectiveKind::Reduce => usize::from(i == 0) * n,
            CollectiveKind::AllGather => total as usize * n,
            CollectiveKind::Gather => usize::from(i == 0) * total as usize * n,
        };
        if got_len != expected_len {
            diags.push(Diagnostic::error(
                RESULT_SHAPE,
                Location::node(i),
                format!("result holds {got_len} element(s), expected {expected_len}"),
            ));
            continue;
        }
        let expect = match hdr.kind {
            CollectiveKind::AllReduce | CollectiveKind::Reduce => Expect::FullAtConcat,
            CollectiveKind::ReduceScatter => Expect::FullInPlace,
            CollectiveKind::Broadcast => Expect::Blocks {
                block: n.max(1),
                owner: |_j, _i| 0,
                elem0: |_j, _i, _block| 0,
            },
            CollectiveKind::AllGather | CollectiveKind::Gather => Expect::Blocks {
                block: n.max(1),
                owner: |j, _i| j as u32,
                elem0: |_j, _i, _block| 0,
            },
            CollectiveKind::AllToAll => Expect::Blocks {
                block: chunk.max(1),
                owner: |j, _i| j as u32,
                elem0: |_j, i, block| i * block,
            },
        };
        check_node(hdr, state, i, &expect, diags);
    }

    // ReduceScatter's spans must partition the reduced vector exactly
    // once across all nodes.
    if hdr.kind == CollectiveKind::ReduceScatter {
        let mut owned = vec![0u8; n];
        for spans in hdr.result_spans {
            for span in spans {
                for idx in span.range() {
                    if idx < n {
                        owned[idx] = owned[idx].saturating_add(1);
                    }
                }
            }
        }
        if let Some(idx) = owned.iter().position(|&c| c != 1) {
            diags.push(Diagnostic::error(
                RESULT_SHAPE,
                Location::SCHEDULE,
                format!(
                    "ReduceScatter result pieces do not partition the vector: \
                     element {idx} is owned {} time(s)",
                    owned[idx]
                ),
            ));
        }
    }
}

/// Verifies one node's result spans against `expect`, walking runs and
/// expectation blocks piecewise.
fn check_node(
    hdr: &ScheduleHeader<'_>,
    state: &DataflowState,
    node: u32,
    expect: &Expect,
    diags: &mut Vec<Diagnostic>,
) {
    let total = hdr.geometry.total_dpus();
    let full = NodeSet::full(total);
    let runs = &state.state[node as usize];
    let mut k = 0usize; // concatenated result position
    let (mut flagged_prov, mut flagged_elem) = (false, false);
    for span in &hdr.result_spans[node as usize] {
        if span.end() > hdr.buffer_len {
            k += span.len;
            continue; // structural P010 already fired
        }
        let (pieces, gaps) = read(runs, *span);
        if let (Some(gap), false) = (gaps.first(), flagged_prov) {
            flagged_prov = true;
            diags.push(Diagnostic::error(
                RESULT_PROVENANCE,
                Location::node(node),
                format!("result region {gap} of node {node} is never written"),
            ));
        }
        for piece in pieces {
            // Split the piece at expectation-block boundaries so both
            // sides are constant/linear, then compare once per segment.
            let mut b = piece.span.start;
            while b < piece.span.end() {
                let kb = k + (b - span.start);
                let seg_end = match expect {
                    Expect::Blocks { block, .. } => {
                        let block_end_k = (kb / block + 1) * block;
                        piece.span.end().min(b + (block_end_k - kb))
                    }
                    _ => piece.span.end(),
                };
                let seg = Span::new(b, seg_end - b);
                let (want_full, want_owner, want_elem) = match expect {
                    Expect::FullAtConcat => (true, 0, kb),
                    Expect::FullInPlace => (true, 0, b),
                    Expect::Blocks {
                        block,
                        owner,
                        elem0,
                    } => {
                        let j = kb / block;
                        (
                            false,
                            owner(j, node as usize),
                            elem0(j, node as usize, *block) + (kb % block),
                        )
                    }
                };
                let prov_ok = if want_full {
                    *piece.contrib == full
                } else {
                    piece.contrib.is_single(want_owner)
                };
                if !prov_ok && !flagged_prov {
                    flagged_prov = true;
                    let want = if want_full {
                        format!("all {total} contributors")
                    } else {
                        format!("contributor {want_owner} alone")
                    };
                    diags.push(Diagnostic::error(
                        RESULT_PROVENANCE,
                        Location::node(node),
                        format!(
                            "result region {seg} of node {node} holds {} of {total} \
                             contributor(s), expected {want}",
                            piece.contrib.count()
                        ),
                    ));
                }
                if piece.elem_at(b) != want_elem && !flagged_elem {
                    flagged_elem = true;
                    diags.push(Diagnostic::error(
                        RESULT_ELEMENTS,
                        Location::node(node),
                        format!(
                            "result region {seg} of node {node} holds element {} \
                             where element {want_elem} belongs",
                            piece.elem_at(b)
                        ),
                    ));
                }
                b = seg_end;
            }
        }
        k += span.len;
    }
}
