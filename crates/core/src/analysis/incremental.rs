//! Incremental streaming verifier: the four analysis passes folded one
//! step at a time, plus an O(Δ) delta re-lint for repaired or replanned
//! schedules.
//!
//! # Streaming
//!
//! [`ScheduleVerifier`] drives the same four pass kernels as
//! [`super::run_all`] — structural, sync, hazard, dataflow — but
//! step-by-step: [`ScheduleVerifier::feed_step`] lints the next step and
//! returns its [`StepVerdict`], and [`ScheduleVerifier::finalize`] runs
//! the dataflow result check and assembles an [`AnalysisReport`] that is
//! **byte-identical** to the batch report (same codes, same messages,
//! same order). The identity holds because every diagnostic is a
//! deterministic function of the schedule header, the step's content and
//! position, and the dataflow state *value* entering the step — and
//! because ties under the report's `(location, code)` sort can only come
//! from one pass at one step (code ranges are pass-disjoint), where both
//! drivers share the emission order of the same kernel.
//!
//! # Delta re-lint
//!
//! [`reverify_delta`] takes the [`AnalysisSummary`] of an
//! already-verified schedule and a new schedule, and re-proves only what
//! changed: an exact-content prefix (same position, same step) and
//! suffix (same step, position may shift) are aligned by `PartialEq` on
//! [`crate::schedule::CommStep`] — never by hashing, so a collision can
//! not smuggle an unsound accept — and only the dirty middle is
//! re-interpreted, starting from the prefix-end checkpoint. The suffix's
//! cached verdicts are adopted once the live dataflow state *converges*
//! (compares value-equal) with the old state at the matching point;
//! until then the dirty region extends one step at a time. A cached
//! suffix step whose position shifted is only adopted when its cached
//! diagnostics are empty (diagnostic *presence* is position-independent;
//! rendered messages are not), otherwise it is re-linted at its new
//! position. Schedule repairs rewrite resources and split steps but
//! never change payload spans, so the dataflow state converges
//! immediately after the repaired region and the work is proportional to
//! the repair, not the schedule.

use std::sync::Arc;

use crate::schedule::repair::RepairedSchedule;
use crate::schedule::{CommSchedule, CommStep, ScheduleView, StepRef};

use super::dataflow::{self, DataflowState};
use super::diagnostics::{Diagnostic, Location, Severity};
use super::{hazard, structural, sync, AnalysisReport};

/// Serializable summary state of the pass fold after some step.
///
/// Structural, sync, and hazard are step-local — they carry no state
/// between steps — so the fold state is the dataflow interpreter's
/// per-node provenance runs. Cloning is a checkpoint (copy-on-write),
/// and equality is the delta re-lint's convergence test.
#[derive(Debug, Clone, PartialEq)]
pub struct PassState {
    pub(super) dataflow: DataflowState,
}

impl PassState {
    /// The state as a JSON object summarizing per-node provenance:
    /// `{"nodes":[{"runs":N},...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.dataflow.to_json()
    }
}

/// Verdict for one step fed to the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepVerdict {
    /// Phase index of the step just linted.
    pub phase: usize,
    /// Step index within its phase.
    pub step: usize,
    /// Error-severity findings this step added.
    pub errors: usize,
    /// Warning-severity findings this step added.
    pub warnings: usize,
}

impl StepVerdict {
    /// True when the step added no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0
    }
}

/// Cached per-step result: the step's own diagnostics and the pass state
/// after folding it.
#[derive(Debug, Clone)]
pub(crate) struct StepRecord {
    pub(crate) phase: usize,
    pub(crate) step: usize,
    pub(crate) diags: Vec<Diagnostic>,
    pub(crate) post: PassState,
}

/// A verified schedule plus everything needed to re-verify a variant of
/// it in O(Δ): the per-step records, the final pass state, and the batch
/// report itself.
#[derive(Debug, Clone)]
pub struct AnalysisSummary {
    /// The exact schedule these records describe.
    pub(crate) schedule: Arc<CommSchedule>,
    /// The batch-identical report.
    pub report: AnalysisReport,
    pub(crate) prologue: Vec<Diagnostic>,
    pub(crate) records: Vec<StepRecord>,
    pub(crate) final_state: PassState,
    pub(crate) final_diags: Vec<Diagnostic>,
}

impl AnalysisSummary {
    /// The schedule this summary verifies.
    #[must_use]
    pub fn schedule(&self) -> &Arc<CommSchedule> {
        &self.schedule
    }

    /// Number of steps the summary holds records for.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.records.len()
    }

    /// The summary as one JSON object: the report plus per-step verdict
    /// counts and the serialized final pass state.
    #[must_use]
    pub fn to_json(&self) -> String {
        let steps: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                format!(
                    "{{\"phase\":{},\"step\":{},\"findings\":{}}}",
                    r.phase,
                    r.step,
                    r.diags.len()
                )
            })
            .collect();
        format!(
            "{{\"report\":{},\"steps\":[{}],\"final_state\":{}}}",
            self.report.to_json(),
            steps.join(","),
            self.final_state.to_json()
        )
    }
}

/// How a delta re-lint spent its work, for trace events and the perf
/// gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Steps in the new schedule.
    pub steps_total: usize,
    /// Steps whose cached verdict was reused from the aligned prefix.
    pub reused_prefix: usize,
    /// Steps whose cached verdict was adopted from the aligned suffix
    /// after state convergence.
    pub reused_suffix: usize,
    /// Steps actually re-linted.
    pub relinted: usize,
    /// Whether the final result check was reused from the base summary.
    pub reused_final: bool,
    /// Whether the delta fell back to a full verification (schedule
    /// header changed).
    pub full: bool,
}

impl DeltaStats {
    /// Steps that skipped re-linting.
    #[must_use]
    pub fn reused(&self) -> usize {
        self.reused_prefix + self.reused_suffix
    }
}

/// Flattened step position: `(phase, step, multiplexed)`.
type FlatPos = (usize, usize, bool);

fn flatten(schedule: &CommSchedule) -> Vec<FlatPos> {
    let mut flat = Vec::new();
    for (pi, phase) in schedule.phases.iter().enumerate() {
        for si in 0..phase.steps.len() {
            flat.push((pi, si, phase.multiplexed));
        }
    }
    flat
}

fn step_at(schedule: &CommSchedule, pos: FlatPos) -> &CommStep {
    &schedule.phases[pos.0].steps[pos.1]
}

/// `P303` warnings for phases with no steps (the only phase-level
/// diagnostic; everything else is schedule-level or step-local).
fn phase_warnings(schedule: &CommSchedule, diags: &mut Vec<Diagnostic>) {
    for (pi, phase) in schedule.phases.iter().enumerate() {
        if phase.steps.is_empty() {
            diags.push(Diagnostic::warning(
                sync::EMPTY_BARRIER,
                Location::phase(pi),
                "phase has no steps: a barrier with no work".into(),
            ));
        }
    }
}

/// Runs all four step-local kernels on one step, folding `live`, and
/// returns the step's record.
fn lint_step(schedule: &CommSchedule, pos: FlatPos, live: &mut DataflowState) -> StepRecord {
    let (pi, si, multiplexed) = pos;
    let step = StepRef::Nested(step_at(schedule, pos));
    let hdr = schedule.header();
    let mut diags = Vec::new();
    structural::check_step(&hdr, pi, si, step, multiplexed, &mut diags);
    sync::check_step(&hdr, pi, si, step, &mut diags);
    hazard::check_step(pi, si, step, &mut diags);
    live.feed_step(&hdr, pi, si, step, &mut diags);
    StepRecord {
        phase: pi,
        step: si,
        diags,
        post: PassState {
            dataflow: live.clone(),
        },
    }
}

/// Assembles the sorted, batch-identical report from summary parts.
fn assemble_report(
    schedule: &CommSchedule,
    prologue: &[Diagnostic],
    records: &[StepRecord],
    final_diags: &[Diagnostic],
) -> AnalysisReport {
    let mut diagnostics = prologue.to_vec();
    phase_warnings(schedule, &mut diagnostics);
    for r in records {
        diagnostics.extend(r.diags.iter().cloned());
    }
    diagnostics.extend(final_diags.iter().cloned());
    diagnostics.sort_by(|a, b| {
        a.location
            .sort_key()
            .cmp(&b.location.sort_key())
            .then_with(|| a.code.cmp(b.code))
    });
    AnalysisReport {
        kind: schedule.kind,
        dpus: schedule.geometry.total_dpus(),
        elems_per_node: schedule.elems_per_node,
        diagnostics,
    }
}

/// Streaming verifier: feed steps one at a time, finalize into a
/// batch-identical report plus reusable per-step records.
pub struct ScheduleVerifier {
    schedule: Arc<CommSchedule>,
    flat: Vec<FlatPos>,
    cursor: usize,
    live: DataflowState,
    prologue: Vec<Diagnostic>,
    records: Vec<StepRecord>,
}

impl ScheduleVerifier {
    /// Starts a verification: runs the schedule-level structural prologue
    /// and initializes the dataflow state, without touching any step.
    #[must_use]
    pub fn new(schedule: Arc<CommSchedule>) -> ScheduleVerifier {
        let mut prologue = Vec::new();
        structural::check_prologue(&schedule.header(), &mut prologue);
        let flat = flatten(&schedule);
        let live = DataflowState::new(&schedule.header());
        ScheduleVerifier {
            schedule,
            flat,
            cursor: 0,
            live,
            prologue,
            records: Vec::new(),
        }
    }

    /// Steps remaining to feed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.flat.len() - self.cursor
    }

    /// Lints the next step (all four passes) and folds the dataflow
    /// state. Returns `None` once every step has been fed.
    pub fn feed_step(&mut self) -> Option<StepVerdict> {
        let pos = *self.flat.get(self.cursor)?;
        self.cursor += 1;
        let record = lint_step(&self.schedule, pos, &mut self.live);
        let errors = record
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let verdict = StepVerdict {
            phase: pos.0,
            step: pos.1,
            errors,
            warnings: record.diags.len() - errors,
        };
        self.records.push(record);
        Some(verdict)
    }

    /// Feeds any remaining steps, runs the dataflow result check, and
    /// assembles the final summary. The contained report is byte-identical
    /// to [`super::run_all`] on the same schedule.
    #[must_use]
    pub fn finalize(mut self) -> AnalysisSummary {
        while self.feed_step().is_some() {}
        let mut final_diags = Vec::new();
        dataflow::final_check(&self.schedule.header(), &self.live, &mut final_diags);
        let report = assemble_report(&self.schedule, &self.prologue, &self.records, &final_diags);
        AnalysisSummary {
            schedule: self.schedule,
            report,
            prologue: self.prologue,
            records: self.records,
            final_state: PassState {
                dataflow: self.live,
            },
            final_diags,
        }
    }
}

/// Verifies a schedule from scratch with the streaming verifier.
#[must_use]
pub fn verify_full(schedule: &CommSchedule) -> AnalysisSummary {
    verify_full_arc(Arc::new(schedule.clone()))
}

/// [`verify_full`] without cloning an already-shared schedule.
#[must_use]
pub fn verify_full_arc(schedule: Arc<CommSchedule>) -> AnalysisSummary {
    ScheduleVerifier::new(schedule).finalize()
}

/// True when everything *outside* the phase list is identical — the
/// precondition for step-level delta alignment.
fn same_header(a: &CommSchedule, b: &CommSchedule) -> bool {
    a.kind == b.kind
        && a.geometry == b.geometry
        && a.elems_per_node == b.elems_per_node
        && a.elem_bytes == b.elem_bytes
        && a.buffer_len == b.buffer_len
        && a.result_spans == b.result_spans
}

/// Re-verifies `new_schedule` against the already-verified `base`,
/// re-linting only changed steps and their state-dependent suffix.
///
/// The returned summary (including its report) is byte-identical to
/// [`verify_full`] on `new_schedule`; [`DeltaStats`] says how much work
/// was actually redone.
#[must_use]
pub fn reverify_delta(
    base: &AnalysisSummary,
    new_schedule: Arc<CommSchedule>,
) -> (AnalysisSummary, DeltaStats) {
    if !same_header(&base.schedule, &new_schedule) {
        let relinted = flatten(&new_schedule).len();
        let summary = verify_full_arc(new_schedule);
        let stats = DeltaStats {
            steps_total: relinted,
            relinted,
            full: true,
            ..DeltaStats::default()
        };
        return (summary, stats);
    }

    let old_flat = flatten(&base.schedule);
    let new_flat = flatten(&new_schedule);
    let (len_o, len_n) = (old_flat.len(), new_flat.len());
    debug_assert_eq!(len_o, base.records.len());

    // Aligned prefix: identical position, multiplexing, and content.
    let mut k = 0;
    while k < len_o && k < len_n {
        if old_flat[k] == new_flat[k]
            && step_at(&base.schedule, old_flat[k]) == step_at(&new_schedule, new_flat[k])
        {
            k += 1;
        } else {
            break;
        }
    }
    // Aligned suffix: identical multiplexing and content; the position
    // may have shifted (e.g. a repair split an earlier step in the same
    // phase).
    let max_m = len_o.min(len_n) - k;
    let mut m = 0;
    while m < max_m {
        let a = old_flat[len_o - 1 - m];
        let b = new_flat[len_n - 1 - m];
        if a.2 == b.2 && step_at(&base.schedule, a) == step_at(&new_schedule, b) {
            m += 1;
        } else {
            break;
        }
    }

    // The prologue is a pure function of the header, which `same_header`
    // pinned equal — reuse it.
    let prologue = base.prologue.clone();

    let mut records: Vec<StepRecord> = base.records[..k].to_vec();
    let mut live = if k == 0 {
        DataflowState::new(&new_schedule.header())
    } else {
        base.records[k - 1].post.dataflow.clone()
    };
    let mut stats = DeltaStats {
        steps_total: len_n,
        reused_prefix: k,
        ..DeltaStats::default()
    };

    // Dirty middle: every step with no aligned counterpart.
    for &pos in &new_flat[k..len_n - m] {
        records.push(lint_step(&new_schedule, pos, &mut live));
        stats.relinted += 1;
    }

    // Suffix: extend the dirty region until the live state converges
    // (value-equal) with the old state entering the matching old step,
    // then adopt the cached verdicts.
    let mut j = 0;
    while j < m {
        let old_pre = if len_o - m + j == 0 {
            // The whole old schedule is suffix; its entry state is the
            // initial placement, which `same_header` pins equal.
            None
        } else {
            Some(&base.records[len_o - m + j - 1].post.dataflow)
        };
        let converged = match old_pre {
            Some(pre) => live == *pre,
            None => live == DataflowState::new(&new_schedule.header()),
        };
        if converged {
            break;
        }
        records.push(lint_step(&new_schedule, new_flat[len_n - m + j], &mut live));
        stats.relinted += 1;
        j += 1;
    }
    for jj in j..m {
        let orec = &base.records[len_o - m + jj];
        let (npi, nsi, _) = new_flat[len_n - m + jj];
        if (orec.phase, orec.step) == (npi, nsi) || orec.diags.is_empty() {
            // A finding fires (or not) independent of step position; only
            // its rendered location changes. Unchanged position — or no
            // findings at all — means the cached record is exact.
            live = orec.post.dataflow.clone();
            records.push(StepRecord {
                phase: npi,
                step: nsi,
                diags: orec.diags.clone(),
                post: orec.post.clone(),
            });
            stats.reused_suffix += 1;
        } else {
            // Position shifted under a step with findings: the messages
            // embed the location, so re-render by re-linting.
            records.push(lint_step(
                &new_schedule,
                new_flat[len_n - m + jj],
                &mut live,
            ));
            stats.relinted += 1;
        }
    }

    // The final result check depends only on the header (equal) and the
    // final state value, so a converged final state reuses its verdicts.
    let final_state = PassState { dataflow: live };
    let final_diags = if final_state == base.final_state {
        stats.reused_final = true;
        base.final_diags.clone()
    } else {
        let mut diags = Vec::new();
        dataflow::final_check(&new_schedule.header(), &final_state.dataflow, &mut diags);
        diags
    };

    let report = assemble_report(&new_schedule, &prologue, &records, &final_diags);
    let summary = AnalysisSummary {
        schedule: new_schedule,
        report,
        prologue,
        records,
        final_state,
        final_diags,
    };
    (summary, stats)
}

/// [`reverify_delta`] for a repaired schedule, with an identity fast
/// path: an identity repair changed nothing, so the base summary is
/// returned as-is (rebound to the repaired schedule's allocation).
#[must_use]
pub fn reverify_repair(
    base: &AnalysisSummary,
    repaired: &RepairedSchedule,
) -> (AnalysisSummary, DeltaStats) {
    if repaired.report.is_identity() && *base.schedule == repaired.schedule {
        let stats = DeltaStats {
            steps_total: base.records.len(),
            reused_prefix: base.records.len(),
            reused_final: true,
            ..DeltaStats::default()
        };
        return (base.clone(), stats);
    }
    reverify_delta(base, Arc::new(repaired.schedule.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use pim_arch::PimGeometry;

    fn build(kind: CollectiveKind, dpus: u32, elems: usize) -> CommSchedule {
        let g = PimGeometry::paper_scaled(dpus);
        CommSchedule::build(kind, &g, elems, 4).expect("builds")
    }

    #[test]
    fn streaming_matches_batch_on_builders() {
        for kind in CollectiveKind::ALL {
            for dpus in [2u32, 8, 64] {
                let schedule = build(kind, dpus, 64);
                let batch = super::super::run_all(&schedule);
                let summary = verify_full(&schedule);
                assert_eq!(
                    batch.to_json(),
                    summary.report.to_json(),
                    "{kind} x{dpus} diverged"
                );
                assert_eq!(batch.to_string(), summary.report.to_string());
            }
        }
    }

    #[test]
    fn feed_step_reports_progress() {
        let schedule = Arc::new(build(CollectiveKind::AllReduce, 8, 64));
        let mut v = ScheduleVerifier::new(schedule);
        let total = v.remaining();
        assert!(total > 0);
        let mut fed = 0;
        while let Some(verdict) = v.feed_step() {
            assert!(verdict.is_clean(), "unexpected finding at {verdict:?}");
            fed += 1;
        }
        assert_eq!(fed, total);
        let summary = v.finalize();
        assert!(summary.report.is_clean());
    }

    #[test]
    fn delta_on_identical_schedule_reuses_everything() {
        let schedule = Arc::new(build(CollectiveKind::AllGather, 8, 64));
        let base = verify_full_arc(schedule.clone());
        let (summary, stats) = reverify_delta(&base, schedule);
        assert_eq!(summary.report.to_json(), base.report.to_json());
        assert_eq!(stats.relinted, 0);
        assert_eq!(stats.reused_prefix, stats.steps_total);
        assert!(stats.reused_final);
        assert!(!stats.full);
    }

    #[test]
    fn delta_matches_batch_on_mutation() {
        let mut schedule = build(CollectiveKind::AllGather, 8, 64);
        let base = verify_full(&schedule);
        // Drop one non-local transfer mid-schedule: downstream steps now
        // read undelivered data, so the dirty region must extend.
        'outer: for phase in &mut schedule.phases {
            for step in &mut phase.steps {
                if let Some(i) = step.transfers.iter().position(|t| !t.is_local()) {
                    step.transfers.remove(i);
                    break 'outer;
                }
            }
        }
        let batch = super::super::run_all(&schedule);
        assert!(batch.has_errors());
        let (summary, stats) = reverify_delta(&base, Arc::new(schedule));
        assert_eq!(batch.to_json(), summary.report.to_json());
        assert!(!stats.full);
    }

    #[test]
    fn header_change_falls_back_to_full() {
        let a = build(CollectiveKind::AllReduce, 8, 64);
        let b = build(CollectiveKind::AllReduce, 8, 128);
        let base = verify_full(&a);
        let batch = super::super::run_all(&b);
        let (summary, stats) = reverify_delta(&base, Arc::new(b));
        assert_eq!(batch.to_json(), summary.report.to_json());
        assert!(stats.full);
    }

    #[test]
    fn summary_json_is_well_formed() {
        let schedule = build(CollectiveKind::Broadcast, 8, 64);
        let summary = verify_full(&schedule);
        let json = summary.to_json();
        assert!(json.starts_with("{\"report\":"));
        assert!(json.contains("\"final_state\":"));
    }
}
