//! Structured diagnostics for the schedule static analyzer.
//!
//! Every finding carries a **stable code** (`P0xx` structural, `P1xx`
//! dataflow, `P2xx` hazard, `P3xx` sync), a [`Severity`], a [`Location`]
//! inside the schedule, and a human-readable message. Codes and messages
//! for hand-built broken schedules are pinned by golden tests
//! (`tests/analysis_golden.rs`), making them a public contract: tooling
//! may match on `code` across releases.

use std::fmt;

/// How bad a finding is.
///
/// Only [`Severity::Error`] findings make a schedule fail analysis; the
/// lint pipeline exits non-zero on them. Warnings flag suspicious but
/// executable constructs; infos are purely informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a lint.
    Info,
    /// Suspicious but executable (e.g. a barrier with no work).
    Warning,
    /// The schedule is wrong: it races, deadlocks, or computes the wrong
    /// collective.
    Error,
}

impl Severity {
    /// Lower-case name, as emitted in JSON.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in a schedule a diagnostic points: phase / step / transfer
/// indices, optionally narrowed to one DPU's buffer. All components are
/// optional so schedule-level findings (e.g. a malformed result table)
/// can still be located.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Location {
    /// Phase index into `CommSchedule::phases`.
    pub phase: Option<usize>,
    /// Step index within the phase.
    pub step: Option<usize>,
    /// Transfer index within the step.
    pub transfer: Option<usize>,
    /// The DPU whose buffer the finding concerns.
    pub dpu: Option<u32>,
}

impl Location {
    /// A schedule-level location (no specific phase/step/transfer).
    pub const SCHEDULE: Location = Location {
        phase: None,
        step: None,
        transfer: None,
        dpu: None,
    };

    /// Location of one transfer.
    #[must_use]
    pub const fn at(phase: usize, step: usize, transfer: usize) -> Location {
        Location {
            phase: Some(phase),
            step: Some(step),
            transfer: Some(transfer),
            dpu: None,
        }
    }

    /// Location of one step.
    #[must_use]
    pub const fn step(phase: usize, step: usize) -> Location {
        Location {
            phase: Some(phase),
            step: Some(step),
            transfer: None,
            dpu: None,
        }
    }

    /// Location of one phase.
    #[must_use]
    pub const fn phase(phase: usize) -> Location {
        Location {
            phase: Some(phase),
            step: None,
            transfer: None,
            dpu: None,
        }
    }

    /// Location of one DPU's final buffer state.
    #[must_use]
    pub const fn node(dpu: u32) -> Location {
        Location {
            phase: None,
            step: None,
            transfer: None,
            dpu: Some(dpu),
        }
    }

    /// The same location narrowed to one DPU's buffer.
    #[must_use]
    pub const fn on(mut self, dpu: u32) -> Location {
        self.dpu = Some(dpu);
        self
    }

    /// True when the finding names a concrete phase/step/transfer or DPU
    /// (the differential fuzzer asserts every analyzer rejection is
    /// pinpointed, not just "something is wrong somewhere").
    #[must_use]
    pub const fn is_pinpointed(&self) -> bool {
        self.phase.is_some() || self.dpu.is_some()
    }

    /// Sort key for deterministic report ordering.
    #[must_use]
    pub fn sort_key(&self) -> (usize, usize, usize, u32) {
        (
            self.phase.unwrap_or(usize::MAX),
            self.step.unwrap_or(usize::MAX),
            self.transfer.unwrap_or(usize::MAX),
            self.dpu.unwrap_or(u32::MAX),
        )
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(p) = self.phase {
            write!(f, "phase {p}")?;
            wrote = true;
            if let Some(s) = self.step {
                write!(f, " step {s}")?;
                if let Some(t) = self.transfer {
                    write!(f, " transfer {t}")?;
                }
            }
        }
        if let Some(d) = self.dpu {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "dpu {d}")?;
            wrote = true;
        }
        if !wrote {
            write!(f, "schedule")?;
        }
        Ok(())
    }
}

/// One analyzer finding: a stable code, a severity, a location, and a
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"P101"`. The leading digit names the pass:
    /// `P0xx` structural, `P1xx` dataflow, `P2xx` hazard, `P3xx` sync.
    pub code: &'static str,
    /// How bad the finding is.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity finding.
    #[must_use]
    pub fn error(code: &'static str, location: Location, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message,
        }
    }

    /// A warning-severity finding.
    #[must_use]
    pub fn warning(code: &'static str, location: Location, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location,
            message,
        }
    }

    /// The finding as one machine-readable JSON object (no external
    /// dependencies; fields: `code`, `severity`, `phase`, `step`,
    /// `transfer`, `dpu`, `message`; absent location parts are `null`).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn opt_usize(v: Option<usize>) -> String {
            v.map_or_else(|| "null".into(), |x| x.to_string())
        }
        fn opt_u32(v: Option<u32>) -> String {
            v.map_or_else(|| "null".into(), |x| x.to_string())
        }
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"phase\":{},\"step\":{},\
             \"transfer\":{},\"dpu\":{},\"message\":\"{}\"}}",
            self.code,
            self.severity,
            opt_usize(self.location.phase),
            opt_usize(self.location.step),
            opt_usize(self.location.transfer),
            opt_u32(self.location.dpu),
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let d = Diagnostic::error(
            "P101",
            Location::at(1, 0, 3).on(7),
            "reads uninitialized region".into(),
        );
        assert_eq!(
            d.to_string(),
            "error[P101] phase 1 step 0 transfer 3 dpu 7: reads uninitialized region"
        );
        assert_eq!(Location::SCHEDULE.to_string(), "schedule");
        assert_eq!(Location::node(4).to_string(), "dpu 4");
    }

    #[test]
    fn json_is_well_formed() {
        let d = Diagnostic::warning("P303", Location::phase(2), "empty \"barrier\"".into());
        assert_eq!(
            d.to_json(),
            "{\"code\":\"P303\",\"severity\":\"warning\",\"phase\":2,\"step\":null,\
             \"transfer\":null,\"dpu\":null,\"message\":\"empty \\\"barrier\\\"\"}"
        );
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn pinpointing() {
        assert!(Location::at(0, 0, 0).is_pinpointed());
        assert!(Location::node(3).is_pinpointed());
        assert!(!Location::SCHEDULE.is_pinpointed());
    }
}
