//! Structural pass (`P0xx`): the diagnostic-emitting form of
//! [`crate::schedule::validate`].
//!
//! Where the validator stops at the first violated rule and returns a
//! [`crate::error::PimnetError`], this pass walks the whole schedule and
//! emits one [`Diagnostic`] per violation, so a lint run reports every
//! structural problem at once. The rules are the same: spans stay inside
//! the buffer, resource paths connect their endpoints at the right tier,
//! reductions only appear in reducing collectives, and bufferless
//! resources never carry two flows in a non-multiplexed step.

use std::collections::{BTreeMap, HashSet};

use crate::schedule::{ScheduleHeader, ScheduleView, StepRef, TransferRef};
use crate::topology::{ChipLoc, Resource};

use super::diagnostics::{Diagnostic, Location};

/// `P001` — transfer with no destination.
pub const EMPTY_DSTS: &str = "P001";
/// `P002` — source and destination spans have different lengths.
pub const SPAN_LEN_MISMATCH: &str = "P002";
/// `P003` — a span reaches beyond the communication buffer.
pub const SPAN_OUT_OF_BOUNDS: &str = "P003";
/// `P004` — a combining transfer in a non-reducing collective.
pub const COMBINE_IN_NON_REDUCING: &str = "P004";
/// `P005` — a resource-less transfer that is not a local self-copy.
pub const NON_LOCAL_WITHOUT_RESOURCES: &str = "P005";
/// `P006` — a node sends to itself over the fabric.
pub const FABRIC_SELF_SEND: &str = "P006";
/// `P007` — resources do not match the transfer's tier.
pub const WRONG_TIER_RESOURCES: &str = "P007";
/// `P008` — a DQ-crossing transfer is missing its Tx or Rx channel.
pub const MISSING_DQ_ENDPOINT: &str = "P008";
/// `P009` — an exclusive (bufferless) resource carries two flows in a
/// non-multiplexed step.
pub const EXCLUSIVE_SHARING: &str = "P009";
/// `P010` — the result-span table is malformed (wrong node count or a
/// span beyond the buffer).
pub const MALFORMED_RESULT_TABLE: &str = "P010";

/// Runs the structural pass, appending findings to `diags`.
pub(super) fn check<S: ScheduleView>(schedule: &S, diags: &mut Vec<Diagnostic>) {
    let hdr = schedule.header();
    check_prologue(&hdr, diags);
    for pi in 0..schedule.phase_count() {
        let multiplexed = schedule.phase_multiplexed(pi);
        for si in 0..schedule.steps_in(pi) {
            check_step(&hdr, pi, si, schedule.step(pi, si), multiplexed, diags);
        }
    }
}

/// Schedule-level structural checks (the result-span table), independent
/// of any step.
pub(super) fn check_prologue(hdr: &ScheduleHeader<'_>, diags: &mut Vec<Diagnostic>) {
    let total = hdr.geometry.total_dpus();

    if hdr.result_spans.len() != total as usize {
        diags.push(Diagnostic::error(
            MALFORMED_RESULT_TABLE,
            Location::SCHEDULE,
            format!(
                "result table describes {} node(s) but the geometry has {total}",
                hdr.result_spans.len()
            ),
        ));
    }
    for (i, spans) in hdr.result_spans.iter().enumerate() {
        for span in spans {
            if span.end() > hdr.buffer_len {
                diags.push(Diagnostic::error(
                    MALFORMED_RESULT_TABLE,
                    Location::node(i as u32),
                    format!(
                        "result span {span} beyond buffer ({} elems)",
                        hdr.buffer_len
                    ),
                ));
            }
        }
    }
}

/// Structural checks for one step at `(pi, si)`; step-local by
/// construction, so the incremental verifier calls it verbatim.
pub(super) fn check_step(
    hdr: &ScheduleHeader<'_>,
    pi: usize,
    si: usize,
    step: StepRef<'_>,
    multiplexed: bool,
    diags: &mut Vec<Diagnostic>,
) {
    // A "flow" is a distinct (source, destination-set) pair, as in
    // the validator: back-to-back transfers of one pair share a
    // single scheduled slot on the wire. BTreeMap keeps the emission
    // order independent of hash state.
    let mut usage: BTreeMap<Resource, HashSet<(u32, Vec<u32>)>> = BTreeMap::new();
    for (ti, t) in step.transfers().enumerate() {
        check_transfer(hdr, t, Location::at(pi, si, ti), diags);
        if t.is_local() {
            continue;
        }
        let flow = (t.src.0, t.dsts.iter().map(|d| d.0).collect::<Vec<_>>());
        for r in t.resources {
            usage.entry(*r).or_default().insert(flow.clone());
        }
    }
    if !multiplexed {
        for (r, flows) in &usage {
            if flows.len() > 1 && r.requires_exclusive_step() {
                diags.push(Diagnostic::error(
                    EXCLUSIVE_SHARING,
                    Location::step(pi, si),
                    format!(
                        "bufferless resource {r} carries {} flows in a \
                         non-multiplexed step",
                        flows.len()
                    ),
                ));
            }
            if flows.len() > 1 && matches!(r, Resource::ChipTx { .. } | Resource::ChipRx { .. }) {
                diags.push(Diagnostic::error(
                    EXCLUSIVE_SHARING,
                    Location::step(pi, si),
                    format!(
                        "chip channel {r} carries {} flows in a \
                         non-multiplexed step",
                        flows.len()
                    ),
                ));
            }
        }
    }
}

fn check_transfer(
    hdr: &ScheduleHeader<'_>,
    t: TransferRef<'_>,
    loc: Location,
    diags: &mut Vec<Diagnostic>,
) {
    let g = hdr.geometry;
    let total = g.total_dpus();

    if t.dsts.is_empty() {
        diags.push(Diagnostic::error(
            EMPTY_DSTS,
            loc,
            "transfer with no destination".into(),
        ));
    }
    if t.src_span.len != t.dst_span.len {
        diags.push(Diagnostic::error(
            SPAN_LEN_MISMATCH,
            loc,
            format!(
                "span length mismatch: src {} vs dst {}",
                t.src_span, t.dst_span
            ),
        ));
    }
    if t.src_span.end() > hdr.buffer_len || t.dst_span.end() > hdr.buffer_len {
        diags.push(Diagnostic::error(
            SPAN_OUT_OF_BOUNDS,
            loc,
            format!(
                "span beyond buffer ({} elems): src {} dst {}",
                hdr.buffer_len, t.src_span, t.dst_span
            ),
        ));
    }
    if t.combine && !hdr.kind.reduces() {
        diags.push(Diagnostic::error(
            COMBINE_IN_NON_REDUCING,
            loc,
            format!("reduction in non-reducing collective {}", hdr.kind),
        ));
    }

    if t.is_local() {
        if t.dsts != [t.src] {
            diags.push(Diagnostic::error(
                NON_LOCAL_WITHOUT_RESOURCES,
                loc,
                "resource-less transfer must be a local self-copy".into(),
            ));
        }
        return;
    }
    if t.dsts.contains(&t.src) {
        diags.push(Diagnostic::error(
            FABRIC_SELF_SEND,
            loc,
            format!("node {} sends to itself over the fabric", t.src),
        ));
    }

    // Tier/endpoint consistency needs coordinates; out-of-range ids are
    // the sync pass's `P301`, so skip rather than panic in `coord`.
    if t.src.0 >= total || t.dsts.iter().any(|d| d.0 >= total) {
        return;
    }
    let src = g.coord(t.src);
    let all_same_chip = t.dsts.iter().all(|&d| g.same_chip(t.src, d));
    let all_same_rank = t.dsts.iter().all(|&d| g.same_rank(t.src, d));
    let crosses_rank = t.dsts.iter().any(|&d| !g.same_rank(t.src, d));
    let uses_bus = t
        .resources
        .iter()
        .any(|r| matches!(r, Resource::RankBus { .. }));
    let uses_ring = t
        .resources
        .iter()
        .any(|r| matches!(r, Resource::RingSegment { .. }));

    if all_same_chip {
        if !t
            .resources
            .iter()
            .all(|r| matches!(r, Resource::RingSegment { chip, .. } if *chip == ChipLoc::of(src)))
        {
            diags.push(Diagnostic::error(
                WRONG_TIER_RESOURCES,
                loc,
                "same-chip transfer must use only its own ring segments".into(),
            ));
        }
    } else if all_same_rank {
        if uses_bus || uses_ring {
            diags.push(Diagnostic::error(
                WRONG_TIER_RESOURCES,
                loc,
                "same-rank transfer must use only DQ channels".into(),
            ));
        }
        expect_dq_endpoints(hdr, t, loc, diags);
    } else {
        if !crosses_rank || !uses_bus {
            diags.push(Diagnostic::error(
                WRONG_TIER_RESOURCES,
                loc,
                "cross-rank transfer must traverse the rank bus".into(),
            ));
        }
        expect_dq_endpoints(hdr, t, loc, diags);
    }
}

fn expect_dq_endpoints(
    hdr: &ScheduleHeader<'_>,
    t: TransferRef<'_>,
    loc: Location,
    diags: &mut Vec<Diagnostic>,
) {
    let g = hdr.geometry;
    let src_chip = ChipLoc::of(g.coord(t.src));
    let has_tx = t
        .resources
        .iter()
        .any(|r| matches!(r, Resource::ChipTx { chip } if *chip == src_chip));
    if !has_tx {
        diags.push(Diagnostic::error(
            MISSING_DQ_ENDPOINT,
            loc,
            "missing source chip Tx channel in path".into(),
        ));
    }
    for &d in t.dsts {
        let dst_chip = ChipLoc::of(g.coord(d));
        let has_rx = t
            .resources
            .iter()
            .any(|r| matches!(r, Resource::ChipRx { chip } if *chip == dst_chip));
        if !has_rx {
            diags.push(Diagnostic::error(
                MISSING_DQ_ENDPOINT,
                loc,
                format!("missing destination chip Rx channel for {d}"),
            ));
        }
    }
}
