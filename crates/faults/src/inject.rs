//! The fault decision oracle.
//!
//! Every method is a pure function of `(config.seed, event coordinates)`:
//! the injector holds no mutable state, so consumers may query it in any
//! order — per-transfer in schedule order, per-packet in simulation order,
//! or in parallel — and always see the same fault pattern for a seed.

use pim_sim::rng::hash_coords;

use crate::config::FaultConfig;

/// Domain-separation tags so the same coordinates never collide across
/// fault classes.
const TAG_TRANSIENT: u64 = 0x7472_616E; // "tran"
const TAG_STRAGGLER: u64 = 0x7374_7261; // "stra"
const TAG_FLIP: u64 = 0x666C_6970; // "flip"
const TAG_TIMED: u64 = 0x746D_6564; // "tmed"

/// Converts a hash to a uniform probability in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless fault oracle over a [`FaultConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// Wraps a configuration.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg }
    }

    /// The fault-free injector (nothing ever fires).
    #[must_use]
    pub fn none() -> Self {
        FaultInjector::new(FaultConfig::none())
    }

    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// `true` if any fault class can fire. The fault-free fast paths key
    /// off this.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// Is this DPU hard-dead (never raises READY, never transfers)?
    #[must_use]
    pub fn is_dead(&self, dpu: u32) -> bool {
        self.cfg.dead_dpus.binary_search(&dpu).is_ok()
    }

    /// `true` if this scenario names or can sample permanent fabric
    /// faults, so planners must consult [`permanent_faults`](Self::permanent_faults).
    #[must_use]
    pub fn has_permanent_faults(&self) -> bool {
        self.cfg.has_permanent_faults()
    }

    /// The permanent-fault scenario for a fabric of `ranks` × `chips` ×
    /// `banks` (one channel): the config's explicitly named components
    /// merged with the components sampled from the seed at the configured
    /// rates. Pure in `(seed, dims)` — call it as often as you like.
    #[must_use]
    pub fn permanent_faults(
        &self,
        ranks: u32,
        chips: u32,
        banks: u32,
    ) -> crate::permanent::PermanentFaultSet {
        let mut set = crate::permanent::PermanentFaultSet::sample(
            self.cfg.seed,
            ranks,
            chips,
            banks,
            &self.cfg.perm_rates,
        );
        set.merge(&self.cfg.permanent);
        set
    }

    /// Does attempt `attempt` of transfer `(phase, step, transfer)` get
    /// corrupted on the wire (and caught by the CRC)?
    #[must_use]
    pub fn transient_corrupts(&self, phase: u64, step: u64, transfer: u64, attempt: u32) -> bool {
        if self.cfg.transient_ber <= 0.0 {
            return false;
        }
        let h = hash_coords(
            self.cfg.seed,
            &[TAG_TRANSIENT, phase, step, transfer, u64::from(attempt)],
        );
        unit(h) < self.cfg.transient_ber
    }

    /// Which bit of an `n_bytes`-byte wire image flips when
    /// [`transient_corrupts`](Self::transient_corrupts) fires. Returns
    /// `(byte_index, bit_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bytes` is zero.
    #[must_use]
    pub fn flip_position(
        &self,
        phase: u64,
        step: u64,
        transfer: u64,
        attempt: u32,
        n_bytes: usize,
    ) -> (usize, u32) {
        assert!(n_bytes > 0, "flip_position: empty payload");
        let h = hash_coords(
            self.cfg.seed,
            &[TAG_FLIP, phase, step, transfer, u64::from(attempt)],
        );
        ((h as usize >> 3) % n_bytes, (h & 0x7) as u32)
    }

    /// Number of corrupted attempts before transfer `(phase, step,
    /// transfer)` goes through clean, capped at the retry budget.
    ///
    /// Returns `None` if every allowed attempt (the original plus
    /// `max_retries` re-sends) is corrupted — the transfer fails.
    #[must_use]
    pub fn attempts_before_success(&self, phase: u64, step: u64, transfer: u64) -> Option<u32> {
        (0..=self.cfg.max_retries)
            .find(|&attempt| !self.transient_corrupts(phase, step, transfer, attempt))
    }

    /// Extra nanoseconds DPU `dpu` straggles past the compute deadline for
    /// barrier `epoch` (0 for non-stragglers and dead nodes — a dead node
    /// is not *late*, it is absent, which the watchdog handles).
    #[must_use]
    pub fn straggler_delay_ns(&self, dpu: u32, epoch: u64) -> u64 {
        if self.cfg.straggler_prob <= 0.0 || self.cfg.straggler_max_ns == 0 || self.is_dead(dpu) {
            return 0;
        }
        let h = hash_coords(self.cfg.seed, &[TAG_STRAGGLER, u64::from(dpu), epoch]);
        if unit(h) >= self.cfg.straggler_prob {
            return 0;
        }
        // Reuse the decision hash's high bits for the magnitude so one
        // lookup decides both; +1 keeps the delay nonzero.
        1 + hash_coords(h, &[1]) % self.cfg.straggler_max_ns
    }

    /// The time-varying fault timeline (empty when the scenario is
    /// static).
    #[must_use]
    pub fn timeline(&self) -> &crate::timeline::FaultTimeline {
        &self.cfg.timeline
    }

    /// Does attempt `attempt` of transfer `(phase, step, transfer)` get
    /// corrupted at simulated instant `t_ps`, during recovery round
    /// `round`? The effective BER is the static `transient_ber` or the
    /// timeline's burst BER at `t_ps`, whichever is higher; the round
    /// coordinate makes step-level retries re-roll instead of replaying
    /// the identical corruption.
    #[must_use]
    pub fn corrupts_at(
        &self,
        t_ps: u64,
        phase: u64,
        step: u64,
        transfer: u64,
        attempt: u32,
        round: u32,
    ) -> bool {
        let ber = match self.cfg.timeline.burst_ber(t_ps) {
            Some(b) => b.max(self.cfg.transient_ber),
            None => self.cfg.transient_ber,
        };
        if ber <= 0.0 {
            return false;
        }
        let h = hash_coords(
            self.cfg.seed,
            &[
                TAG_TIMED,
                phase,
                step,
                transfer,
                u64::from(attempt),
                u64::from(round),
            ],
        );
        unit(h) < ber
    }

    /// Is `segment` flapped down (temporarily unusable) at `t_ps`?
    #[must_use]
    pub fn flap_down(&self, segment: crate::permanent::SegmentId, t_ps: u64) -> bool {
        self.cfg.timeline.flap_down(segment, t_ps)
    }

    /// Exponential backoff before recovery round `round` (1-based), in
    /// integer picoseconds: `effective_backoff_base_ps() << (round - 1)`,
    /// saturating.
    #[must_use]
    pub fn backoff_ps(&self, round: u32) -> u64 {
        if round == 0 {
            return 0;
        }
        self.cfg
            .effective_backoff_base_ps()
            .checked_shl(round - 1)
            .unwrap_or(u64::MAX)
    }

    /// Exponential backoff before re-send `attempt` (1-based), in
    /// nanoseconds: `retry_backoff_ns << (attempt - 1)`, saturating.
    #[must_use]
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        self.cfg
            .retry_backoff_ns
            .checked_shl(attempt - 1)
            .unwrap_or(u64::MAX)
    }

    /// Total backoff spent reaching a clean send after `corrupted`
    /// corrupted attempts (the sum of the per-re-send backoffs).
    #[must_use]
    pub fn total_backoff_ns(&self, corrupted: u32) -> u64 {
        (1..=corrupted).fold(0u64, |acc, a| acc.saturating_add(self.backoff_ns(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(seed: u64, ber: f64) -> FaultInjector {
        FaultInjector::new(
            FaultConfig {
                transient_ber: ber,
                ..FaultConfig::none()
            }
            .with_seed(seed),
        )
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let a = lossy(9, 0.3);
        let b = lossy(9, 0.3);
        // Query b in reverse order; answers must match a's.
        let fwd: Vec<bool> = (0..100).map(|i| a.transient_corrupts(1, i, 0, 0)).collect();
        let rev: Vec<bool> = (0..100)
            .rev()
            .map(|i| b.transient_corrupts(1, i, 0, 0))
            .collect();
        assert_eq!(fwd, rev.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn seeds_change_the_pattern() {
        let a = lossy(1, 0.3);
        let b = lossy(2, 0.3);
        let pa: Vec<bool> = (0..200).map(|i| a.transient_corrupts(0, i, 0, 0)).collect();
        let pb: Vec<bool> = (0..200).map(|i| b.transient_corrupts(0, i, 0, 0)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn corruption_rate_tracks_ber() {
        let inj = lossy(5, 0.2);
        let hits = (0..10_000)
            .filter(|&i| inj.transient_corrupts(0, i, 0, 0))
            .count();
        assert!((1_500..2_500).contains(&hits), "p=0.2 gave {hits}/10000");
    }

    #[test]
    fn zero_ber_never_fires() {
        let inj = lossy(5, 0.0);
        assert!((0..1000).all(|i| !inj.transient_corrupts(0, i, 0, 0)));
        assert_eq!(inj.attempts_before_success(0, 0, 0), Some(0));
    }

    #[test]
    fn attempts_respect_the_budget() {
        // BER 1.0: every attempt corrupted, so the transfer always fails.
        let inj = lossy(3, 1.0);
        assert_eq!(inj.attempts_before_success(0, 0, 0), None);
        // Moderate BER: success always within budget + 1 attempts.
        let inj = lossy(3, 0.4);
        for t in 0..200 {
            if let Some(a) = inj.attempts_before_success(0, 0, t) {
                assert!(a <= inj.config().max_retries);
                assert!(!inj.transient_corrupts(0, 0, t, a));
                for early in 0..a {
                    assert!(inj.transient_corrupts(0, 0, t, early));
                }
            }
        }
    }

    #[test]
    fn dead_set_is_exact() {
        let inj = FaultInjector::new(FaultConfig {
            dead_dpus: vec![2, 40, 7],
            ..FaultConfig::none()
        });
        // Note: parse() sorts, but direct construction must too for
        // binary_search. The constructor contract is "sorted"; mimic it.
        let inj = FaultInjector::new(FaultConfig {
            dead_dpus: {
                let mut d = inj.config().dead_dpus.clone();
                d.sort_unstable();
                d
            },
            ..inj.config().clone()
        });
        assert!(inj.is_dead(2) && inj.is_dead(7) && inj.is_dead(40));
        assert!(!inj.is_dead(0) && !inj.is_dead(41));
    }

    #[test]
    fn straggler_delays_are_bounded_and_deterministic() {
        let inj = FaultInjector::new(
            FaultConfig {
                straggler_prob: 0.5,
                straggler_max_ns: 100,
                ..FaultConfig::none()
            }
            .with_seed(11),
        );
        let mut fired = 0;
        for dpu in 0..1000 {
            let d = inj.straggler_delay_ns(dpu, 0);
            assert!(d <= 100);
            assert_eq!(d, inj.straggler_delay_ns(dpu, 0));
            if d > 0 {
                fired += 1;
            }
        }
        assert!((300..700).contains(&fired), "p=0.5 fired {fired}/1000");
        // Different epochs re-roll.
        let per_epoch: Vec<u64> = (0..8).map(|e| inj.straggler_delay_ns(7, e)).collect();
        assert!(
            per_epoch
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let inj = FaultInjector::new(FaultConfig {
            retry_backoff_ns: 100,
            ..FaultConfig::none()
        });
        assert_eq!(inj.backoff_ns(0), 0);
        assert_eq!(inj.backoff_ns(1), 100);
        assert_eq!(inj.backoff_ns(2), 200);
        assert_eq!(inj.backoff_ns(3), 400);
        assert_eq!(inj.total_backoff_ns(3), 700);
        assert_eq!(inj.backoff_ns(200), u64::MAX);
    }

    #[test]
    fn timed_corruption_tracks_burst_windows() {
        use crate::timeline::{FaultTimeline, TransientBurst};
        let inj = FaultInjector::new(
            FaultConfig {
                timeline: FaultTimeline {
                    bursts: vec![TransientBurst {
                        from_ps: 1_000,
                        until_ps: 2_000,
                        ber: 1.0,
                    }],
                    ..FaultTimeline::none()
                },
                ..FaultConfig::none()
            }
            .with_seed(21),
        );
        assert!(inj.is_active(), "burst-only scenario is active");
        // Outside the window the base BER (0) applies.
        assert!((0..50).all(|t| !inj.corrupts_at(999, 0, t, 0, 0, 0)));
        assert!((0..50).all(|t| !inj.corrupts_at(2_000, 0, t, 0, 0, 0)));
        // Inside the window BER 1.0 corrupts every attempt.
        assert!((0..50).all(|t| inj.corrupts_at(1_500, 0, t, 0, 0, 0)));
        // Round coordinate re-rolls: a moderate BER must not replay the
        // same pattern across rounds.
        let inj = lossy(17, 0.5);
        let r0: Vec<bool> = (0..100)
            .map(|t| inj.corrupts_at(0, 0, t, 0, 0, 0))
            .collect();
        let r1: Vec<bool> = (0..100)
            .map(|t| inj.corrupts_at(0, 0, t, 0, 0, 1))
            .collect();
        assert_ne!(r0, r1);
    }

    #[test]
    fn backoff_ps_uses_the_effective_base() {
        let inj = FaultInjector::new(FaultConfig {
            retry_backoff_ns: 100,
            ..FaultConfig::none()
        });
        assert_eq!(inj.backoff_ps(0), 0);
        assert_eq!(inj.backoff_ps(1), 100_000, "derived from the ns knob");
        assert_eq!(inj.backoff_ps(2), 200_000);
        assert_eq!(inj.backoff_ps(200), u64::MAX);
        let inj = FaultInjector::new(FaultConfig {
            retry_backoff_ns: 100,
            backoff_base_ps: Some(7),
            ..FaultConfig::none()
        });
        assert_eq!(inj.backoff_ps(1), 7, "ps override wins");
        assert_eq!(inj.backoff_ps(3), 28);
    }

    #[test]
    fn flip_positions_are_in_range() {
        let inj = lossy(13, 1.0);
        for t in 0..100 {
            let (byte, bit) = inj.flip_position(0, 0, t, 0, 33);
            assert!(byte < 33);
            assert!(bit < 8);
        }
    }
}
