//! Permanent (hard) fabric faults.
//!
//! Transient faults corrupt one transfer attempt; permanent faults kill a
//! *component* of the fabric for the lifetime of the run:
//!
//! * an inter-bank **ring segment** (one direction of one bank-to-bank
//!   link inside a chip);
//! * a **crossbar port** on the DIMM buffer chip (the Tx or Rx side of
//!   one chip's DQ attachment to the crossbar);
//! * an entire **rank** (its DQ lanes are gone, so every DPU on it is
//!   unreachable from the rest of the channel).
//!
//! Because PIMnet schedules are static, a permanent fault does not drop
//! packets at runtime — it invalidates the compiled schedule. The core
//! crate's `schedule::repair` consumes a [`PermanentFaultSet`] and rewrites
//! the schedule around the dead components; this module only *names* them.
//!
//! Components are addressable two ways, both deterministic:
//!
//! * **explicitly**, in fault-config files (`perm_segments = r0c1b3E`) or
//!   parsed from compact tokens ([`PermanentFaultSet::parse_tokens`]);
//! * **by seed**, sampling each component independently via the same
//!   coordinate-hash scheme the transient injector uses
//!   ([`PermanentFaultSet::sample`]), so chaos sweeps can draw reproducible
//!   hard-fault scenarios from a single integer.

use std::collections::BTreeSet;
use std::fmt;

use pim_sim::rng::hash_coords;

/// Domain-separation tags for seeded permanent-fault sampling.
const TAG_PERM_SEG: u64 = 0x7073_6567; // "pseg"
const TAG_PERM_PORT: u64 = 0x7070_7274; // "pprt"
const TAG_PERM_RANK: u64 = 0x7072_6E6B; // "prnk"

/// Converts a hash to a uniform probability in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One dead unidirectional inter-bank ring segment: the link leaving
/// `from_bank` of chip (`rank`, `chip`) eastwards (`east = true`) or
/// westwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId {
    /// Rank within the channel.
    pub rank: u32,
    /// Chip within the rank.
    pub chip: u32,
    /// Bank the segment leaves from.
    pub from_bank: u32,
    /// `true` for the eastbound (increasing bank index) segment.
    pub east: bool,
}

impl SegmentId {
    /// Parses the compact token form `r<rank>c<chip>b<bank><E|W>`
    /// (e.g. `r0c1b3E`).
    ///
    /// # Errors
    ///
    /// Returns a message describing the expected grammar on mismatch.
    pub fn parse(token: &str) -> Result<Self, String> {
        let bad = || format!("bad segment '{token}' (expected r<rank>c<chip>b<bank><E|W>)");
        let rest = token.strip_prefix('r').ok_or_else(bad)?;
        let (rank, rest) = rest.split_once('c').ok_or_else(bad)?;
        let (chip, rest) = rest.split_once('b').ok_or_else(bad)?;
        let east = match rest.chars().last() {
            Some('E' | 'e') => true,
            Some('W' | 'w') => false,
            _ => return Err(bad()),
        };
        let bank = &rest[..rest.len() - 1];
        Ok(SegmentId {
            rank: rank.parse().map_err(|_| bad())?,
            chip: chip.parse().map_err(|_| bad())?,
            from_bank: bank.parse().map_err(|_| bad())?,
            east,
        })
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}c{}b{}{}",
            self.rank,
            self.chip,
            self.from_bank,
            if self.east { 'E' } else { 'W' }
        )
    }
}

/// Which side of a chip's crossbar attachment is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortSide {
    /// The chip's send channel into the crossbar.
    Tx,
    /// The chip's receive channel out of the crossbar.
    Rx,
}

impl fmt::Display for PortSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortSide::Tx => "tx",
            PortSide::Rx => "rx",
        })
    }
}

/// One dead crossbar port on a rank's buffer chip: the `side` half of chip
/// (`rank`, `chip`)'s DQ attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId {
    /// Rank within the channel.
    pub rank: u32,
    /// Chip within the rank.
    pub chip: u32,
    /// Dead side (send or receive).
    pub side: PortSide,
}

impl PortId {
    /// Parses the compact token form `r<rank>c<chip><tx|rx>`
    /// (e.g. `r0c1tx`).
    ///
    /// # Errors
    ///
    /// Returns a message describing the expected grammar on mismatch.
    pub fn parse(token: &str) -> Result<Self, String> {
        let bad = || format!("bad port '{token}' (expected r<rank>c<chip><tx|rx>)");
        let rest = token.strip_prefix('r').ok_or_else(bad)?;
        let (rank, rest) = rest.split_once('c').ok_or_else(bad)?;
        let (chip, side) = if let Some(c) = rest.strip_suffix("tx") {
            (c, PortSide::Tx)
        } else if let Some(c) = rest.strip_suffix("rx") {
            (c, PortSide::Rx)
        } else {
            return Err(bad());
        };
        Ok(PortId {
            rank: rank.parse().map_err(|_| bad())?,
            chip: chip.parse().map_err(|_| bad())?,
            side,
        })
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}c{}{}", self.rank, self.chip, self.side)
    }
}

/// Per-component probabilities for seeded permanent-fault sampling.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PermanentFaultRates {
    /// Probability that each ring segment is dead.
    pub segment_prob: f64,
    /// Probability that each crossbar port half is dead.
    pub port_prob: f64,
    /// Probability that each rank's DQ lanes are dead.
    pub rank_prob: f64,
}

impl PermanentFaultRates {
    /// `true` if sampling with these rates can ever mark a component dead.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.segment_prob > 0.0 || self.port_prob > 0.0 || self.rank_prob > 0.0
    }
}

/// The complete set of permanently dead fabric components of one channel.
///
/// Sets are ordered (`BTreeSet`) so iteration — and everything derived from
/// it: repair decisions, reports, timings — is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PermanentFaultSet {
    /// Dead inter-bank ring segments.
    pub segments: BTreeSet<SegmentId>,
    /// Dead crossbar ports.
    pub ports: BTreeSet<PortId>,
    /// Ranks whose DQ lanes are entirely dead.
    pub dead_ranks: BTreeSet<u32>,
}

impl PermanentFaultSet {
    /// The empty (healthy-fabric) set.
    #[must_use]
    pub fn none() -> Self {
        PermanentFaultSet::default()
    }

    /// `true` when no component is dead.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() && self.ports.is_empty() && self.dead_ranks.is_empty()
    }

    /// Number of dead components across all classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len() + self.ports.len() + self.dead_ranks.len()
    }

    /// Parses a comma-separated token list mixing all three component
    /// classes: segments (`r0c1b3E`), ports (`r0c1tx`), and ranks
    /// (`rank2`). Empty input yields the empty set.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn parse_tokens(text: &str) -> Result<Self, String> {
        let mut set = PermanentFaultSet::none();
        for token in text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(rank) = token.strip_prefix("rank") {
                set.dead_ranks.insert(
                    rank.parse()
                        .map_err(|_| format!("bad rank token '{token}' (expected rank<n>)"))?,
                );
            } else if token.ends_with(['x', 'X']) {
                set.ports.insert(PortId::parse(token)?);
            } else {
                set.segments.insert(SegmentId::parse(token)?);
            }
        }
        Ok(set)
    }

    /// Draws a reproducible permanent-fault scenario for a fabric of
    /// `ranks` × `chips` × `banks` (one channel): every component is
    /// independently dead with its class probability, decided by a pure
    /// hash of `(seed, component coordinates)` — the same scheme as the
    /// transient injector, so identical seeds always produce identical
    /// scenarios regardless of query order.
    #[must_use]
    pub fn sample(
        seed: u64,
        ranks: u32,
        chips: u32,
        banks: u32,
        rates: &PermanentFaultRates,
    ) -> Self {
        let mut set = PermanentFaultSet::none();
        if !rates.is_active() {
            return set;
        }
        for rank in 0..ranks {
            if unit(hash_coords(seed, &[TAG_PERM_RANK, u64::from(rank)])) < rates.rank_prob {
                set.dead_ranks.insert(rank);
            }
            for chip in 0..chips {
                for (side_tag, side) in [(0u64, PortSide::Tx), (1u64, PortSide::Rx)] {
                    let h = hash_coords(
                        seed,
                        &[TAG_PERM_PORT, u64::from(rank), u64::from(chip), side_tag],
                    );
                    if unit(h) < rates.port_prob {
                        set.ports.insert(PortId { rank, chip, side });
                    }
                }
                for bank in 0..banks {
                    for (dir_tag, east) in [(0u64, true), (1u64, false)] {
                        let h = hash_coords(
                            seed,
                            &[
                                TAG_PERM_SEG,
                                u64::from(rank),
                                u64::from(chip),
                                u64::from(bank),
                                dir_tag,
                            ],
                        );
                        if unit(h) < rates.segment_prob {
                            set.segments.insert(SegmentId {
                                rank,
                                chip,
                                from_bank: bank,
                                east,
                            });
                        }
                    }
                }
            }
        }
        set
    }

    /// Merges another set into this one (union of all classes).
    pub fn merge(&mut self, other: &PermanentFaultSet) {
        self.segments.extend(other.segments.iter().copied());
        self.ports.extend(other.ports.iter().copied());
        self.dead_ranks.extend(other.dead_ranks.iter().copied());
    }
}

impl fmt::Display for PermanentFaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut tokens: Vec<String> = Vec::with_capacity(self.len());
        tokens.extend(self.segments.iter().map(ToString::to_string));
        tokens.extend(self.ports.iter().map(ToString::to_string));
        tokens.extend(self.dead_ranks.iter().map(|r| format!("rank{r}")));
        if tokens.is_empty() {
            f.write_str("(none)")
        } else {
            f.write_str(&tokens.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip_all_classes() {
        let set =
            PermanentFaultSet::parse_tokens("r0c1b3E, r1c2b0W, r0c1tx, r1c0rx, rank2").unwrap();
        assert_eq!(set.segments.len(), 2);
        assert_eq!(set.ports.len(), 2);
        assert_eq!(set.dead_ranks, BTreeSet::from([2]));
        // Display re-parses to the same set.
        let again = PermanentFaultSet::parse_tokens(&set.to_string()).unwrap();
        assert_eq!(again, set);
    }

    #[test]
    fn segment_token_grammar() {
        let s = SegmentId::parse("r2c7b5W").unwrap();
        assert_eq!((s.rank, s.chip, s.from_bank, s.east), (2, 7, 5, false));
        assert!(SegmentId::parse("c7b5W").is_err());
        assert!(SegmentId::parse("r2c7b5").is_err());
        assert!(SegmentId::parse("r2c7bXE").is_err());
    }

    #[test]
    fn port_token_grammar() {
        let p = PortId::parse("r1c3rx").unwrap();
        assert_eq!((p.rank, p.chip, p.side), (1, 3, PortSide::Rx));
        assert!(PortId::parse("r1c3").is_err());
        assert!(PortId::parse("r1ctx").is_err());
    }

    #[test]
    fn empty_and_garbage_tokens() {
        assert!(PermanentFaultSet::parse_tokens("").unwrap().is_empty());
        assert!(PermanentFaultSet::parse_tokens(" , ,").unwrap().is_empty());
        assert!(PermanentFaultSet::parse_tokens("rankX").is_err());
        assert!(PermanentFaultSet::parse_tokens("garbage").is_err());
    }

    #[test]
    fn sampling_is_deterministic_and_tracks_rates() {
        let rates = PermanentFaultRates {
            segment_prob: 0.25,
            port_prob: 0.25,
            rank_prob: 0.25,
        };
        let a = PermanentFaultSet::sample(9, 4, 8, 8, &rates);
        let b = PermanentFaultSet::sample(9, 4, 8, 8, &rates);
        assert_eq!(a, b, "same seed must sample the same scenario");
        let c = PermanentFaultSet::sample(10, 4, 8, 8, &rates);
        assert_ne!(a, c, "different seeds should differ at p=0.25");
        // 4*8*8*2 = 512 segments at p=0.25: expect roughly 128.
        assert!(
            (64..256).contains(&a.segments.len()),
            "{}",
            a.segments.len()
        );
    }

    #[test]
    fn zero_rates_sample_nothing() {
        let set = PermanentFaultSet::sample(1, 4, 8, 8, &PermanentFaultRates::default());
        assert!(set.is_empty());
        assert_eq!(set.to_string(), "(none)");
    }

    #[test]
    fn merge_unions_all_classes() {
        let mut a = PermanentFaultSet::parse_tokens("r0c0b0E, rank1").unwrap();
        let b = PermanentFaultSet::parse_tokens("r0c0b0E, r0c1tx").unwrap();
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }
}
