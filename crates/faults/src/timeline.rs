//! Time-varying faults: a seeded [`FaultTimeline`] whose events are
//! stamped with simulated time instead of being pre-applied.
//!
//! The static fault model ([`crate::permanent`]) freezes the scenario
//! before planning: every dead component is known up front, `repair` and
//! `plan_degraded` absorb it, and the run proceeds on a fabric that never
//! changes. Real deployments are not that polite — a ring segment dies
//! *during* step 7, a link flaps for a few microseconds and comes back, a
//! voltage droop elevates the bit-error rate for a window. This module
//! names those events:
//!
//! * **arrivals** — a permanent fault (segment, port, or rank) that comes
//!   into existence at a stamped picosecond and stays dead forever after;
//! * **link flaps** — a ring segment that is down over a half-open window
//!   `[from_ps, until_ps)` and healthy outside it;
//! * **transient bursts** — a window during which the effective bit-error
//!   rate is elevated to the burst's BER.
//!
//! The token grammar extends the permanent-fault tokens with an
//! `@t=<ps>ps` suffix (arrivals), a `@t=<ps>ps+<ps>ps` window suffix
//! (flaps), and `ber=<p>@t=<ps>ps+<ps>ps` (bursts). Timelines can also be
//! *sampled* from a seed ([`FaultTimeline::sample`]) with the same
//! coordinate-hash scheme as every other fault decision, so chaos soaks
//! draw reproducible time-varying storms from one integer.
//!
//! The module also owns the link **health score** ([`HealthTracker`]): a
//! per-segment Healthy → Probation → Quarantined hysteresis that promotes
//! a segment to a permanent fault after `fail_threshold` failures, and
//! bumps a monotone **epoch** counter the schedule cache keys on so a
//! post-quarantine replan can never collide with a pre-fault entry.

use std::collections::BTreeMap;
use std::fmt;

use pim_sim::rng::hash_coords;

use crate::permanent::{PermanentFaultSet, PortId, SegmentId};

/// Domain-separation tags for seeded timeline sampling.
const TAG_ARRIVAL: u64 = 0x7461_7272; // "tarr"
const TAG_FLAP: u64 = 0x7466_6C70; // "tflp"
const TAG_BURST: u64 = 0x7462_7374; // "tbst"

/// Converts a hash to a uniform probability in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// What a stamped permanent-fault arrival kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArrivalKind {
    /// A unidirectional inter-bank ring segment dies.
    Segment(SegmentId),
    /// A crossbar port half dies.
    Port(PortId),
    /// A whole rank's DQ lanes die.
    Rank(u32),
}

impl fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalKind::Segment(s) => write!(f, "{s}"),
            ArrivalKind::Port(p) => write!(f, "{p}"),
            ArrivalKind::Rank(r) => write!(f, "rank{r}"),
        }
    }
}

/// One permanent fault arriving at a stamped picosecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Arrival {
    /// Simulated arrival time in integer picoseconds; the component is
    /// dead at every `t >= at_ps`.
    pub at_ps: u64,
    /// The dying component.
    pub what: ArrivalKind,
}

impl fmt::Display for Arrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@t={}ps", self.what, self.at_ps)
    }
}

/// A ring segment that is down over `[from_ps, until_ps)` and healthy
/// outside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkFlap {
    /// The flapping segment.
    pub segment: SegmentId,
    /// Window start (inclusive), picoseconds.
    pub from_ps: u64,
    /// Window end (exclusive), picoseconds.
    pub until_ps: u64,
}

impl LinkFlap {
    /// Is the segment down at `t_ps`?
    #[must_use]
    pub fn is_down(&self, t_ps: u64) -> bool {
        (self.from_ps..self.until_ps).contains(&t_ps)
    }
}

impl fmt::Display for LinkFlap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@t={}ps+{}ps",
            self.segment,
            self.from_ps,
            self.until_ps.saturating_sub(self.from_ps)
        )
    }
}

/// A window of elevated transient bit-error rate.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct TransientBurst {
    /// Window start (inclusive), picoseconds.
    pub from_ps: u64,
    /// Window end (exclusive), picoseconds.
    pub until_ps: u64,
    /// Effective BER inside the window (replaces the base rate when
    /// higher).
    pub ber: f64,
}

impl TransientBurst {
    /// Is the burst active at `t_ps`?
    #[must_use]
    pub fn is_active(&self, t_ps: u64) -> bool {
        (self.from_ps..self.until_ps).contains(&t_ps)
    }
}

impl fmt::Display for TransientBurst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ber={}@t={}ps+{}ps",
            self.ber,
            self.from_ps,
            self.until_ps.saturating_sub(self.from_ps)
        )
    }
}

/// Sampling rates for seeded timeline generation (see
/// [`FaultTimeline::sample`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimelineRates {
    /// Probability that each ring segment dies within the horizon.
    pub segment_arrival_prob: f64,
    /// Probability that each crossbar port half dies within the horizon.
    pub port_arrival_prob: f64,
    /// Probability that each rank dies within the horizon.
    pub rank_arrival_prob: f64,
    /// Probability that each ring segment flaps once within the horizon.
    pub flap_prob: f64,
    /// Probability that a channel-wide transient burst opens.
    pub burst_prob: f64,
    /// Effective BER inside a sampled burst window.
    pub burst_ber: f64,
}

impl TimelineRates {
    /// `true` if sampling with these rates can ever produce an event.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.segment_arrival_prob > 0.0
            || self.port_arrival_prob > 0.0
            || self.rank_arrival_prob > 0.0
            || self.flap_prob > 0.0
            || (self.burst_prob > 0.0 && self.burst_ber > 0.0)
    }
}

/// A deterministic sequence of time-stamped fault events.
///
/// Events are kept sorted in their canonical (`Ord`) order, so iteration
/// — and everything derived from it: replans, health updates, traces —
/// is independent of construction order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultTimeline {
    /// Permanent-fault arrivals, sorted by `(at_ps, component)`.
    pub arrivals: Vec<Arrival>,
    /// Link-flap windows, sorted.
    pub flaps: Vec<LinkFlap>,
    /// Transient-BER bursts, sorted by window.
    pub bursts: Vec<TransientBurst>,
}

impl FaultTimeline {
    /// The empty timeline (nothing ever changes mid-run).
    #[must_use]
    pub fn none() -> Self {
        FaultTimeline::default()
    }

    /// `true` when no event is stamped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty() && self.flaps.is_empty() && self.bursts.is_empty()
    }

    /// Total stamped events across all classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len() + self.flaps.len() + self.bursts.len()
    }

    /// Restores the canonical sort order after direct mutation.
    pub fn normalize(&mut self) {
        self.arrivals.sort_unstable();
        self.arrivals.dedup();
        self.flaps.sort_unstable();
        self.flaps.dedup();
        self.bursts
            .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Every permanent fault that has arrived at or before `t_ps`,
    /// folded into one set.
    #[must_use]
    pub fn arrived_by(&self, t_ps: u64) -> PermanentFaultSet {
        let mut set = PermanentFaultSet::none();
        for a in self.arrivals.iter().filter(|a| a.at_ps <= t_ps) {
            match a.what {
                ArrivalKind::Segment(s) => {
                    set.segments.insert(s);
                }
                ArrivalKind::Port(p) => {
                    set.ports.insert(p);
                }
                ArrivalKind::Rank(r) => {
                    set.dead_ranks.insert(r);
                }
            }
        }
        set
    }

    /// Arrivals stamped in the half-open window `(after_ps, upto_ps]` —
    /// what a step-boundary check at `upto_ps` newly observes when the
    /// previous check ran at `after_ps`.
    #[must_use]
    pub fn arrivals_between(&self, after_ps: u64, upto_ps: u64) -> Vec<Arrival> {
        self.arrivals
            .iter()
            .copied()
            .filter(|a| a.at_ps > after_ps && a.at_ps <= upto_ps)
            .collect()
    }

    /// Is `segment` flapped down at `t_ps`?
    #[must_use]
    pub fn flap_down(&self, segment: SegmentId, t_ps: u64) -> bool {
        self.flaps
            .iter()
            .any(|f| f.segment == segment && f.is_down(t_ps))
    }

    /// The elevated BER active at `t_ps`, if any burst window covers it
    /// (the max over overlapping windows).
    #[must_use]
    pub fn burst_ber(&self, t_ps: u64) -> Option<f64> {
        self.bursts
            .iter()
            .filter(|b| b.is_active(t_ps))
            .map(|b| b.ber)
            .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
    }

    /// The last stamped instant on the timeline (the end of the latest
    /// window, or the latest arrival), 0 when empty. Soak harnesses use
    /// it to size their simulated horizon.
    #[must_use]
    pub fn end_ps(&self) -> u64 {
        let a = self.arrivals.iter().map(|a| a.at_ps).max().unwrap_or(0);
        let f = self.flaps.iter().map(|f| f.until_ps).max().unwrap_or(0);
        let b = self.bursts.iter().map(|b| b.until_ps).max().unwrap_or(0);
        a.max(f).max(b)
    }

    /// The timeline as seen from a clock that starts at `origin_ps`:
    /// every stamp moves `origin_ps` earlier. Arrivals already in the
    /// past clamp to 0 (they are in effect immediately); flap/burst
    /// windows that ended at or before the origin are dropped, and
    /// windows straddling it are clipped to start at 0. A serving engine
    /// uses this to hand a mid-stream request a recovery clock that
    /// starts at the request's own dispatch time while still seeing the
    /// storm exactly as stamped on the wall clock.
    #[must_use]
    pub fn shifted(&self, origin_ps: u64) -> FaultTimeline {
        let mut out = FaultTimeline {
            arrivals: self
                .arrivals
                .iter()
                .map(|a| Arrival {
                    at_ps: a.at_ps.saturating_sub(origin_ps),
                    what: a.what,
                })
                .collect(),
            flaps: self
                .flaps
                .iter()
                .filter(|f| f.until_ps > origin_ps)
                .map(|f| LinkFlap {
                    segment: f.segment,
                    from_ps: f.from_ps.saturating_sub(origin_ps),
                    until_ps: f.until_ps - origin_ps,
                })
                .collect(),
            bursts: self
                .bursts
                .iter()
                .filter(|b| b.until_ps > origin_ps)
                .map(|b| TransientBurst {
                    from_ps: b.from_ps.saturating_sub(origin_ps),
                    until_ps: b.until_ps - origin_ps,
                    ber: b.ber,
                })
                .collect(),
        };
        out.normalize();
        out
    }

    /// Parses a comma-separated arrival token list:
    /// `r0c1b3E@t=5000ps, r0c2tx@t=800ps, rank2@t=12000ps`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn parse_arrivals(text: &str) -> Result<Vec<Arrival>, String> {
        let mut out = Vec::new();
        for token in text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (component, at) = token
                .split_once("@t=")
                .ok_or_else(|| format!("bad arrival '{token}' (expected <component>@t=<ps>ps)"))?;
            let at_ps = parse_ps(at).map_err(|e| format!("bad arrival '{token}': {e}"))?;
            let what = parse_component(component.trim())?;
            out.push(Arrival { at_ps, what });
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Parses a comma-separated flap token list:
    /// `r0c1b3E@t=5000ps+3000ps` (segment down from 5000 ps for 3000 ps).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn parse_flaps(text: &str) -> Result<Vec<LinkFlap>, String> {
        let mut out = Vec::new();
        for token in text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let bad = || format!("bad flap '{token}' (expected <segment>@t=<ps>ps+<ps>ps)");
            let (seg, window) = token.split_once("@t=").ok_or_else(bad)?;
            let (from, dur) = window.split_once('+').ok_or_else(bad)?;
            let from_ps = parse_ps(from).map_err(|e| format!("bad flap '{token}': {e}"))?;
            let dur_ps = parse_ps(dur).map_err(|e| format!("bad flap '{token}': {e}"))?;
            out.push(LinkFlap {
                segment: SegmentId::parse(seg.trim())?,
                from_ps,
                until_ps: from_ps.saturating_add(dur_ps),
            });
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Parses a comma-separated burst token list:
    /// `ber=0.5@t=1000ps+500ps` (BER 0.5 over `[1000, 1500)` ps).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn parse_bursts(text: &str) -> Result<Vec<TransientBurst>, String> {
        let mut out = Vec::new();
        for token in text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let bad = || format!("bad burst '{token}' (expected ber=<p>@t=<ps>ps+<ps>ps)");
            let rest = token.strip_prefix("ber=").ok_or_else(bad)?;
            let (ber, window) = rest.split_once("@t=").ok_or_else(bad)?;
            let ber: f64 = ber
                .parse()
                .ok()
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| format!("bad burst '{token}': BER not in [0, 1]"))?;
            let (from, dur) = window.split_once('+').ok_or_else(bad)?;
            let from_ps = parse_ps(from).map_err(|e| format!("bad burst '{token}': {e}"))?;
            let dur_ps = parse_ps(dur).map_err(|e| format!("bad burst '{token}': {e}"))?;
            out.push(TransientBurst {
                from_ps,
                until_ps: from_ps.saturating_add(dur_ps),
                ber,
            });
        }
        out.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(out)
    }

    /// Draws a reproducible time-varying storm for a fabric of `ranks` ×
    /// `chips` × `banks` over a simulated horizon of `horizon_ps`
    /// picoseconds: every component independently dies / flaps with its
    /// class probability at a uniformly drawn instant, decided by a pure
    /// hash of `(seed, component coordinates)` — identical seeds always
    /// produce identical storms regardless of query order.
    #[must_use]
    pub fn sample(
        seed: u64,
        ranks: u32,
        chips: u32,
        banks: u32,
        horizon_ps: u64,
        rates: &TimelineRates,
    ) -> Self {
        let mut tl = FaultTimeline::none();
        if !rates.is_active() || horizon_ps == 0 {
            return tl;
        }
        let at = |h: u64| 1 + hash_coords(h, &[1]) % horizon_ps.max(1);
        for rank in 0..ranks {
            let h = hash_coords(seed, &[TAG_ARRIVAL, 3, u64::from(rank)]);
            if unit(h) < rates.rank_arrival_prob {
                tl.arrivals.push(Arrival {
                    at_ps: at(h),
                    what: ArrivalKind::Rank(rank),
                });
            }
            for chip in 0..chips {
                for (side_tag, side) in [
                    (0u64, crate::permanent::PortSide::Tx),
                    (1u64, crate::permanent::PortSide::Rx),
                ] {
                    let h = hash_coords(
                        seed,
                        &[TAG_ARRIVAL, 2, u64::from(rank), u64::from(chip), side_tag],
                    );
                    if unit(h) < rates.port_arrival_prob {
                        tl.arrivals.push(Arrival {
                            at_ps: at(h),
                            what: ArrivalKind::Port(PortId { rank, chip, side }),
                        });
                    }
                }
                for bank in 0..banks {
                    for (dir_tag, east) in [(0u64, true), (1u64, false)] {
                        let seg = SegmentId {
                            rank,
                            chip,
                            from_bank: bank,
                            east,
                        };
                        let coords = [u64::from(rank), u64::from(chip), u64::from(bank), dir_tag];
                        let h = hash_coords(
                            seed,
                            &[TAG_ARRIVAL, 1, coords[0], coords[1], coords[2], coords[3]],
                        );
                        if unit(h) < rates.segment_arrival_prob {
                            tl.arrivals.push(Arrival {
                                at_ps: at(h),
                                what: ArrivalKind::Segment(seg),
                            });
                        }
                        let h = hash_coords(
                            seed,
                            &[TAG_FLAP, coords[0], coords[1], coords[2], coords[3]],
                        );
                        if unit(h) < rates.flap_prob {
                            let from_ps = at(h);
                            // Flap length: 1/16 of the horizon, so backoff
                            // (which doubles) escapes it within a few rounds.
                            tl.flaps.push(LinkFlap {
                                segment: seg,
                                from_ps,
                                until_ps: from_ps.saturating_add(horizon_ps / 16 + 1),
                            });
                        }
                    }
                }
            }
        }
        let h = hash_coords(seed, &[TAG_BURST]);
        if unit(h) < rates.burst_prob && rates.burst_ber > 0.0 {
            let from_ps = at(h);
            tl.bursts.push(TransientBurst {
                from_ps,
                until_ps: from_ps.saturating_add(horizon_ps / 8 + 1),
                ber: rates.burst_ber,
            });
        }
        tl.normalize();
        tl
    }
}

impl fmt::Display for FaultTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut tokens: Vec<String> = Vec::with_capacity(self.len());
        tokens.extend(self.arrivals.iter().map(ToString::to_string));
        tokens.extend(self.flaps.iter().map(ToString::to_string));
        tokens.extend(self.bursts.iter().map(ToString::to_string));
        if tokens.is_empty() {
            f.write_str("(none)")
        } else {
            f.write_str(&tokens.join(","))
        }
    }
}

/// Parses `<u64>` with an optional `ps` suffix.
fn parse_ps(s: &str) -> Result<u64, String> {
    let digits = s.trim().trim_end_matches("ps").trim();
    digits
        .parse()
        .map_err(|_| format!("'{s}' is not an integer picosecond count"))
}

/// Parses one permanent-fault component token (segment / port / rank).
fn parse_component(token: &str) -> Result<ArrivalKind, String> {
    if let Some(rank) = token.strip_prefix("rank") {
        return Ok(ArrivalKind::Rank(rank.parse().map_err(|_| {
            format!("bad rank token '{token}' (expected rank<n>)")
        })?));
    }
    if token.ends_with(['x', 'X']) {
        return Ok(ArrivalKind::Port(PortId::parse(token)?));
    }
    Ok(ArrivalKind::Segment(SegmentId::parse(token)?))
}

/// A link's place in the quarantine hysteresis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkHealth {
    /// No recent failures.
    Healthy,
    /// Failed recently; accumulating evidence either way.
    Probation,
    /// Promoted to a permanent fault; excluded from every future plan.
    Quarantined,
}

/// Per-segment failure/success bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct HealthScore {
    fails: u32,
    probation_successes: u32,
    quarantined: bool,
}

/// Quarantine/probation hysteresis knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive-window failure count that promotes a segment to a
    /// permanent fault (K).
    pub fail_threshold: u32,
    /// Clean transfers a probationary segment must carry before its
    /// failure count resets to zero.
    pub probation_successes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            fail_threshold: 3,
            probation_successes: 2,
        }
    }
}

/// Deterministic link-health scoring with quarantine/probation
/// hysteresis.
///
/// Every state transition is a pure function of the recorded
/// failure/success sequence (no clocks, no randomness), and the map is a
/// `BTreeMap` so iteration order is canonical. Quarantining a segment
/// bumps the monotone [`HealthTracker::epoch`] counter — the schedule
/// cache folds it into its key, so replans after a quarantine can never
/// be answered from a pre-fault entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthTracker {
    config: HealthConfig,
    scores: BTreeMap<SegmentId, HealthScore>,
    epoch: u64,
}

impl HealthTracker {
    /// A tracker with the given hysteresis knobs, all segments healthy.
    #[must_use]
    pub fn new(config: HealthConfig) -> Self {
        HealthTracker {
            config,
            scores: BTreeMap::new(),
            epoch: 0,
        }
    }

    /// The current health epoch: bumped once per quarantine promotion.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A segment's current state.
    #[must_use]
    pub fn state(&self, segment: SegmentId) -> LinkHealth {
        match self.scores.get(&segment) {
            None => LinkHealth::Healthy,
            Some(s) if s.quarantined => LinkHealth::Quarantined,
            Some(s) if s.fails > 0 => LinkHealth::Probation,
            Some(_) => LinkHealth::Healthy,
        }
    }

    /// Records one failed transfer over `segment`. Returns `true` when
    /// this failure promotes the segment to quarantine (at which point
    /// the epoch has already been bumped).
    pub fn record_failure(&mut self, segment: SegmentId) -> bool {
        let s = self.scores.entry(segment).or_default();
        if s.quarantined {
            return false;
        }
        s.fails += 1;
        s.probation_successes = 0;
        if s.fails >= self.config.fail_threshold {
            s.quarantined = true;
            self.epoch += 1;
            return true;
        }
        false
    }

    /// Records one clean transfer over `segment`; enough consecutive
    /// successes graduate a probationary segment back to healthy.
    pub fn record_success(&mut self, segment: SegmentId) {
        if let Some(s) = self.scores.get_mut(&segment) {
            if s.quarantined || s.fails == 0 {
                return;
            }
            s.probation_successes += 1;
            if s.probation_successes >= self.config.probation_successes {
                s.fails = 0;
                s.probation_successes = 0;
            }
        }
    }

    /// Every quarantined segment, in canonical order.
    #[must_use]
    pub fn quarantined(&self) -> Vec<SegmentId> {
        self.scores
            .iter()
            .filter(|(_, s)| s.quarantined)
            .map(|(&seg, _)| seg)
            .collect()
    }

    /// The quarantined segments as a permanent-fault set (what replans
    /// merge into their scenario).
    #[must_use]
    pub fn as_fault_set(&self) -> PermanentFaultSet {
        let mut set = PermanentFaultSet::none();
        set.segments.extend(self.quarantined());
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(bank: u32) -> SegmentId {
        SegmentId {
            rank: 0,
            chip: 1,
            from_bank: bank,
            east: true,
        }
    }

    #[test]
    fn arrival_tokens_roundtrip() {
        let arr =
            FaultTimeline::parse_arrivals("r0c1b3E@t=5000ps, rank2@t=12000ps, r0c1tx@t=800ps")
                .unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].at_ps, 800);
        assert!(matches!(arr[0].what, ArrivalKind::Port(_)));
        assert!(matches!(arr[2].what, ArrivalKind::Rank(2)));
        let tl = FaultTimeline {
            arrivals: arr.clone(),
            ..FaultTimeline::none()
        };
        let again = FaultTimeline::parse_arrivals(&tl.to_string()).unwrap();
        assert_eq!(again, arr);
    }

    #[test]
    fn shifted_rebases_the_clock_and_clips_windows() {
        let tl = FaultTimeline {
            arrivals: vec![
                Arrival {
                    at_ps: 500,
                    what: ArrivalKind::Rank(1),
                },
                Arrival {
                    at_ps: 3_000,
                    what: ArrivalKind::Segment(seg(2)),
                },
            ],
            flaps: vec![
                LinkFlap {
                    segment: seg(0),
                    from_ps: 100,
                    until_ps: 900,
                },
                LinkFlap {
                    segment: seg(1),
                    from_ps: 800,
                    until_ps: 2_200,
                },
            ],
            bursts: vec![TransientBurst {
                from_ps: 1_500,
                until_ps: 2_500,
                ber: 0.25,
            }],
        };
        let s = tl.shifted(1_000);
        // Past arrival clamps to 0, future one rebases.
        assert_eq!(s.arrivals[0].at_ps, 0);
        assert_eq!(s.arrivals[1].at_ps, 2_000);
        // The flap that ended before the origin is gone; the straddling
        // one is clipped to start at the new time zero.
        assert_eq!(s.flaps.len(), 1);
        assert_eq!((s.flaps[0].from_ps, s.flaps[0].until_ps), (0, 1_200));
        assert_eq!((s.bursts[0].from_ps, s.bursts[0].until_ps), (500, 1_500));
        // Shifting by zero is the identity (modulo normalization).
        let mut id = tl.clone();
        id.normalize();
        assert_eq!(tl.shifted(0), id);
    }

    #[test]
    fn arrival_tokens_reject_garbage() {
        assert!(FaultTimeline::parse_arrivals("r0c1b3E").is_err());
        assert!(FaultTimeline::parse_arrivals("r0c1b3E@t=xps").is_err());
        assert!(FaultTimeline::parse_arrivals("bogus@t=5ps").is_err());
        assert!(FaultTimeline::parse_arrivals("").unwrap().is_empty());
    }

    #[test]
    fn flap_and_burst_tokens_roundtrip() {
        let flaps = FaultTimeline::parse_flaps("r0c1b3E@t=5000ps+3000ps").unwrap();
        assert_eq!(flaps[0].from_ps, 5000);
        assert_eq!(flaps[0].until_ps, 8000);
        assert!(flaps[0].is_down(5000));
        assert!(flaps[0].is_down(7999));
        assert!(!flaps[0].is_down(8000));
        let bursts = FaultTimeline::parse_bursts("ber=0.5@t=1000ps+500ps").unwrap();
        assert!((bursts[0].ber - 0.5).abs() < 1e-12);
        assert!(bursts[0].is_active(1499) && !bursts[0].is_active(1500));
        assert!(FaultTimeline::parse_bursts("ber=1.5@t=0ps+1ps").is_err());
        assert!(FaultTimeline::parse_flaps("r0c1b3E@t=5ps").is_err());
        let tl = FaultTimeline {
            flaps: flaps.clone(),
            bursts: bursts.clone(),
            ..FaultTimeline::none()
        };
        let s = tl.to_string();
        assert_eq!(
            FaultTimeline::parse_flaps(s.split(',').next().unwrap()).unwrap(),
            flaps
        );
    }

    #[test]
    fn arrived_by_accumulates_monotonically() {
        let tl = FaultTimeline {
            arrivals: FaultTimeline::parse_arrivals(
                "r0c1b3E@t=100ps, r0c2tx@t=200ps, rank1@t=300ps",
            )
            .unwrap(),
            ..FaultTimeline::none()
        };
        assert!(tl.arrived_by(99).is_empty());
        assert_eq!(tl.arrived_by(100).len(), 1);
        assert_eq!(tl.arrived_by(250).len(), 2);
        assert_eq!(tl.arrived_by(u64::MAX).len(), 3);
        let fresh = tl.arrivals_between(100, 300);
        assert_eq!(fresh.len(), 2, "window (100, 300] sees port and rank");
        assert_eq!(tl.end_ps(), 300);
    }

    #[test]
    fn burst_ber_takes_the_max_overlap() {
        let tl = FaultTimeline {
            bursts: vec![
                TransientBurst {
                    from_ps: 0,
                    until_ps: 100,
                    ber: 0.2,
                },
                TransientBurst {
                    from_ps: 50,
                    until_ps: 150,
                    ber: 0.6,
                },
            ],
            ..FaultTimeline::none()
        };
        assert_eq!(tl.burst_ber(10), Some(0.2));
        assert_eq!(tl.burst_ber(75), Some(0.6));
        assert_eq!(tl.burst_ber(120), Some(0.6));
        assert_eq!(tl.burst_ber(150), None);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let rates = TimelineRates {
            segment_arrival_prob: 0.1,
            port_arrival_prob: 0.1,
            rank_arrival_prob: 0.1,
            flap_prob: 0.1,
            burst_prob: 1.0,
            burst_ber: 0.5,
        };
        let a = FaultTimeline::sample(7, 2, 4, 4, 1_000_000, &rates);
        let b = FaultTimeline::sample(7, 2, 4, 4, 1_000_000, &rates);
        assert_eq!(a, b, "same seed must sample the same storm");
        assert_ne!(a, FaultTimeline::sample(8, 2, 4, 4, 1_000_000, &rates));
        assert!(!a.is_empty());
        assert!(a.end_ps() <= 1_000_000 + 1_000_000 / 8 + 1);
        for w in a.arrivals.windows(2) {
            assert!(w[0] <= w[1], "arrivals sorted");
        }
        assert!(
            FaultTimeline::sample(7, 2, 4, 4, 0, &rates).is_empty(),
            "zero horizon samples nothing"
        );
        assert!(FaultTimeline::sample(7, 2, 4, 4, 1_000, &TimelineRates::default()).is_empty());
    }

    #[test]
    fn health_hysteresis_promotes_after_k_failures() {
        let mut h = HealthTracker::new(HealthConfig {
            fail_threshold: 3,
            probation_successes: 2,
        });
        assert_eq!(h.state(seg(0)), LinkHealth::Healthy);
        assert!(!h.record_failure(seg(0)));
        assert_eq!(h.state(seg(0)), LinkHealth::Probation);
        assert!(!h.record_failure(seg(0)));
        assert_eq!(h.epoch(), 0);
        assert!(h.record_failure(seg(0)), "third failure quarantines");
        assert_eq!(h.state(seg(0)), LinkHealth::Quarantined);
        assert_eq!(h.epoch(), 1);
        assert_eq!(h.quarantined(), vec![seg(0)]);
        assert_eq!(h.as_fault_set().segments.len(), 1);
        // Further failures on a quarantined segment are no-ops.
        assert!(!h.record_failure(seg(0)));
        assert_eq!(h.epoch(), 1);
    }

    #[test]
    fn probation_successes_reset_the_failure_count() {
        let mut h = HealthTracker::new(HealthConfig::default());
        h.record_failure(seg(1));
        h.record_failure(seg(1));
        assert_eq!(h.state(seg(1)), LinkHealth::Probation);
        h.record_success(seg(1));
        h.record_success(seg(1));
        assert_eq!(h.state(seg(1)), LinkHealth::Healthy, "graduated");
        // The count reset: three fresh failures are needed again.
        assert!(!h.record_failure(seg(1)));
        assert!(!h.record_failure(seg(1)));
        assert!(h.record_failure(seg(1)));
        // A lone success between failures does not graduate.
        let mut h = HealthTracker::new(HealthConfig::default());
        h.record_failure(seg(2));
        h.record_success(seg(2));
        assert_eq!(h.state(seg(2)), LinkHealth::Probation);
    }

    #[test]
    fn success_on_healthy_or_unknown_segment_is_inert() {
        let mut h = HealthTracker::new(HealthConfig::default());
        h.record_success(seg(3));
        assert_eq!(h.state(seg(3)), LinkHealth::Healthy);
        assert!(h.quarantined().is_empty());
        assert_eq!(h.epoch(), 0);
    }
}
