//! Fault-model configuration, including the `key = value` file format the
//! CLI's `--fault-config` flag reads.

use std::fmt;
use std::path::Path;

use crate::permanent::{PermanentFaultRates, PermanentFaultSet};
use crate::timeline::FaultTimeline;

/// Complete description of a fault scenario.
///
/// The default ([`FaultConfig::none`]) injects nothing; every consumer is
/// required to keep that path byte-identical to the fault-unaware code.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every fault decision hashes this with the event's
    /// coordinates.
    pub seed: u64,
    /// Probability that one transfer *attempt* is corrupted on the wire
    /// and caught by the per-transfer CRC (per step-transfer, per attempt).
    pub transient_ber: f64,
    /// Probability that a DPU straggles into a given READY/START barrier.
    pub straggler_prob: f64,
    /// Worst-case extra compute time of a straggler, in nanoseconds; the
    /// actual delay is drawn uniformly from `1..=straggler_max_ns`.
    pub straggler_max_ns: u64,
    /// Hard-dead DPUs (never raise READY, never source or sink a
    /// transfer). Sorted, deduplicated on parse.
    pub dead_dpus: Vec<u32>,
    /// Bounded retry budget per transfer; attempt 0 plus `max_retries`
    /// re-sends before the step is declared failed.
    pub max_retries: u32,
    /// Base retry backoff in nanoseconds; attempt `k`'s re-send waits
    /// `retry_backoff_ns << (k - 1)` (exponential).
    pub retry_backoff_ns: u64,
    /// READY/START watchdog: if the barrier has not closed after this many
    /// nanoseconds (dead participant), the collective aborts with
    /// `SyncTimeout` instead of hanging.
    pub watchdog_timeout_ns: u64,
    /// Explicitly named permanent fabric faults (dead ring segments,
    /// crossbar ports, ranks). Schedule *repair*, not retry, handles these.
    pub permanent: PermanentFaultSet,
    /// Seeded permanent-fault rates; sampled components are merged with the
    /// explicit set per fabric geometry (see `FaultInjector::permanent_faults`).
    pub perm_rates: PermanentFaultRates,
    /// Time-stamped fault events (permanent-fault arrivals, link flaps,
    /// transient bursts). The *recovery manager*, not the planner, absorbs
    /// these: arrivals invalidate schedules mid-run, flaps fail transfers
    /// during their window, bursts elevate the effective BER.
    pub timeline: FaultTimeline,
    /// READY/START watchdog in integer picoseconds; overrides
    /// `watchdog_timeout_ns` when set (see
    /// [`effective_watchdog_ns`](Self::effective_watchdog_ns)).
    pub watchdog_ps: Option<u64>,
    /// Retry budget override for the recovery path; falls back to
    /// `max_retries` when unset.
    pub retry_budget: Option<u32>,
    /// Backoff base in integer picoseconds; overrides `retry_backoff_ns`
    /// when set (see
    /// [`effective_backoff_base_ps`](Self::effective_backoff_base_ps)).
    pub backoff_base_ps: Option<u64>,
}

impl FaultConfig {
    /// The fault-free configuration: nothing injected, generous budgets.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            transient_ber: 0.0,
            straggler_prob: 0.0,
            straggler_max_ns: 0,
            dead_dpus: Vec::new(),
            max_retries: 3,
            retry_backoff_ns: 100,
            watchdog_timeout_ns: 1_000_000, // 1 ms
            permanent: PermanentFaultSet::none(),
            perm_rates: PermanentFaultRates::default(),
            timeline: FaultTimeline::none(),
            watchdog_ps: None,
            retry_budget: None,
            backoff_base_ps: None,
        }
    }

    /// The effective watchdog timeout in nanoseconds: the picosecond
    /// override when set (rounded down, floor 1 ns), else the legacy
    /// nanosecond knob. Defaults match pre-override behavior exactly.
    #[must_use]
    pub fn effective_watchdog_ns(&self) -> u64 {
        self.watchdog_ps
            .map(|ps| (ps / 1000).max(1))
            .unwrap_or(self.watchdog_timeout_ns)
    }

    /// The effective watchdog timeout in picoseconds.
    #[must_use]
    pub fn effective_watchdog_ps(&self) -> u64 {
        self.watchdog_ps
            .unwrap_or_else(|| self.watchdog_timeout_ns.saturating_mul(1000))
    }

    /// The effective per-transfer retry budget (override, else
    /// `max_retries`).
    #[must_use]
    pub fn effective_retry_budget(&self) -> u32 {
        self.retry_budget.unwrap_or(self.max_retries)
    }

    /// The effective backoff base in picoseconds (override, else
    /// `retry_backoff_ns` scaled).
    #[must_use]
    pub fn effective_backoff_base_ps(&self) -> u64 {
        self.backoff_base_ps
            .unwrap_or_else(|| self.retry_backoff_ns.saturating_mul(1000))
    }

    /// Returns the same config with a different master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// `true` if this scenario can inject anything at all. Consumers use
    /// this to take the zero-overhead fault-free path.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.transient_ber > 0.0
            || (self.straggler_prob > 0.0 && self.straggler_max_ns > 0)
            || !self.dead_dpus.is_empty()
            || self.has_permanent_faults()
            || !self.timeline.is_empty()
    }

    /// `true` if this scenario names or can sample permanent fabric faults
    /// (so the planner must consult the repair path).
    #[must_use]
    pub fn has_permanent_faults(&self) -> bool {
        !self.permanent.is_empty() || self.perm_rates.is_active()
    }

    /// Parses the `key = value` file format (see [`FaultConfig::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the file on I/O failure, or the offending
    /// line on parse failure.
    pub fn from_file(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fault config {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses a fault scenario from `key = value` lines.
    ///
    /// Blank lines and `#` comments are ignored. Recognized keys match the
    /// struct fields; `dead_dpus` is a comma-separated id list:
    ///
    /// ```text
    /// # one flipped bit per ~100 transfers, two dead nodes
    /// seed = 42
    /// transient_ber = 0.01
    /// straggler_prob = 0.05
    /// straggler_max_ns = 2000
    /// dead_dpus = 3, 17
    /// max_retries = 3
    /// retry_backoff_ns = 100
    /// watchdog_timeout_ns = 1000000
    /// # permanent fabric faults: explicit components and/or seeded rates
    /// perm_segments = r0c1b3E, r0c2b0W
    /// perm_ports = r0c1tx
    /// perm_ranks = 2
    /// perm_segment_prob = 0.0
    /// perm_port_prob = 0.0
    /// perm_rank_prob = 0.0
    /// # time-varying faults (recovery manager) + recovery budget overrides
    /// arrivals = r0c1b3E@t=5000ps, rank2@t=12000ps
    /// flaps = r0c1b0W@t=2000ps+1500ps
    /// bursts = ber=0.4@t=1000ps+500ps
    /// watchdog_ps = 2000000000
    /// retry_budget = 8
    /// backoff_base_ps = 100000
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for unknown keys,
    /// missing `=`, or unparseable values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("line {}: expected `key = value`, got `{raw}`", lineno + 1)
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad =
                |e: &dyn fmt::Display| format!("line {}: bad value for {key}: {e}", lineno + 1);
            match key {
                "seed" => cfg.seed = value.parse().map_err(|e| bad(&e))?,
                "transient_ber" => cfg.transient_ber = parse_prob(value).map_err(|e| bad(&e))?,
                "straggler_prob" => cfg.straggler_prob = parse_prob(value).map_err(|e| bad(&e))?,
                "straggler_max_ns" => cfg.straggler_max_ns = value.parse().map_err(|e| bad(&e))?,
                "dead_dpus" => {
                    let mut ids = Vec::new();
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        ids.push(part.parse::<u32>().map_err(|e| bad(&e))?);
                    }
                    ids.sort_unstable();
                    ids.dedup();
                    cfg.dead_dpus = ids;
                }
                "max_retries" => cfg.max_retries = value.parse().map_err(|e| bad(&e))?,
                "retry_backoff_ns" => cfg.retry_backoff_ns = value.parse().map_err(|e| bad(&e))?,
                "watchdog_timeout_ns" => {
                    cfg.watchdog_timeout_ns = value.parse().map_err(|e| bad(&e))?;
                }
                "perm_segments" => {
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        cfg.permanent
                            .segments
                            .insert(crate::permanent::SegmentId::parse(part).map_err(|e| bad(&e))?);
                    }
                }
                "perm_ports" => {
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        cfg.permanent
                            .ports
                            .insert(crate::permanent::PortId::parse(part).map_err(|e| bad(&e))?);
                    }
                }
                "perm_ranks" => {
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        cfg.permanent
                            .dead_ranks
                            .insert(part.parse::<u32>().map_err(|e| bad(&e))?);
                    }
                }
                "perm_segment_prob" => {
                    cfg.perm_rates.segment_prob = parse_prob(value).map_err(|e| bad(&e))?;
                }
                "perm_port_prob" => {
                    cfg.perm_rates.port_prob = parse_prob(value).map_err(|e| bad(&e))?;
                }
                "perm_rank_prob" => {
                    cfg.perm_rates.rank_prob = parse_prob(value).map_err(|e| bad(&e))?;
                }
                "arrivals" => {
                    cfg.timeline.arrivals =
                        FaultTimeline::parse_arrivals(value).map_err(|e| bad(&e))?;
                }
                "flaps" => {
                    cfg.timeline.flaps = FaultTimeline::parse_flaps(value).map_err(|e| bad(&e))?;
                }
                "bursts" => {
                    cfg.timeline.bursts =
                        FaultTimeline::parse_bursts(value).map_err(|e| bad(&e))?;
                }
                "watchdog_ps" => cfg.watchdog_ps = Some(value.parse().map_err(|e| bad(&e))?),
                "retry_budget" => cfg.retry_budget = Some(value.parse().map_err(|e| bad(&e))?),
                "backoff_base_ps" => {
                    cfg.backoff_base_ps = Some(value.parse().map_err(|e| bad(&e))?);
                }
                _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
            }
        }
        Ok(cfg)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|e| format!("{e}"))?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability {p} not in [0, 1]"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultConfig::none().is_active());
        assert!(!FaultConfig::default().is_active());
    }

    #[test]
    fn any_knob_activates() {
        let base = FaultConfig::none();
        assert!(FaultConfig {
            transient_ber: 0.1,
            ..base.clone()
        }
        .is_active());
        assert!(FaultConfig {
            straggler_prob: 0.1,
            straggler_max_ns: 10,
            ..base.clone()
        }
        .is_active());
        assert!(FaultConfig {
            dead_dpus: vec![3],
            ..base
        }
        .is_active());
    }

    #[test]
    fn parse_roundtrip() {
        let cfg = FaultConfig::parse(
            "# comment\n\
             seed = 42\n\
             transient_ber = 0.01\n\
             straggler_prob = 0.05  # inline comment\n\
             straggler_max_ns = 2000\n\
             dead_dpus = 17, 3, 17\n\
             max_retries = 5\n\
             retry_backoff_ns = 250\n\
             watchdog_timeout_ns = 9000\n",
        )
        .unwrap();
        assert_eq!(cfg.seed, 42);
        assert!((cfg.transient_ber - 0.01).abs() < 1e-12);
        assert_eq!(cfg.dead_dpus, vec![3, 17]); // sorted, deduped
        assert_eq!(cfg.max_retries, 5);
        assert_eq!(cfg.retry_backoff_ns, 250);
        assert_eq!(cfg.watchdog_timeout_ns, 9000);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultConfig::parse("nonsense").is_err());
        assert!(FaultConfig::parse("mystery_key = 3").is_err());
        assert!(FaultConfig::parse("transient_ber = 1.5").is_err());
        assert!(FaultConfig::parse("dead_dpus = 1, x").is_err());
    }

    #[test]
    fn parse_permanent_fault_keys() {
        let cfg = FaultConfig::parse(
            "perm_segments = r0c1b3E, r1c0b7W\n\
             perm_ports = r0c1tx, r0c2rx\n\
             perm_ranks = 2, 3\n\
             perm_segment_prob = 0.01\n",
        )
        .unwrap();
        assert_eq!(cfg.permanent.segments.len(), 2);
        assert_eq!(cfg.permanent.ports.len(), 2);
        assert_eq!(cfg.permanent.dead_ranks.len(), 2);
        assert!((cfg.perm_rates.segment_prob - 0.01).abs() < 1e-12);
        assert!(cfg.has_permanent_faults());
        assert!(cfg.is_active());
        assert!(FaultConfig::parse("perm_segments = bogus").is_err());
        assert!(FaultConfig::parse("perm_ports = r0c1").is_err());
        assert!(FaultConfig::parse("perm_rank_prob = 2.0").is_err());
    }

    #[test]
    fn parse_timeline_and_budget_keys() {
        let cfg = FaultConfig::parse(
            "arrivals = r0c1b3E@t=5000ps, rank2@t=12000ps\n\
             flaps = r0c1b0W@t=2000ps+1500ps\n\
             bursts = ber=0.4@t=1000ps+500ps\n\
             watchdog_ps = 2000000\n\
             retry_budget = 8\n\
             backoff_base_ps = 100000\n",
        )
        .unwrap();
        assert_eq!(cfg.timeline.arrivals.len(), 2);
        assert_eq!(cfg.timeline.flaps.len(), 1);
        assert_eq!(cfg.timeline.bursts.len(), 1);
        assert!(cfg.is_active(), "a timeline alone activates the scenario");
        assert_eq!(cfg.effective_watchdog_ps(), 2_000_000);
        assert_eq!(cfg.effective_watchdog_ns(), 2_000);
        assert_eq!(cfg.effective_retry_budget(), 8);
        assert_eq!(cfg.effective_backoff_base_ps(), 100_000);
        assert!(FaultConfig::parse("arrivals = r0c1b3E").is_err());
        assert!(FaultConfig::parse("bursts = 0.4@t=0ps+1ps").is_err());
    }

    #[test]
    fn effective_budgets_default_to_legacy_knobs() {
        let cfg = FaultConfig::none();
        assert_eq!(cfg.effective_watchdog_ns(), cfg.watchdog_timeout_ns);
        assert_eq!(cfg.effective_watchdog_ps(), cfg.watchdog_timeout_ns * 1000);
        assert_eq!(cfg.effective_retry_budget(), cfg.max_retries);
        assert_eq!(cfg.effective_backoff_base_ps(), cfg.retry_backoff_ns * 1000);
        // Sub-nanosecond watchdog override clamps to 1 ns rather than 0.
        let cfg = FaultConfig {
            watchdog_ps: Some(500),
            ..FaultConfig::none()
        };
        assert_eq!(cfg.effective_watchdog_ns(), 1);
    }

    #[test]
    fn empty_parses_to_none() {
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::none());
        assert_eq!(
            FaultConfig::parse("\n# only comments\n").unwrap(),
            FaultConfig::none()
        );
    }
}
