//! Fault-model configuration, including the `key = value` file format the
//! CLI's `--fault-config` flag reads.

use std::fmt;
use std::path::Path;

use crate::permanent::{PermanentFaultRates, PermanentFaultSet};

/// Complete description of a fault scenario.
///
/// The default ([`FaultConfig::none`]) injects nothing; every consumer is
/// required to keep that path byte-identical to the fault-unaware code.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every fault decision hashes this with the event's
    /// coordinates.
    pub seed: u64,
    /// Probability that one transfer *attempt* is corrupted on the wire
    /// and caught by the per-transfer CRC (per step-transfer, per attempt).
    pub transient_ber: f64,
    /// Probability that a DPU straggles into a given READY/START barrier.
    pub straggler_prob: f64,
    /// Worst-case extra compute time of a straggler, in nanoseconds; the
    /// actual delay is drawn uniformly from `1..=straggler_max_ns`.
    pub straggler_max_ns: u64,
    /// Hard-dead DPUs (never raise READY, never source or sink a
    /// transfer). Sorted, deduplicated on parse.
    pub dead_dpus: Vec<u32>,
    /// Bounded retry budget per transfer; attempt 0 plus `max_retries`
    /// re-sends before the step is declared failed.
    pub max_retries: u32,
    /// Base retry backoff in nanoseconds; attempt `k`'s re-send waits
    /// `retry_backoff_ns << (k - 1)` (exponential).
    pub retry_backoff_ns: u64,
    /// READY/START watchdog: if the barrier has not closed after this many
    /// nanoseconds (dead participant), the collective aborts with
    /// `SyncTimeout` instead of hanging.
    pub watchdog_timeout_ns: u64,
    /// Explicitly named permanent fabric faults (dead ring segments,
    /// crossbar ports, ranks). Schedule *repair*, not retry, handles these.
    pub permanent: PermanentFaultSet,
    /// Seeded permanent-fault rates; sampled components are merged with the
    /// explicit set per fabric geometry (see `FaultInjector::permanent_faults`).
    pub perm_rates: PermanentFaultRates,
}

impl FaultConfig {
    /// The fault-free configuration: nothing injected, generous budgets.
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            transient_ber: 0.0,
            straggler_prob: 0.0,
            straggler_max_ns: 0,
            dead_dpus: Vec::new(),
            max_retries: 3,
            retry_backoff_ns: 100,
            watchdog_timeout_ns: 1_000_000, // 1 ms
            permanent: PermanentFaultSet::none(),
            perm_rates: PermanentFaultRates::default(),
        }
    }

    /// Returns the same config with a different master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// `true` if this scenario can inject anything at all. Consumers use
    /// this to take the zero-overhead fault-free path.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.transient_ber > 0.0
            || (self.straggler_prob > 0.0 && self.straggler_max_ns > 0)
            || !self.dead_dpus.is_empty()
            || self.has_permanent_faults()
    }

    /// `true` if this scenario names or can sample permanent fabric faults
    /// (so the planner must consult the repair path).
    #[must_use]
    pub fn has_permanent_faults(&self) -> bool {
        !self.permanent.is_empty() || self.perm_rates.is_active()
    }

    /// Parses the `key = value` file format (see [`FaultConfig::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the file on I/O failure, or the offending
    /// line on parse failure.
    pub fn from_file(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fault config {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses a fault scenario from `key = value` lines.
    ///
    /// Blank lines and `#` comments are ignored. Recognized keys match the
    /// struct fields; `dead_dpus` is a comma-separated id list:
    ///
    /// ```text
    /// # one flipped bit per ~100 transfers, two dead nodes
    /// seed = 42
    /// transient_ber = 0.01
    /// straggler_prob = 0.05
    /// straggler_max_ns = 2000
    /// dead_dpus = 3, 17
    /// max_retries = 3
    /// retry_backoff_ns = 100
    /// watchdog_timeout_ns = 1000000
    /// # permanent fabric faults: explicit components and/or seeded rates
    /// perm_segments = r0c1b3E, r0c2b0W
    /// perm_ports = r0c1tx
    /// perm_ranks = 2
    /// perm_segment_prob = 0.0
    /// perm_port_prob = 0.0
    /// perm_rank_prob = 0.0
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for unknown keys,
    /// missing `=`, or unparseable values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("line {}: expected `key = value`, got `{raw}`", lineno + 1)
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad =
                |e: &dyn fmt::Display| format!("line {}: bad value for {key}: {e}", lineno + 1);
            match key {
                "seed" => cfg.seed = value.parse().map_err(|e| bad(&e))?,
                "transient_ber" => cfg.transient_ber = parse_prob(value).map_err(|e| bad(&e))?,
                "straggler_prob" => cfg.straggler_prob = parse_prob(value).map_err(|e| bad(&e))?,
                "straggler_max_ns" => cfg.straggler_max_ns = value.parse().map_err(|e| bad(&e))?,
                "dead_dpus" => {
                    let mut ids = Vec::new();
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        ids.push(part.parse::<u32>().map_err(|e| bad(&e))?);
                    }
                    ids.sort_unstable();
                    ids.dedup();
                    cfg.dead_dpus = ids;
                }
                "max_retries" => cfg.max_retries = value.parse().map_err(|e| bad(&e))?,
                "retry_backoff_ns" => cfg.retry_backoff_ns = value.parse().map_err(|e| bad(&e))?,
                "watchdog_timeout_ns" => {
                    cfg.watchdog_timeout_ns = value.parse().map_err(|e| bad(&e))?;
                }
                "perm_segments" => {
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        cfg.permanent
                            .segments
                            .insert(crate::permanent::SegmentId::parse(part).map_err(|e| bad(&e))?);
                    }
                }
                "perm_ports" => {
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        cfg.permanent
                            .ports
                            .insert(crate::permanent::PortId::parse(part).map_err(|e| bad(&e))?);
                    }
                }
                "perm_ranks" => {
                    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                        cfg.permanent
                            .dead_ranks
                            .insert(part.parse::<u32>().map_err(|e| bad(&e))?);
                    }
                }
                "perm_segment_prob" => {
                    cfg.perm_rates.segment_prob = parse_prob(value).map_err(|e| bad(&e))?;
                }
                "perm_port_prob" => {
                    cfg.perm_rates.port_prob = parse_prob(value).map_err(|e| bad(&e))?;
                }
                "perm_rank_prob" => {
                    cfg.perm_rates.rank_prob = parse_prob(value).map_err(|e| bad(&e))?;
                }
                _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
            }
        }
        Ok(cfg)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|e| format!("{e}"))?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability {p} not in [0, 1]"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultConfig::none().is_active());
        assert!(!FaultConfig::default().is_active());
    }

    #[test]
    fn any_knob_activates() {
        let base = FaultConfig::none();
        assert!(FaultConfig {
            transient_ber: 0.1,
            ..base.clone()
        }
        .is_active());
        assert!(FaultConfig {
            straggler_prob: 0.1,
            straggler_max_ns: 10,
            ..base.clone()
        }
        .is_active());
        assert!(FaultConfig {
            dead_dpus: vec![3],
            ..base
        }
        .is_active());
    }

    #[test]
    fn parse_roundtrip() {
        let cfg = FaultConfig::parse(
            "# comment\n\
             seed = 42\n\
             transient_ber = 0.01\n\
             straggler_prob = 0.05  # inline comment\n\
             straggler_max_ns = 2000\n\
             dead_dpus = 17, 3, 17\n\
             max_retries = 5\n\
             retry_backoff_ns = 250\n\
             watchdog_timeout_ns = 9000\n",
        )
        .unwrap();
        assert_eq!(cfg.seed, 42);
        assert!((cfg.transient_ber - 0.01).abs() < 1e-12);
        assert_eq!(cfg.dead_dpus, vec![3, 17]); // sorted, deduped
        assert_eq!(cfg.max_retries, 5);
        assert_eq!(cfg.retry_backoff_ns, 250);
        assert_eq!(cfg.watchdog_timeout_ns, 9000);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultConfig::parse("nonsense").is_err());
        assert!(FaultConfig::parse("mystery_key = 3").is_err());
        assert!(FaultConfig::parse("transient_ber = 1.5").is_err());
        assert!(FaultConfig::parse("dead_dpus = 1, x").is_err());
    }

    #[test]
    fn parse_permanent_fault_keys() {
        let cfg = FaultConfig::parse(
            "perm_segments = r0c1b3E, r1c0b7W\n\
             perm_ports = r0c1tx, r0c2rx\n\
             perm_ranks = 2, 3\n\
             perm_segment_prob = 0.01\n",
        )
        .unwrap();
        assert_eq!(cfg.permanent.segments.len(), 2);
        assert_eq!(cfg.permanent.ports.len(), 2);
        assert_eq!(cfg.permanent.dead_ranks.len(), 2);
        assert!((cfg.perm_rates.segment_prob - 0.01).abs() < 1e-12);
        assert!(cfg.has_permanent_faults());
        assert!(cfg.is_active());
        assert!(FaultConfig::parse("perm_segments = bogus").is_err());
        assert!(FaultConfig::parse("perm_ports = r0c1").is_err());
        assert!(FaultConfig::parse("perm_rank_prob = 2.0").is_err());
    }

    #[test]
    fn empty_parses_to_none() {
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::none());
        assert_eq!(
            FaultConfig::parse("\n# only comments\n").unwrap(),
            FaultConfig::none()
        );
    }
}
