//! Deterministic fault injection for the PIMnet reproduction.
//!
//! Real PIM deployments see three classes of trouble the paper's clean-room
//! evaluation abstracts away:
//!
//! * **transient link/DQ errors** — a bit flips on a bank-to-bank hop and
//!   the per-transfer CRC catches it, forcing a retry of that schedule
//!   step's transfer;
//! * **compute stragglers** — a DPU finishes its kernel late, stretching
//!   the READY/START barrier (paper §IV-C) that gates every collective;
//! * **hard-dead DPUs/banks** — a node never raises READY at all, and the
//!   collective must be re-planned around it or handed back to the host.
//!
//! This crate is the *decision layer* for all three: given a seed and a
//! [`FaultConfig`], a [`FaultInjector`] answers "is this transfer attempt
//! corrupted?", "how late is this DPU?", "is this DPU dead?" — nothing
//! more. The sim/core/noc crates own the *consequences* (retry timing,
//! barrier stretch, degraded schedules).
//!
//! Every decision is a pure function of the seed and the event's stable
//! coordinates (phase, step, transfer, attempt, DPU id) via
//! [`pim_sim::rng::hash_coords`], never of traversal order. Two runs with
//! the same seed and config make byte-identical decisions, which is what
//! makes fault runs replayable and the resilience tests exact.
//!
//! # Example
//!
//! ```
//! use pim_faults::{FaultConfig, FaultInjector};
//!
//! let cfg = FaultConfig { transient_ber: 0.5, ..FaultConfig::none() };
//! let a = FaultInjector::new(cfg.clone().with_seed(7));
//! let b = FaultInjector::new(cfg.with_seed(7));
//! // Same seed, same coordinates => same decision.
//! assert_eq!(
//!     a.transient_corrupts(0, 3, 1, 0),
//!     b.transient_corrupts(0, 3, 1, 0),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod crc;
pub mod inject;
pub mod permanent;
pub mod timeline;

pub use config::FaultConfig;
pub use crc::{crc32, Crc32};
pub use inject::FaultInjector;
pub use permanent::{PermanentFaultRates, PermanentFaultSet, PortId, PortSide, SegmentId};
pub use timeline::{
    Arrival, ArrivalKind, FaultTimeline, HealthConfig, HealthTracker, LinkFlap, LinkHealth,
    TimelineRates, TransientBurst,
};
