//! CRC-32 (IEEE 802.3 polynomial) — the per-transfer integrity check.
//!
//! PIMnet transfers are statically scheduled, so the receiver knows exactly
//! which bytes to expect in which step; a CRC mismatch on the expected
//! window is the hardware's only signal that a transient DQ/link error
//! happened. This module is the reference implementation both the
//! functional executor (checking real payload bytes) and the tests use.

const POLY: u32 = 0xEDB8_8320;

/// The 256-entry reflected CRC-32 table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Finalized checksum value.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = [0x55u8; 64];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), clean, "missed flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut c = Crc32::new();
        c.update(&data[..100]);
        c.update(&data[100..]);
        assert_eq!(c.finish(), crc32(&data));
    }
}
