//! Deterministic structured-event tracing.
//!
//! Every layer of the simulator — the timing engine, the READY/START sync
//! tree, the functional executor, the schedule cache, the NoC cycle loop,
//! the `par` thread pool — can emit [`TraceEvent`]s into a [`Tracer`]. The
//! design constraints, in order:
//!
//! 1. **Determinism.** Events carry [`SimTime`] (or logical-ordinal)
//!    timestamps and integer arguments only — never wall-clock time,
//!    worker identity, or addresses. A traced run is a pure function of
//!    its inputs, so the same seed and geometry produce a *byte-identical*
//!    trace at any worker count (`tests/trace_golden.rs` pins this).
//! 2. **Zero cost when disabled.** A disabled tracer is a single `bool`
//!    load per event site; the event struct is built only after that check
//!    passes, and [`Tracer::disabled`] is `const` so a `static` no-op sink
//!    exists for un-instrumented callers (`perf_gate` asserts the overhead
//!    stays under 1 %).
//! 3. **Zero dependencies.** Ring buffer, CSV and Chrome `trace_event`
//!    JSON export are all plain `std`.
//!
//! Event identity is a stable `u16` code ([`codes`]); the high byte is the
//! subsystem group ([`group`]), which doubles as the Chrome trace `tid` so
//! each subsystem renders as its own track.

use std::sync::Mutex;

use crate::SimTime;

/// Stable event codes. The high byte is the subsystem ([`group`]); codes
/// are append-only — never renumber a shipped code, golden traces pin them.
pub mod codes {
    /// READY/START barrier (span: `ts` = 0, `dur` = barrier cost).
    /// Args: `[scope (0=chip,1=rank,2=channel), skew_ps, 0, 0]`.
    pub const BARRIER: u16 = 0x0101;
    /// A straggler delayed its READY. Args: `[dpu, delay_ns, 0, 0]`.
    pub const STRAGGLER: u16 = 0x0102;
    /// Control-plane overhead of a schedule repair.
    /// Args: `[extra_steps, overhead_ps, 0, 0]`.
    pub const REPAIR_OVERHEAD: u16 = 0x0103;

    /// One transfer window in a timeline (span).
    /// Args: `[src, dst_count, bytes, tier]`.
    pub const TRANSFER: u16 = 0x0201;
    /// A transient CRC failure serialized a re-send into the step.
    /// Args: `[phase, step, transfer, attempt]`.
    pub const RETRY: u16 = 0x0202;

    /// One executed schedule step (instant at the step's logical ordinal).
    /// Args: `[phase, step, transfers, delivered_bytes]`.
    pub const EXEC_STEP: u16 = 0x0301;
    /// One executed transfer. Args: `[src, dst_count, bytes, tier]`.
    pub const EXEC_TRANSFER: u16 = 0x0302;
    /// The executor re-sent a corrupted transfer.
    /// Args: `[phase, step, transfer, attempt]`.
    pub const EXEC_RETRY: u16 = 0x0303;
    /// The staging arena had to grow (a cold step shape).
    /// Args: `[step_ordinal, new_capacity, 0, 0]`.
    pub const ARENA_GROW: u16 = 0x0304;

    /// Schedule-cache hit. Args: `[kind, dpus, elems, elem_bytes]`.
    pub const CACHE_HIT: u16 = 0x0401;
    /// Schedule-cache miss (this caller builds).
    /// Args: `[kind, dpus, elems, elem_bytes]`.
    pub const CACHE_MISS: u16 = 0x0402;
    /// Waited on another worker's in-flight build of the same key.
    /// Args: `[kind, dpus, elems, elem_bytes]`.
    pub const CACHE_DEDUP_WAIT: u16 = 0x0403;

    /// A NoC packet was fully delivered (instant at the delivery time).
    /// Args: `[src, dst, bytes, stage (phase << 16 | step)]`.
    pub const NOC_DELIVER: u16 = 0x0501;
    /// A corrupted NoC packet was re-sent over the same links.
    /// Args: `[src, dst, bytes, attempt]`.
    pub const NOC_RETRANSMIT: u16 = 0x0502;

    /// One work item of a `par` fan-out (instant at the item's index —
    /// logical order, never worker identity). Args: `[index, 0, 0, 0]`.
    pub const PAR_TASK: u16 = 0x0601;
    /// One `par` fan-out batch. Args: `[items, 0, 0, 0]` — the worker
    /// count is deliberately *not* recorded: traces must stay
    /// byte-identical across worker counts.
    pub const PAR_BATCH: u16 = 0x0602;

    /// The degradation ladder picked a tier.
    /// Args: `[tier (0=full,1=repaired,2=shrunk,3=host), excluded_dpus, 0, 0]`.
    pub const PLAN_TIER: u16 = 0x0701;

    /// The recovery manager completed one schedule step.
    /// Args: `[phase, step, transfers, t_ps]`.
    pub const RECOV_STEP: u16 = 0x0801;
    /// A failed step is being retried after backoff.
    /// Args: `[phase, step, round, backoff_ps]`.
    pub const RECOV_RETRY: u16 = 0x0802;
    /// Buffers checkpointed at a completed step boundary.
    /// Args: `[phase, step, step_ordinal, t_ps]`.
    pub const RECOV_CHECKPOINT: u16 = 0x0803;
    /// An arrival invalidated the schedule and the manager replanned.
    /// Args: `[tier, epoch, resumed (1=spliced, 0=restarted), step_ordinal]`.
    pub const RECOV_REPLAN: u16 = 0x0804;
    /// The health tracker quarantined a flaky segment.
    /// Args: `[rank, chip, from_bank<<1|east, epoch]`.
    pub const RECOV_QUARANTINE: u16 = 0x0805;
    /// A timed permanent fault arrived mid-run.
    /// Args: `[class (1=segment,2=port,3=rank), at_ps, step_ordinal, 0]`.
    pub const FAULT_ARRIVAL: u16 = 0x0806;
    /// After a replan, execution resumed from the checkpoint (suffix
    /// splice, no restart). Args: `[step_ordinal, epoch, 0, 0]`.
    pub const RECOV_RESUME: u16 = 0x0807;
    /// The recovery run finished.
    /// Args: `[tier, steps, retries, replans]`.
    pub const RECOV_DONE: u16 = 0x0808;

    /// A request entered the serving engine's admission stage.
    /// Args: `[tenant, request, arrive_ps, elems]`.
    pub const SERVE_ARRIVE: u16 = 0x0901;
    /// Admission control accepted a request into its tenant queue.
    /// Args: `[tenant, request, queue_depth, tokens_left]`.
    pub const SERVE_ADMIT: u16 = 0x0902;
    /// A request was shed with a typed rejection.
    /// Args: `[tenant, request, reason (1=queue-full,2=no-tokens,
    /// 3=deadline,4=low-priority,5=quarantined), t_ps]`.
    pub const SERVE_SHED: u16 = 0x0903;
    /// A dequeued request started service on its tenant's channels.
    /// Args: `[tenant, request, chunks, t_ps]`.
    pub const SERVE_START: u16 = 0x0904;
    /// A request finished service.
    /// Args: `[tenant, request, tier, latency_ps]`.
    pub const SERVE_DONE: u16 = 0x0905;
    /// A tenant crossed a quarantine boundary.
    /// Args: `[tenant, entered (1=quarantined, 0=restored), failures,
    /// t_ps]`.
    pub const SERVE_QUARANTINE: u16 = 0x0906;
    /// The engine-wide overload ladder ratcheted up a level.
    /// Args: `[level, backlog, t_ps, 0]`.
    pub const SERVE_LADDER: u16 = 0x0907;

    /// A schedule was verified from scratch (batch or streaming).
    /// Args: `[kind, dpus, steps, error_count]`. Emitted once per
    /// analyze call regardless of cache warmth, so traces stay
    /// run-to-run identical.
    pub const LINT_FULL: u16 = 0x0A01;
    /// A schedule variant was re-verified with the delta re-lint.
    /// Args: `[kind, dpus, steps_reused, steps_relinted]`. Emitted once
    /// per analyze call regardless of cache warmth.
    pub const LINT_DELTA: u16 = 0x0A02;
}

/// Subsystem groups (the high byte of an event code).
pub mod group {
    /// READY/START sync tree (`pimnet::sync`).
    pub const SYNC: u8 = 0x01;
    /// Timing engine (`pimnet::timeline`).
    pub const TIMELINE: u8 = 0x02;
    /// Functional executor (`pimnet::exec`).
    pub const EXEC: u8 = 0x03;
    /// Schedule cache (`pimnet::schedule::cache`).
    pub const CACHE: u8 = 0x04;
    /// NoC cycle simulation (`pim_noc`).
    pub const NOC: u8 = 0x05;
    /// Deterministic thread pool (`pim_sim::par`).
    pub const PAR: u8 = 0x06;
    /// Degradation ladder (`pimnet::resilience`).
    pub const PLAN: u8 = 0x07;
    /// Runtime recovery manager (`pimnet::recovery`).
    pub const RECOVERY: u8 = 0x08;
    /// Multi-tenant serving engine (`pimnet::serve`).
    pub const SERVE: u8 = 0x09;
    /// Static schedule analysis (`pimnet::analysis`).
    pub const LINT: u8 = 0x0A;
}

/// The subsystem group of a code (its high byte).
#[must_use]
pub const fn code_group(code: u16) -> u8 {
    (code >> 8) as u8
}

/// Stable human-readable name of a code (used as the Chrome event name
/// and the CSV `name` column).
#[must_use]
pub const fn code_name(code: u16) -> &'static str {
    match code {
        codes::BARRIER => "barrier",
        codes::STRAGGLER => "straggler",
        codes::REPAIR_OVERHEAD => "repair-overhead",
        codes::TRANSFER => "transfer",
        codes::RETRY => "retry",
        codes::EXEC_STEP => "exec-step",
        codes::EXEC_TRANSFER => "exec-transfer",
        codes::EXEC_RETRY => "exec-retry",
        codes::ARENA_GROW => "arena-grow",
        codes::CACHE_HIT => "cache-hit",
        codes::CACHE_MISS => "cache-miss",
        codes::CACHE_DEDUP_WAIT => "cache-dedup-wait",
        codes::NOC_DELIVER => "noc-deliver",
        codes::NOC_RETRANSMIT => "noc-retransmit",
        codes::PAR_TASK => "par-task",
        codes::PAR_BATCH => "par-batch",
        codes::PLAN_TIER => "plan-tier",
        codes::RECOV_STEP => "recov-step",
        codes::RECOV_RETRY => "recov-retry",
        codes::RECOV_CHECKPOINT => "recov-checkpoint",
        codes::RECOV_REPLAN => "recov-replan",
        codes::RECOV_QUARANTINE => "recov-quarantine",
        codes::FAULT_ARRIVAL => "fault-arrival",
        codes::RECOV_RESUME => "recov-resume",
        codes::RECOV_DONE => "recov-done",
        codes::SERVE_ARRIVE => "serve-arrive",
        codes::SERVE_ADMIT => "serve-admit",
        codes::SERVE_SHED => "serve-shed",
        codes::SERVE_START => "serve-start",
        codes::SERVE_DONE => "serve-done",
        codes::SERVE_QUARANTINE => "serve-quarantine",
        codes::SERVE_LADDER => "serve-ladder",
        codes::LINT_FULL => "lint-full",
        codes::LINT_DELTA => "lint-delta",
        _ => "unknown",
    }
}

/// One structured event: a point (or span, when `dur_ps > 0`) in simulated
/// time. Timestamps are integer picoseconds of [`SimTime`] — except in
/// subsystems with no simulated clock (the functional executor, the
/// thread pool), which use *logical ordinals* as picoseconds so ordering
/// stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Start time in picoseconds (or a logical ordinal).
    pub ts_ps: u64,
    /// Duration in picoseconds; 0 marks an instant event.
    pub dur_ps: u64,
    /// Stable event code (see [`codes`]).
    pub code: u16,
    /// Event-specific integer arguments (meaning documented per code).
    pub args: [u64; 4],
}

/// Fixed-capacity ring holding the newest events.
#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Events evicted because the ring was full.
    dropped: u64,
}

impl Ring {
    const fn new() -> Ring {
        Ring {
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }
}

/// An event sink: either enabled (ring-buffered, thread-safe) or the
/// no-op disabled sink whose every record call is a single `bool` check.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// Default ring capacity of [`Tracer::enabled`].
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// The no-op sink: records nothing, costs one branch per event site.
    /// `const`, so callers can keep a `static` disabled tracer.
    #[must_use]
    pub const fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            capacity: 0,
            ring: Mutex::new(Ring::new()),
        }
    }

    /// An enabled sink with the default ring capacity.
    #[must_use]
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(Tracer::DEFAULT_CAPACITY)
    }

    /// An enabled sink keeping the newest `capacity` events (older events
    /// are dropped and counted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            enabled: true,
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::new()),
        }
    }

    /// Whether this sink records anything.
    #[inline]
    #[must_use]
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records one event. On the disabled sink this is a single branch.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        let mut ring = self.lock();
        if ring.events.len() < self.capacity {
            ring.events.push(ev);
        } else {
            let at = ring.head;
            ring.events[at] = ev;
            ring.head = (at + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// Records an instant event at `ts`.
    #[inline]
    pub fn instant(&self, ts: SimTime, code: u16, args: [u64; 4]) {
        if !self.enabled {
            return;
        }
        self.record(TraceEvent {
            ts_ps: ts.as_ps(),
            dur_ps: 0,
            code,
            args,
        });
    }

    /// Records a span `[ts, ts + dur)`.
    #[inline]
    pub fn span(&self, ts: SimTime, dur: SimTime, code: u16, args: [u64; 4]) {
        if !self.enabled {
            return;
        }
        self.record(TraceEvent {
            ts_ps: ts.as_ps(),
            dur_ps: dur.as_ps(),
            code,
            args,
        });
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether no event is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every buffered event (oldest first), leaving the sink empty.
    #[must_use]
    pub fn drain(&self) -> Trace {
        let mut ring = self.lock();
        let head = ring.head;
        let dropped = ring.dropped;
        let mut events = std::mem::take(&mut ring.events);
        ring.head = 0;
        ring.dropped = 0;
        // After a wraparound the oldest surviving event sits at `head`.
        events.rotate_left(head);
        Trace { events, dropped }
    }
}

/// A drained event sequence, exportable as CSV or Chrome `trace_event`
/// JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer eviction before the drain.
    pub dropped: u64,
}

impl Trace {
    /// How many events carry `code`.
    #[must_use]
    pub fn count(&self, code: u16) -> usize {
        self.events.iter().filter(|e| e.code == code).count()
    }

    /// This trace without the events of one subsystem group (e.g. the
    /// cache group, whose hit/miss pattern legitimately differs between a
    /// cold and a warm run of an otherwise identical workload).
    #[must_use]
    pub fn without_group(&self, g: u8) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| code_group(e.code) != g)
                .collect(),
            dropped: self.dropped,
        }
    }

    /// Deterministic CSV rendering: one line per event, stable columns.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ts_ps,dur_ps,code,name,a0,a1,a2,a3\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{:#06x},{},{},{},{},{}\n",
                e.ts_ps,
                e.dur_ps,
                e.code,
                code_name(e.code),
                e.args[0],
                e.args[1],
                e.args[2],
                e.args[3]
            ));
        }
        out
    }

    /// Chrome `trace_event` JSON (the format `chrome://tracing` and
    /// Perfetto load): spans as `ph:"X"` complete events, instants as
    /// `ph:"i"`. Timestamps are microseconds, formatted from integer
    /// picoseconds so the output is bit-stable across platforms.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        chrome_json(&[("trace", self)])
    }

    /// FNV-1a fingerprint of [`Trace::to_csv`] — a compact pin for golden
    /// tests.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_csv().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }
}

/// Formats integer picoseconds as a JSON microsecond literal with six
/// fixed decimals (exact — no floating point involved).
fn ps_as_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Chrome `trace_event` JSON over several named traces: each part becomes
/// its own process (`pid` = part index, named via a `process_name`
/// metadata event), and each subsystem group its own thread track.
#[must_use]
pub fn chrome_json(parts: &[(&str, &Trace)]) -> String {
    let mut entries: Vec<String> = Vec::new();
    for (pid, (name, trace)) in parts.iter().enumerate() {
        entries.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        for e in &trace.events {
            let tid = code_group(e.code);
            let common = format!(
                "\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                 \"args\":{{\"a0\":{},\"a1\":{},\"a2\":{},\"a3\":{}}}",
                code_name(e.code),
                ps_as_us(e.ts_ps),
                e.args[0],
                e.args[1],
                e.args[2],
                e.args[3]
            );
            entries.push(if e.dur_ps > 0 {
                format!("{{\"ph\":\"X\",\"dur\":{},{common}}}", ps_as_us(e.dur_ps))
            } else {
                format!("{{\"ph\":\"i\",\"s\":\"g\",{common}}}")
            });
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, code: u16) -> TraceEvent {
        TraceEvent {
            ts_ps: ts,
            dur_ps: 0,
            code,
            args: [ts, 0, 0, 0],
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        static T: Tracer = Tracer::disabled();
        T.record(ev(1, codes::BARRIER));
        T.instant(SimTime::from_ns(1), codes::RETRY, [0; 4]);
        assert!(!T.is_enabled());
        assert!(T.is_empty());
        assert_eq!(T.drain(), Trace::default());
    }

    #[test]
    fn events_drain_in_recording_order() {
        let t = Tracer::enabled();
        for i in 0..10 {
            t.record(ev(i, codes::TRANSFER));
        }
        let trace = t.drain();
        assert_eq!(trace.events.len(), 10);
        assert!(trace.events.windows(2).all(|w| w[0].ts_ps < w[1].ts_ps));
        assert_eq!(trace.dropped, 0);
        assert!(t.is_empty(), "drain must reset the sink");
    }

    #[test]
    fn full_ring_drops_oldest_first() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.record(ev(i, codes::TRANSFER));
        }
        let trace = t.drain();
        assert_eq!(trace.dropped, 6);
        let ts: Vec<u64> = trace.events.iter().map(|e| e.ts_ps).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "newest events survive, in order");
    }

    #[test]
    fn csv_and_fingerprint_are_deterministic() {
        let mk = || {
            let t = Tracer::enabled();
            t.span(
                SimTime::from_ns(1),
                SimTime::from_ns(2),
                codes::BARRIER,
                [2, 0, 0, 0],
            );
            t.instant(SimTime::from_ns(3), codes::RETRY, [1, 2, 3, 4]);
            t.drain()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.to_csv().contains("barrier"));
        assert!(a.to_csv().contains("retry"));
    }

    #[test]
    fn group_filter_drops_exactly_that_group() {
        let t = Tracer::enabled();
        t.record(ev(0, codes::CACHE_HIT));
        t.record(ev(1, codes::TRANSFER));
        t.record(ev(2, codes::CACHE_MISS));
        let trace = t.drain().without_group(group::CACHE);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].code, codes::TRANSFER);
    }

    #[test]
    fn chrome_json_shape_is_valid() {
        let t = Tracer::enabled();
        t.span(
            SimTime::from_ps(1_500_000),
            SimTime::from_ps(250_000),
            codes::TRANSFER,
            [0, 1, 64, 1],
        );
        t.instant(SimTime::ZERO, codes::CACHE_MISS, [0; 4]);
        let json = t.drain().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500000"));
        assert!(json.contains("\"dur\":0.250000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("process_name"));
        // Balanced braces/brackets (cheap structural validity check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn code_names_cover_every_code() {
        for code in [
            codes::BARRIER,
            codes::STRAGGLER,
            codes::REPAIR_OVERHEAD,
            codes::TRANSFER,
            codes::RETRY,
            codes::EXEC_STEP,
            codes::EXEC_TRANSFER,
            codes::EXEC_RETRY,
            codes::ARENA_GROW,
            codes::CACHE_HIT,
            codes::CACHE_MISS,
            codes::CACHE_DEDUP_WAIT,
            codes::NOC_DELIVER,
            codes::NOC_RETRANSMIT,
            codes::PAR_TASK,
            codes::PAR_BATCH,
            codes::PLAN_TIER,
            codes::RECOV_STEP,
            codes::RECOV_RETRY,
            codes::RECOV_CHECKPOINT,
            codes::RECOV_REPLAN,
            codes::RECOV_QUARANTINE,
            codes::FAULT_ARRIVAL,
            codes::RECOV_RESUME,
            codes::RECOV_DONE,
            codes::SERVE_ARRIVE,
            codes::SERVE_ADMIT,
            codes::SERVE_SHED,
            codes::SERVE_START,
            codes::SERVE_DONE,
            codes::SERVE_QUARANTINE,
            codes::SERVE_LADDER,
            codes::LINT_FULL,
            codes::LINT_DELTA,
        ] {
            assert_ne!(code_name(code), "unknown", "{code:#06x} unnamed");
        }
        assert_eq!(code_name(0xFFFF), "unknown");
        assert_eq!(code_group(codes::CACHE_HIT), group::CACHE);
        assert_eq!(code_group(codes::RECOV_STEP), group::RECOVERY);
        assert_eq!(code_group(codes::SERVE_ADMIT), group::SERVE);
        assert_eq!(code_group(codes::LINT_FULL), group::LINT);
    }
}
