//! Deterministic simulation kernel for the PIMnet reproduction.
//!
//! This crate is the bottom of the workspace's crate graph. It provides:
//!
//! * strongly-typed physical units ([`Bytes`], [`Bandwidth`], [`Frequency`],
//!   [`Cycles`]) whose arithmetic is exact integer math,
//! * a picosecond-resolution simulated clock ([`SimTime`]),
//! * a deterministic discrete-event engine ([`engine::Engine`]) with
//!   strictly-ordered event dispatch,
//! * a deterministic fan-out helper ([`par`]) that runs independent work
//!   items on a scoped thread pool and returns results in input order,
//! * a deterministic observability layer: structured event tracing
//!   ([`trace`]), typed counters ([`metrics`]), and the [`Probe`] handle
//!   bundling both for instrumented (`*_probed`) code paths,
//! * small statistics helpers ([`stats`]).
//!
//! Everything above (the architecture model, PIMnet itself, the NoC
//! simulator, the workloads) is built on these types, so simulation results
//! are reproducible bit-for-bit across platforms and runs.
//!
//! # Example
//!
//! ```
//! use pim_sim::{Bandwidth, Bytes, SimTime};
//!
//! // How long does it take to push a 32 KiB message through a 0.7 GB/s
//! // PIMnet inter-bank channel?
//! let t = Bandwidth::gbps(0.7).transfer_time(Bytes::kib(32));
//! assert_eq!(t, SimTime::from_ps(46_811_429));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod par;
pub mod probe;
pub mod rng;
pub mod stats;
mod time;
pub mod trace;
mod units;

pub use engine::Engine;
pub use metrics::{Metrics, MetricsReport};
pub use probe::Probe;
pub use rng::SimRng;
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, Tracer};
pub use units::{Bandwidth, Bytes, Cycles, Frequency};
