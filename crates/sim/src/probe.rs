//! The [`Probe`]: one handle bundling an event [`Tracer`] and a
//! [`Metrics`] sink.
//!
//! Instrumented code paths take `&Probe` and are published as `*_probed`
//! siblings of the plain functions. The contract every probed function
//! follows:
//!
//! * `f_probed(.., Probe::disabled())` returns **bit-identical** results
//!   to `f(..)` — observation never perturbs the simulation;
//! * a probed call with an inactive probe short-circuits to the plain
//!   body, so the disabled-path cost is one branch (`perf_gate` pins the
//!   overhead under 1 %);
//! * recorded events and counters are deterministic functions of the
//!   simulated inputs (no wall-clock, no worker identity, no addresses).

use crate::metrics::Metrics;
use crate::trace::Tracer;

/// A pair of sinks instrumented code records into.
#[derive(Debug)]
pub struct Probe {
    /// The structured-event sink.
    pub trace: Tracer,
    /// The typed-counter sink.
    pub metrics: Metrics,
}

/// The process-wide no-op probe (see [`Probe::disabled`]).
static DISABLED: Probe = Probe {
    trace: Tracer::disabled(),
    metrics: Metrics::disabled(),
};

impl Probe {
    /// The shared no-op probe: both sinks disabled. Plain (un-probed)
    /// entry points pass this to their instrumented bodies, making the
    /// observation cost a single branch.
    #[must_use]
    pub fn disabled() -> &'static Probe {
        &DISABLED
    }

    /// A probe with both sinks enabled (default trace ring capacity).
    #[must_use]
    pub fn enabled() -> Probe {
        Probe {
            trace: Tracer::enabled(),
            metrics: Metrics::enabled(),
        }
    }

    /// A probe with both sinks enabled and a trace ring of `capacity`
    /// events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Probe {
        Probe {
            trace: Tracer::with_capacity(capacity),
            metrics: Metrics::enabled(),
        }
    }

    /// A probe recording only metrics (no event buffering).
    #[must_use]
    pub fn metrics_only() -> Probe {
        Probe {
            trace: Tracer::disabled(),
            metrics: Metrics::enabled(),
        }
    }

    /// Whether any sink records: probed code short-circuits to the plain
    /// body when this is `false`.
    #[inline]
    #[must_use]
    pub const fn is_active(&self) -> bool {
        self.trace.is_enabled() || self.metrics.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsReport;

    #[test]
    fn disabled_probe_is_inert_and_shared() {
        let p = Probe::disabled();
        assert!(!p.is_active());
        p.metrics.barrier(10);
        p.trace
            .instant(crate::SimTime::ZERO, crate::trace::codes::BARRIER, [0; 4]);
        assert_eq!(p.metrics.snapshot(), MetricsReport::new());
        assert!(p.trace.is_empty());
        assert!(std::ptr::eq(Probe::disabled(), Probe::disabled()));
    }

    #[test]
    fn enabled_probe_records_both_sinks() {
        let p = Probe::enabled();
        assert!(p.is_active());
        p.metrics.cache_miss();
        p.trace.instant(
            crate::SimTime::ZERO,
            crate::trace::codes::CACHE_MISS,
            [0; 4],
        );
        assert_eq!(p.metrics.snapshot().cache_misses, 1);
        assert_eq!(p.trace.len(), 1);
    }

    #[test]
    fn metrics_only_probe_is_active_but_traceless() {
        let p = Probe::metrics_only();
        assert!(p.is_active());
        p.trace
            .instant(crate::SimTime::ZERO, crate::trace::codes::BARRIER, [0; 4]);
        p.metrics.barrier(7);
        assert!(p.trace.is_empty());
        assert_eq!(p.metrics.snapshot().barriers, 1);
    }
}
