//! A deterministic discrete-event simulation engine.
//!
//! Events are closures scheduled at absolute [`SimTime`] instants. Two events
//! scheduled for the same instant fire in the order they were scheduled
//! (FIFO), which makes runs exactly reproducible.
//!
//! The engine is generic over a *world* type `W` that holds all mutable
//! simulation state; events receive `&mut W` plus `&mut Engine<W>` so they
//! can schedule follow-up events.
//!
//! # Example
//!
//! ```
//! use pim_sim::{Engine, SimTime};
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_ns(10), |count: &mut u32, eng| {
//!     *count += 1;
//!     // chain another event 5 ns later
//!     eng.schedule_in(SimTime::from_ns(5), |count, _| *count += 10);
//! });
//! let mut count = 0;
//! engine.run(&mut count);
//! assert_eq!(count, 11);
//! assert_eq!(engine.now(), SimTime::from_ns(15));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Discrete-event simulation engine over a world type `W`.
///
/// See the [module documentation](self) for an example.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled<W>>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an empty engine at time zero.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulated time (the timestamp of the last dispatched event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "Engine::schedule: event at {at} is in the past (now = {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule(at, action);
    }

    /// Dispatches the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.time;
        self.executed += 1;
        (ev.action)(world, self);
        true
    }

    /// Runs until no events remain; returns the final simulated time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world) {}
        self.now
    }

    /// Runs until either no events remain or the next event would fire after
    /// `deadline`; events exactly at the deadline are dispatched. Returns the
    /// final simulated time.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(head) = self.queue.peek() {
            if head.time > deadline {
                break;
            }
            self.step(world);
        }
        self.now
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(SimTime::from_ns(30), |log, _| log.push(3));
        engine.schedule(SimTime::from_ns(10), |log, _| log.push(1));
        engine.schedule(SimTime::from_ns(20), |log, _| log.push(2));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(engine.now(), SimTime::from_ns(30));
    }

    #[test]
    fn ties_break_fifo() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        for i in 0..16 {
            engine.schedule(SimTime::from_ns(5), move |log, _| log.push(i));
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_time() {
        let mut engine: Engine<u64> = Engine::new();
        fn tick(count: &mut u64, eng: &mut Engine<u64>) {
            *count += 1;
            if *count < 5 {
                eng.schedule_in(SimTime::from_ns(7), tick);
            }
        }
        engine.schedule(SimTime::ZERO, tick);
        let mut count = 0;
        let end = engine.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(end, SimTime::from_ns(28));
        assert_eq!(engine.events_executed(), 5);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule(SimTime::from_ns(10), |_, eng| {
            eng.schedule(SimTime::from_ns(5), |_, _| {});
        });
        engine.run(&mut ());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for t in [5u64, 10, 15, 20] {
            engine.schedule(SimTime::from_ns(t), move |log, _| log.push(t));
        }
        let mut log = Vec::new();
        engine.run_until(&mut log, SimTime::from_ns(12));
        assert_eq!(log, vec![5, 10]);
        assert_eq!(engine.pending(), 2);
        engine.run(&mut log);
        assert_eq!(log, vec![5, 10, 15, 20]);
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut engine: Engine<()> = Engine::new();
        assert!(!engine.step(&mut ()));
    }

    #[test]
    fn debug_is_nonempty() {
        let engine: Engine<()> = Engine::new();
        assert!(format!("{engine:?}").contains("Engine"));
    }
}
