//! A deterministic discrete-event simulation engine.
//!
//! Events are closures scheduled at absolute [`SimTime`] instants. Two events
//! scheduled for the same instant fire in the order they were scheduled
//! (FIFO), which makes runs exactly reproducible.
//!
//! The engine is generic over a *world* type `W` that holds all mutable
//! simulation state; events receive `&mut W` plus `&mut Engine<W>` so they
//! can schedule follow-up events.
//!
//! Internally the pending set is a *calendar queue* (R. Brown, CACM 1988): a
//! ring of time buckets of fixed width, dequeued by sweeping the ring from
//! the current position. Enqueue and dequeue are O(1) amortized versus the
//! O(log n) of the [`std::collections::BinaryHeap`] it replaced, and the
//! ordering contract is unchanged — strictly ascending `(time, seq)` — which
//! the seeded property test below pins against a reference heap, timestamp
//! ties included.
//!
//! # Example
//!
//! ```
//! use pim_sim::{Engine, SimTime};
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_ns(10), |count: &mut u32, eng| {
//!     *count += 1;
//!     // chain another event 5 ns later
//!     eng.schedule_in(SimTime::from_ns(5), |count, _| *count += 10);
//! });
//! let mut count = 0;
//! engine.run(&mut count);
//! assert_eq!(count, 11);
//! assert_eq!(engine.now(), SimTime::from_ns(15));
//! ```

use crate::SimTime;

type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> Scheduled<W> {
    /// The dequeue priority: ascending `(time, seq)`, so same-instant
    /// events keep their scheduling (FIFO) order.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Calendar queue over [`Scheduled`] events.
///
/// Buckets cover contiguous windows of `width_ps` picoseconds and wrap
/// around the ring, so bucket `i` holds every pending event whose
/// `time / width_ps ≡ i (mod buckets)`. Each bucket is kept sorted by
/// *descending* `(time, seq)` so the bucket minimum pops from the tail in
/// O(1). Dequeue sweeps the ring starting at the window of the last
/// dequeued instant; because the engine forbids scheduling into the past,
/// the first event found inside its bucket's current window is the global
/// minimum. A sweep that covers a whole "year" (every bucket) without a
/// hit falls back to a direct scan of all bucket tails.
///
/// All state transitions are pure functions of the push/pop sequence —
/// no clocks, no hashing — so the queue is deterministic by construction.
struct CalendarQueue<W> {
    buckets: Vec<Vec<Scheduled<W>>>,
    /// Width of one bucket window in picoseconds (≥ 1).
    width_ps: u64,
    /// Total pending events across all buckets.
    len: usize,
    /// Instant of the most recent dequeue; the next sweep starts in its
    /// window. Never decreases (causality).
    last_ps: u64,
}

/// Initial (and minimum) bucket count; always a power of two.
const MIN_BUCKETS: usize = 16;
/// Initial bucket width, in picoseconds.
const INITIAL_WIDTH_PS: u64 = 1024;

impl<W> CalendarQueue<W> {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width_ps: INITIAL_WIDTH_PS,
            len: 0,
            last_ps: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bucket_of(&self, time_ps: u64) -> usize {
        ((time_ps / self.width_ps) % self.buckets.len() as u64) as usize
    }

    fn push(&mut self, ev: Scheduled<W>) {
        let b = self.bucket_of(ev.time.as_ps());
        let bucket = &mut self.buckets[b];
        // Descending order: find the first entry that sorts below `ev`
        // and insert in front of it; the tail stays the bucket minimum.
        let key = ev.key();
        let pos = bucket.partition_point(|e| e.key() > key);
        bucket.insert(pos, ev);
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<Scheduled<W>> {
        let (bucket, _) = self.find_min()?;
        let ev = self.buckets[bucket]
            .pop()
            .expect("found bucket is nonempty");
        self.len -= 1;
        self.last_ps = ev.time.as_ps();
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.resize((self.buckets.len() / 2).max(MIN_BUCKETS));
        }
        Some(ev)
    }

    fn peek_time(&self) -> Option<SimTime> {
        let (bucket, time) = self.find_min()?;
        debug_assert!(!self.buckets[bucket].is_empty());
        Some(time)
    }

    /// Locates the globally minimum event: the bucket index holding it (at
    /// the bucket tail) and its time. Sweeps one year from the window of
    /// `last_ps`, then falls back to a direct scan over every bucket tail.
    fn find_min(&self) -> Option<(usize, SimTime)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let first_window = self.last_ps / self.width_ps;
        for window in first_window..first_window + n as u64 {
            let b = (window % n as u64) as usize;
            if let Some(ev) = self.buckets[b].last() {
                let window_end = (window + 1).saturating_mul(self.width_ps);
                if ev.time.as_ps() < window_end {
                    return Some((b, ev.time));
                }
            }
        }
        // Sparse queue: nothing within a year of the cursor. Direct scan.
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(ev) = bucket.last() {
                if best.is_none_or(|(_, k)| ev.key() < k) {
                    best = Some((b, ev.key()));
                }
            }
        }
        best.map(|(b, (t, _))| (b, t))
    }

    /// Rebuilds the ring with `new_len` buckets and a width derived from
    /// the current event population (mean spacing across the pending time
    /// range, clamped to ≥ 1 ps). Both inputs are functions of the queue
    /// contents alone, keeping the layout deterministic.
    fn resize(&mut self, new_len: usize) {
        let mut events: Vec<Scheduled<W>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            events.append(bucket);
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for ev in &events {
            let t = ev.time.as_ps();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        self.width_ps = if events.len() >= 2 && hi > lo {
            ((hi - lo) / events.len() as u64).max(1)
        } else {
            INITIAL_WIDTH_PS
        };
        self.buckets = (0..new_len).map(|_| Vec::new()).collect();
        self.len = 0;
        for ev in events {
            self.push(ev);
        }
    }
}

/// Discrete-event simulation engine over a world type `W`.
///
/// See the [module documentation](self) for an example.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: CalendarQueue<W>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an empty engine at time zero.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: CalendarQueue::new(),
        }
    }

    /// Current simulated time (the timestamp of the last dispatched event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "Engine::schedule: event at {at} is in the past (now = {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule(at, action);
    }

    /// Dispatches the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.time;
        self.executed += 1;
        (ev.action)(world, self);
        true
    }

    /// Runs until no events remain; returns the final simulated time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world) {}
        self.now
    }

    /// Runs until either no events remain or the next event would fire after
    /// `deadline`; events exactly at the deadline are dispatched. Returns the
    /// final simulated time.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(head) = self.queue.peek_time() {
            if head > deadline {
                break;
            }
            self.step(world);
        }
        self.now
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule(SimTime::from_ns(30), |log, _| log.push(3));
        engine.schedule(SimTime::from_ns(10), |log, _| log.push(1));
        engine.schedule(SimTime::from_ns(20), |log, _| log.push(2));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(engine.now(), SimTime::from_ns(30));
    }

    #[test]
    fn ties_break_fifo() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        for i in 0..16 {
            engine.schedule(SimTime::from_ns(5), move |log, _| log.push(i));
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_time() {
        let mut engine: Engine<u64> = Engine::new();
        fn tick(count: &mut u64, eng: &mut Engine<u64>) {
            *count += 1;
            if *count < 5 {
                eng.schedule_in(SimTime::from_ns(7), tick);
            }
        }
        engine.schedule(SimTime::ZERO, tick);
        let mut count = 0;
        let end = engine.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(end, SimTime::from_ns(28));
        assert_eq!(engine.events_executed(), 5);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule(SimTime::from_ns(10), |_, eng| {
            eng.schedule(SimTime::from_ns(5), |_, _| {});
        });
        engine.run(&mut ());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for t in [5u64, 10, 15, 20] {
            engine.schedule(SimTime::from_ns(t), move |log, _| log.push(t));
        }
        let mut log = Vec::new();
        engine.run_until(&mut log, SimTime::from_ns(12));
        assert_eq!(log, vec![5, 10]);
        assert_eq!(engine.pending(), 2);
        engine.run(&mut log);
        assert_eq!(log, vec![5, 10, 15, 20]);
    }

    #[test]
    fn step_on_empty_queue_returns_false() {
        let mut engine: Engine<()> = Engine::new();
        assert!(!engine.step(&mut ()));
    }

    #[test]
    fn debug_is_nonempty() {
        let engine: Engine<()> = Engine::new();
        assert!(format!("{engine:?}").contains("Engine"));
    }

    /// Seeded property test: across randomized interleavings of pushes and
    /// pops — with deliberate timestamp ties and time scales spanning six
    /// orders of magnitude — the calendar queue dequeues *exactly* the
    /// `(time, seq)` sequence the `BinaryHeap` it replaced would produce.
    #[test]
    fn calendar_queue_matches_reference_heap_order() {
        for seed in 0..12u64 {
            let mut rng = SimRng::seed_from_u64(0x00c9_a15e ^ (seed * 0x9e37_79b9));
            let mut cal: CalendarQueue<()> = CalendarQueue::new();
            // The reference is the exact ordering contract of the old
            // BinaryHeap scheduler: a min-heap over (time, seq).
            let mut reference: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now_ps = 0u64;
            // Vary the event-time scale per seed so resizes exercise both
            // dense (many ties per bucket) and sparse (year-overflow
            // direct-scan) layouts.
            let scale = [1u64, 7, 1000, 250_000, 40_000_000][seed as usize % 5];
            for _ in 0..400 {
                if rng.gen_bool(0.55) {
                    // A burst of pushes; ~1 in 3 reuses an exact prior
                    // timestamp to force ties.
                    for _ in 0..rng.gen_range(1..8u32) {
                        let t = if rng.gen_bool(0.33) {
                            now_ps
                        } else {
                            now_ps + rng.below(64) * scale
                        };
                        let time = SimTime::from_ps(t);
                        cal.push(Scheduled {
                            time,
                            seq,
                            action: Box::new(|_, _| {}),
                        });
                        reference.push(Reverse((time, seq)));
                        seq += 1;
                    }
                } else {
                    let got = cal.pop().map(|ev| ev.key());
                    let want = reference.pop().map(|Reverse(k)| k);
                    assert_eq!(got, want, "seed {seed}: divergent dequeue");
                    if let Some((t, _)) = got {
                        now_ps = t.as_ps();
                    }
                }
            }
            // Drain both completely: every remaining event must match too.
            loop {
                let got = cal.pop().map(|ev| ev.key());
                let want = reference.pop().map(|Reverse(k)| k);
                assert_eq!(got, want, "seed {seed}: divergent drain");
                if got.is_none() {
                    break;
                }
            }
            assert_eq!(cal.len(), 0);
        }
    }

    /// Resize paths (grow past 2x buckets, shrink on drain) preserve both
    /// content and order under a large monotone-then-random load.
    #[test]
    fn calendar_queue_resize_preserves_order() {
        let mut rng = SimRng::seed_from_u64(0xca1e_0da2);
        let mut cal: CalendarQueue<()> = CalendarQueue::new();
        let mut keys: Vec<(SimTime, u64)> = Vec::new();
        for seq in 0..5000u64 {
            let time = SimTime::from_ps(rng.below(1 << 20));
            keys.push((time, seq));
            cal.push(Scheduled {
                time,
                seq,
                action: Box::new(|_, _| {}),
            });
        }
        assert!(cal.buckets.len() > MIN_BUCKETS, "growth path not exercised");
        keys.sort();
        let mut drained = Vec::new();
        while let Some(ev) = cal.pop() {
            drained.push(ev.key());
        }
        assert_eq!(drained, keys);
        assert_eq!(cal.buckets.len(), MIN_BUCKETS, "shrink path not exercised");
    }
}
