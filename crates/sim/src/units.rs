//! Strongly-typed physical units: data sizes, bandwidths, frequencies, cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::SimTime;

/// A data size in bytes.
///
/// Constructors are provided for the binary multiples used throughout the
/// paper (WRAM is 64 KiB, MRAM is 64 MiB, collective messages are given in
/// KB).
///
/// # Example
///
/// ```
/// use pim_sim::Bytes;
///
/// let wram = Bytes::kib(64);
/// let msg = Bytes::kib(32);
/// assert!(msg < wram);
/// assert_eq!((msg * 2).as_u64(), wram.as_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// `n` kibibytes (1024 B).
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` mebibytes (1024 KiB).
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// `n` gibibytes (1024 MiB).
    #[must_use]
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This size in (fractional) kibibytes.
    #[must_use]
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// This size in (fractional) mebibytes.
    #[must_use]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// True iff this is exactly zero bytes.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Division rounding up: the number of `chunk`-sized pieces needed to
    /// cover `self`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    #[must_use]
    pub fn div_ceil(self, chunk: Bytes) -> u64 {
        assert!(!chunk.is_zero(), "Bytes::div_ceil: zero chunk size");
        self.0.div_ceil(chunk.0)
    }

    /// Saturating subtraction: clamps at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two sizes.
    #[must_use]
    pub fn max(self, other: Bytes) -> Bytes {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two sizes.
    #[must_use]
    pub fn min(self, other: Bytes) -> Bytes {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;

    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_add(rhs.0).expect("Bytes addition overflow"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;

    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(
            self.0
                .checked_sub(rhs.0)
                .expect("Bytes subtraction underflow"),
        )
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;

    fn mul(self, rhs: u64) -> Bytes {
        Bytes(
            self.0
                .checked_mul(rhs)
                .expect("Bytes multiplication overflow"),
        )
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;

    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b < 1024 {
            write!(f, "{b} B")
        } else if b < 1024 * 1024 {
            write!(f, "{:.2} KiB", self.as_kib())
        } else if b < 1024 * 1024 * 1024 {
            write!(f, "{:.2} MiB", self.as_mib())
        } else {
            write!(f, "{:.2} GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
        }
    }
}

/// A transfer rate in bytes per second.
///
/// The paper quotes all bandwidths in decimal GB/s (10^9 bytes/s); the
/// [`Bandwidth::gbps`] constructor follows that convention.
///
/// # Example
///
/// ```
/// use pim_sim::{Bandwidth, Bytes};
///
/// // Table IV: one inter-bank PIMnet channel is 0.7 GB/s.
/// let ch = Bandwidth::gbps(0.7);
/// let t = ch.transfer_time(Bytes::kib(4));
/// assert!((t.as_us() - 5.851).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth (an unusable link; transfers over it panic).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth from raw bytes per second.
    #[must_use]
    pub const fn bytes_per_sec(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from decimal gigabytes per second (the paper's
    /// unit), rounding to the nearest byte/s.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is negative or not finite.
    #[must_use]
    pub fn gbps(gbps: f64) -> Self {
        assert!(
            gbps >= 0.0 && gbps.is_finite(),
            "Bandwidth::gbps: invalid value {gbps}"
        );
        Bandwidth((gbps * 1e9).round() as u64)
    }

    /// Creates a bandwidth from decimal megabytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is negative or not finite.
    #[must_use]
    pub fn mbps(mbps: f64) -> Self {
        assert!(
            mbps >= 0.0 && mbps.is_finite(),
            "Bandwidth::mbps: invalid value {mbps}"
        );
        Bandwidth((mbps * 1e6).round() as u64)
    }

    /// Raw bytes per second.
    #[must_use]
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// This bandwidth in (fractional) decimal GB/s.
    #[must_use]
    pub fn as_gbps(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True iff the link carries no bandwidth.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Serialization time for `bytes` at this rate, rounded up to the next
    /// picosecond. Exact integer arithmetic (u128 intermediate), so results
    /// are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero and `bytes` is non-zero.
    #[must_use]
    pub fn transfer_time(self, bytes: Bytes) -> SimTime {
        if bytes.is_zero() {
            return SimTime::ZERO;
        }
        assert!(
            !self.is_zero(),
            "Bandwidth::transfer_time: transfer over a zero-bandwidth link"
        );
        let ps = (bytes.as_u64() as u128 * 1_000_000_000_000u128).div_ceil(self.0 as u128);
        SimTime::from_ps(u64::try_from(ps).expect("transfer time overflow"))
    }

    /// The bandwidth split evenly over `n` shares (used when a physical bus
    /// is time-multiplexed between `n` concurrent users).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn split(self, n: u64) -> Bandwidth {
        assert!(n > 0, "Bandwidth::split: zero shares");
        Bandwidth(self.0 / n)
    }

    /// Aggregate of `n` identical links.
    #[must_use]
    pub fn aggregate(self, n: u64) -> Bandwidth {
        Bandwidth(
            self.0
                .checked_mul(n)
                .expect("Bandwidth aggregation overflow"),
        )
    }

    /// The smaller of two bandwidths (bottleneck of a two-stage pipe).
    #[must_use]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GB/s", self.as_gbps())
    }
}

/// A clock frequency in hertz.
///
/// # Example
///
/// ```
/// use pim_sim::{Cycles, Frequency};
///
/// // UPMEM DPUs run at 350 MHz.
/// let f = Frequency::mhz(350);
/// let t = f.cycles_to_time(Cycles::new(350_000_000));
/// assert_eq!(t.as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from raw hertz.
    #[must_use]
    pub const fn hz(hz: u64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub const fn mhz(mhz: u64) -> Self {
        Frequency(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    #[must_use]
    pub const fn ghz(ghz: u64) -> Self {
        Frequency(ghz * 1_000_000_000)
    }

    /// Raw hertz.
    #[must_use]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Duration of one clock cycle, rounded up to the next picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn cycle_time(self) -> SimTime {
        self.cycles_to_time(Cycles::new(1))
    }

    /// Duration of `cycles` clock cycles, rounded up to the next picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn cycles_to_time(self, cycles: Cycles) -> SimTime {
        assert!(self.0 > 0, "Frequency::cycles_to_time: zero frequency");
        let ps = (cycles.as_u64() as u128 * 1_000_000_000_000u128).div_ceil(self.0 as u128);
        SimTime::from_ps(u64::try_from(ps).expect("cycle time overflow"))
    }

    /// Number of whole cycles elapsed in `time` (rounded down).
    #[must_use]
    pub fn time_to_cycles(self, time: SimTime) -> Cycles {
        let cycles = time.as_ps() as u128 * self.0 as u128 / 1_000_000_000_000u128;
        Cycles::new(u64::try_from(cycles).expect("cycle count overflow"))
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} GHz", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.1} MHz", self.0 as f64 / 1e6)
        }
    }
}

/// A count of clock cycles (frequency-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Raw cycle count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl Add for Cycles {
    type Output = Cycles;

    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_add(rhs.0).expect("Cycles addition overflow"))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;

    fn mul(self, rhs: u64) -> Cycles {
        Cycles(
            self.0
                .checked_mul(rhs)
                .expect("Cycles multiplication overflow"),
        )
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(64).as_u64(), 65_536);
        assert_eq!(Bytes::mib(64).as_u64(), 67_108_864);
        assert_eq!(Bytes::gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn byte_arithmetic() {
        assert_eq!(Bytes::new(10) + Bytes::new(5), Bytes::new(15));
        assert_eq!(Bytes::new(10) - Bytes::new(5), Bytes::new(5));
        assert_eq!(Bytes::new(10) * 3, Bytes::new(30));
        assert_eq!(Bytes::new(10) / 4, Bytes::new(2));
        assert_eq!(Bytes::new(10).div_ceil(Bytes::new(4)), 3);
        assert_eq!(Bytes::new(3).saturating_sub(Bytes::new(5)), Bytes::ZERO);
    }

    #[test]
    fn bandwidth_transfer_time_exact() {
        // 1 GB/s moves 1000 bytes in exactly 1 us.
        let bw = Bandwidth::gbps(1.0);
        assert_eq!(bw.transfer_time(Bytes::new(1000)), SimTime::from_us(1));
        // Zero bytes is free even over a zero-bandwidth link.
        assert_eq!(Bandwidth::ZERO.transfer_time(Bytes::ZERO), SimTime::ZERO);
    }

    #[test]
    fn bandwidth_transfer_time_rounds_up() {
        // 3 bytes at 1 GB/s = 3 ns exactly; 1 byte at 3 GB/s rounds up.
        let t = Bandwidth::bytes_per_sec(3_000_000_000).transfer_time(Bytes::new(1));
        assert_eq!(t.as_ps(), 334); // ceil(1e12 / 3e9)
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_transfer_panics() {
        let _ = Bandwidth::ZERO.transfer_time(Bytes::new(1));
    }

    #[test]
    fn bandwidth_split_and_aggregate() {
        let bw = Bandwidth::gbps(16.8);
        assert_eq!(bw.split(4).as_bytes_per_sec(), 4_200_000_000);
        assert_eq!(Bandwidth::gbps(0.7).aggregate(4).as_gbps(), 2.8);
        assert_eq!(bw.min(Bandwidth::gbps(1.0)), Bandwidth::gbps(1.0));
    }

    #[test]
    fn frequency_cycle_math() {
        let f = Frequency::mhz(350);
        // One 350 MHz cycle is 2857.142... ns -> rounded up to 2858 ps? No:
        // 1e12 / 350e6 = 2857.142 ps -> ceil = 2858.
        assert_eq!(f.cycle_time().as_ps(), 2858);
        assert_eq!(
            f.time_to_cycles(SimTime::from_secs_f64(1.0)),
            Cycles::new(350_000_000)
        );
    }

    #[test]
    fn roundtrip_cycles_time() {
        let f = Frequency::ghz(4);
        let c = Cycles::new(123_456);
        let t = f.cycles_to_time(c);
        assert_eq!(f.time_to_cycles(t), c);
    }

    #[test]
    fn displays() {
        assert_eq!(Bytes::kib(32).to_string(), "32.00 KiB");
        assert_eq!(Bandwidth::gbps(0.7).to_string(), "0.700 GB/s");
        assert_eq!(Frequency::mhz(350).to_string(), "350.0 MHz");
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
    }
}
