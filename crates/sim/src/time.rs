//! Picosecond-resolution simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, stored as integer picoseconds.
///
/// A single type is used both for instants and for durations, as is common in
/// event-driven simulators; the arithmetic operators behave like duration
/// arithmetic. Integer picoseconds give exact, platform-independent results
/// while still covering simulations of up to ~213 days.
///
/// # Example
///
/// ```
/// use pim_sim::SimTime;
///
/// let sync = SimTime::from_ns(15); // PIMnet worst-case READY/START latency
/// let step = SimTime::from_us(3);
/// assert!(sync < step);
/// assert_eq!((sync + step).as_ns(), 3_015.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from integer nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from integer microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from integer milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// picosecond. Intended for configuration values, not for hot-path
    /// arithmetic (which should stay in integers).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "SimTime::from_secs_f64: invalid seconds value {secs}"
        );
        let ps = secs * 1e12;
        assert!(ps <= u64::MAX as f64, "SimTime::from_secs_f64: overflow");
        SimTime(ps.round() as u64)
    }

    /// Raw picosecond count.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) nanoseconds.
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in (fractional) microseconds.
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in (fractional) milliseconds.
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns [`SimTime::ZERO`] instead of wrapping.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The larger of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Dimensionless ratio `self / other` as `f64`.
    ///
    /// Returns `f64::INFINITY` when `other` is zero and `self` is non-zero,
    /// and `0.0` when both are zero (a convention convenient for speedup
    /// tables).
    #[must_use]
    pub fn ratio(self, other: SimTime) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflow"),
        )
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(
            self.0
                .checked_mul(rhs)
                .expect("SimTime multiplication overflow"),
        )
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0 ps")
        } else if ps < 1_000 {
            write!(f, "{ps} ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3} ns", self.as_ns())
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3} us", self.as_us())
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3} ms", self.as_ms())
        } else {
            write!(f, "{:.6} s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_ps(), 1_500_000_000_000);
    }

    #[test]
    fn arithmetic_behaves_like_durations() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!(a + b, SimTime::from_ns(14));
        assert_eq!(a - b, SimTime::from_ns(6));
        assert_eq!(a * 3, SimTime::from_ns(30));
        assert_eq!(a / 2, SimTime::from_ns(5));
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn plain_sub_panics_on_underflow() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn ratio_conventions() {
        assert_eq!(SimTime::from_ns(10).ratio(SimTime::from_ns(5)), 2.0);
        assert_eq!(SimTime::ZERO.ratio(SimTime::ZERO), 0.0);
        assert!(SimTime::from_ns(1).ratio(SimTime::ZERO).is_infinite());
    }

    #[test]
    fn display_auto_scales() {
        assert_eq!(SimTime::from_ps(12).to_string(), "12 ps");
        assert_eq!(SimTime::from_ns(15).to_string(), "15.000 ns");
        assert_eq!(SimTime::from_us(3).to_string(), "3.000 us");
        assert_eq!(SimTime::from_ms(7).to_string(), "7.000 ms");
        assert_eq!(SimTime::from_secs_f64(2.0).to_string(), "2.000000 s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_ns(n)).sum();
        assert_eq!(total, SimTime::from_ns(6));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ns(3);
        let b = SimTime::from_ns(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
