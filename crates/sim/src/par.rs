//! Deterministic fan-out over independent work items.
//!
//! Every sweep in this workspace (chaos storms, lint preset matrices,
//! figure-scaling curves) decomposes into items that are pure functions of
//! their inputs — a `(geometry, collective, payload, seed)` point shares no
//! state with its neighbours. [`map_ordered`] exploits that: it runs the
//! items on a scoped `std::thread` pool and returns the results **in input
//! order**, so the output is bit-identical to the sequential
//! `items.into_iter().map(f).collect()` no matter how many workers ran or
//! how the OS interleaved them.
//!
//! The ordering guarantee is structural, not probabilistic: each item's
//! result is written to its own pre-allocated slot (indexed by the item's
//! position), and the slots are drained in index order after every worker
//! has joined. Workers pull items off a shared atomic cursor, so the
//! *assignment* of items to threads varies run to run — but since `f` is
//! required to be a pure function of the item, the assignment is
//! unobservable in the result.
//!
//! Worker count comes from the `PIMNET_THREADS` environment variable
//! (default: the machine's available parallelism). `PIMNET_THREADS=1`
//! degenerates to a plain sequential map with zero thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::probe::Probe;
use crate::trace::codes;
use crate::SimTime;

/// The worker count sweeps use by default: `PIMNET_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism
/// (falling back to 1 when that cannot be determined).
#[must_use]
pub fn thread_count() -> usize {
    match std::env::var("PIMNET_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on [`thread_count()`] workers, returning results
/// in input order. See [`map_ordered_with`] for the guarantees.
pub fn map_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_ordered_with(thread_count(), items, f)
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning
/// results **in input order**.
///
/// `f` must be a pure function of its item (it may read shared immutable
/// state, including the schedule cache); under that contract the result is
/// bit-identical to `items.into_iter().map(f).collect()` for every worker
/// count, which `tests/parallel_determinism.rs` pins down.
///
/// With `workers <= 1` or fewer than two items this *is* the sequential
/// map: no threads are spawned and no synchronization happens.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins every worker first).
pub fn map_ordered_with<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // One slot per item: workers take the item out, compute, and park the
    // result in the same index. The mutexes are uncontended (each slot is
    // touched by exactly one worker) — they exist to make the slot writes
    // safe without `unsafe`.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let work = &work;
    let results = &results;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("par: a worker panicked while claiming an item")
                    .take()
                    .expect("par: item claimed twice");
                let r = f(item);
                *results[i]
                    .lock()
                    .expect("par: a worker panicked while storing a result") = Some(r);
            });
        }
    });
    results
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("par: result slot poisoned")
                .take()
                .expect("par: missing result (worker died?)")
        })
        .collect()
}

/// [`map_ordered_with`] plus observability: records one `par-batch`
/// event and per-item `par-task` events into `probe`.
///
/// Determinism note: task events carry the item's **logical index** as
/// their timestamp and are emitted by the *calling* thread after every
/// worker has joined. Worker identity and claim order are intentionally
/// unobservable — they vary run to run, and recording them would break
/// the byte-identical-trace guarantee that `tests/trace_golden.rs` pins
/// across worker counts.
pub fn map_ordered_probed<T, R, F>(workers: usize, items: Vec<T>, probe: &Probe, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if !probe.is_active() {
        return map_ordered_with(workers, items, f);
    }
    let n = items.len() as u64;
    let out = map_ordered_with(workers, items, f);
    probe.metrics.par_batch(n);
    probe
        .trace
        .instant(SimTime::ZERO, codes::PAR_BATCH, [n, 0, 0, 0]);
    for i in 0..n {
        probe
            .trace
            .instant(SimTime::from_ps(i), codes::PAR_TASK, [i, 0, 0, 0]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = map_ordered_with(workers, items.clone(), |x| x * x);
            assert_eq!(
                out,
                items.iter().map(|x| x * x).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // A mildly expensive, seed-dependent computation: the kind of cell
        // the sweeps fan out.
        let cell = |seed: u64| -> Vec<u64> {
            let mut rng = crate::SimRng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u64()).collect()
        };
        let seeds: Vec<u64> = (0..37).collect();
        let seq = map_ordered_with(1, seeds.clone(), cell);
        for workers in [2, 5, 16] {
            assert_eq!(map_ordered_with(workers, seeds.clone(), cell), seq);
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(
            map_ordered_with(32, vec![1, 2, 3], |x| x + 1),
            vec![2, 3, 4]
        );
        assert_eq!(
            map_ordered_with(4, Vec::<u32>::new(), |x| x),
            Vec::<u32>::new()
        );
        assert_eq!(map_ordered_with(0, vec![7], |x| x), vec![7]);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn probed_fanout_is_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            let probe = Probe::enabled();
            let out = map_ordered_probed(workers, (0u64..17).collect(), &probe, |x| x * 3);
            (out, probe.trace.drain().to_csv(), probe.metrics.snapshot())
        };
        let (out1, trace1, m1) = run(1);
        assert_eq!(m1.par_batches, 1);
        assert_eq!(m1.par_tasks, 17);
        assert_eq!(trace1.matches("par-task").count(), 17);
        for workers in [2, 8] {
            let (out, trace, m) = run(workers);
            assert_eq!(out, out1, "workers={workers}");
            assert_eq!(trace, trace1, "workers={workers}: trace not byte-identical");
            assert_eq!(m.par_tasks, m1.par_tasks);
        }
    }

    #[test]
    fn probed_fanout_with_disabled_probe_records_nothing() {
        let probe = Probe::disabled();
        let out = map_ordered_probed(4, vec![1, 2, 3], probe, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert!(probe.trace.is_empty());
    }
}
