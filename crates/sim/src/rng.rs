//! Seeded, deterministic random number generation for the whole workspace.
//!
//! Every source of randomness in the reproduction — synthetic traffic
//! destinations, workload data generators, compute-time jitter, and the
//! fault-injection layer — flows through [`SimRng`], so any run is exactly
//! reproducible from its seed, bit-for-bit across platforms. The generator
//! is xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is
//! the standard way to expand a 64-bit seed into the 256-bit state.
//!
//! The API mirrors the subset of the `rand` crate the workspace used
//! before it was vendored out (`seed_from_u64`, `gen_range`, `gen_bool`),
//! so call sites read the same.
//!
//! # Example
//!
//! ```
//! use pim_sim::rng::SimRng;
//!
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
//! ```

/// SplitMix64 step — used for seeding and for stateless per-event hashing.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless hash of a list of event coordinates into a uniform `u64`.
///
/// The fault-injection layer uses this to make per-event decisions that
/// depend only on the seed and the event's stable identity — never on the
/// order events are visited — which is what makes fault runs replayable.
#[must_use]
pub fn hash_coords(seed: u64, coords: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for &c in coords {
        h = splitmix64(h ^ c);
    }
    h
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        // All-zero state is the one forbidden state of xoshiro.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in a range, like `rand::Rng::gen_range`.
    ///
    /// Supported range types: `Range`/`RangeInclusive` over the unsigned
    /// and signed integer widths and `f64`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`, like `rand::Rng::gen_bool`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // Compare against p scaled to the full 64-bit range; exact for the
        // p = 0 and p = 1 endpoints.
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below: zero bound");
        // Rejection zone keeps the mapping exactly uniform.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= zone || zone == 0 {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges [`SimRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all of 0..8 drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_endpoints_and_rate() {
        let mut rng = SimRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn hash_coords_is_order_sensitive_and_stable() {
        let a = hash_coords(5, &[1, 2, 3]);
        assert_eq!(a, hash_coords(5, &[1, 2, 3]));
        assert_ne!(a, hash_coords(5, &[3, 2, 1]));
        assert_ne!(a, hash_coords(6, &[1, 2, 3]));
    }

    #[test]
    fn mean_is_near_the_middle() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
