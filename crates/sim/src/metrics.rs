//! Typed counters and histograms aggregated into a [`MetricsReport`].
//!
//! The counterpart of [`crate::trace`]: where the tracer answers *when*
//! something happened, metrics answer *how much* — bytes per fabric tier,
//! link-busy picoseconds, barrier-wait time, retransmissions, staging-
//! arena reuse. The same two guarantees hold: every value is a
//! deterministic function of the simulated inputs (updates are plain
//! integer adds/maxes, so concurrent recording from a `par` fan-out still
//! converges to one value), and the disabled sink costs one branch per
//! call site ([`Metrics::disabled`] is `const`).
//!
//! Tier indices follow the schedule's phase labels: 0 = local (intra-DPU),
//! 1 = inter-bank, 2 = inter-chip, 3 = inter-rank.

use std::sync::Mutex;

/// Number of fabric tiers tracked by per-tier counters.
pub const TIERS: usize = 4;

/// Stable name of a tier index (`0..TIERS`), matching
/// `PhaseLabel`'s `Display` strings.
#[must_use]
pub const fn tier_name(tier: usize) -> &'static str {
    match tier {
        0 => "local",
        1 => "inter-bank",
        2 => "inter-chip",
        3 => "inter-rank",
        _ => "unknown",
    }
}

/// Stable name of a degradation-ladder tier (`DegradedPlan::tier`).
#[must_use]
pub const fn ladder_name(tier: u8) -> &'static str {
    match tier {
        0 => "full",
        1 => "repaired",
        2 => "shrunk",
        3 => "host-fallback",
        _ => "unknown",
    }
}

/// Power-of-two histogram: bucket `i < 16` counts values in
/// `[2^i, 2^(i+1))` (bucket 0 also holds 0), bucket 16 is the overflow
/// bucket for values ≥ 2^16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Histogram {
    /// The bucket counts.
    pub buckets: [u64; 17],
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Histogram {
        Histogram { buckets: [0; 17] }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        };
        self.buckets[bucket.min(16)] += 1;
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Lower bound of bucket `i`.
    #[must_use]
    pub const fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1 << i
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The aggregated counters of one observed run (or of several runs merged
/// with [`MetricsReport::merge`]). Plain data: every field is public and
/// the struct is `Copy`, so reports can be snapshotted, diffed and pinned
/// in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsReport {
    /// Wire bytes per tier, counted once per timeline transfer window.
    pub wire_bytes_by_tier: [u64; TIERS],
    /// Timeline transfer windows per tier.
    pub wire_transfers_by_tier: [u64; TIERS],
    /// Sum of per-link serialization busy time, grouped by tier (ps).
    pub link_busy_ps_by_tier: [u64; TIERS],
    /// Busy time of the single busiest link (ps). Invariant: ≤ `wall_ps`.
    pub max_link_busy_ps: u64,
    /// End-to-end completion time of the observed run (ps, max-folded).
    pub wall_ps: u64,

    /// READY/START barriers observed.
    pub barriers: u64,
    /// Total time spent in barriers (ps).
    pub barrier_wait_ps: u64,
    /// Stragglers that delayed a barrier or injection.
    pub stragglers: u64,
    /// Largest observed straggler delay (ns).
    pub max_straggler_delay_ns: u64,

    /// Schedule steps executed by the functional executor.
    pub exec_steps: u64,
    /// Bytes the executor staged for delivery, per tier (counted at
    /// snapshot time from the schedule's spans).
    pub exec_bytes_injected_by_tier: [u64; TIERS],
    /// Bytes the executor actually delivered, per tier (counted at apply
    /// time from the staging arena). Conservation: equals the injected
    /// counter per tier on every successful run.
    pub exec_bytes_delivered_by_tier: [u64; TIERS],
    /// Staging-arena snapshots taken (one per executed step).
    pub arena_snapshots: u64,
    /// Snapshots that had to grow the arena; the remainder reused the
    /// existing allocation ([`MetricsReport::arena_reuses`]).
    pub arena_grows: u64,

    /// CRC checks performed under fault injection.
    pub crc_checks: u64,
    /// Transfers the injector corrupted at least once.
    pub corrupted: u64,
    /// Executor re-sends after a failed CRC.
    pub retries: u64,
    /// NoC packets re-sent after corruption.
    pub retransmissions: u64,

    /// Schedule-cache hits (including de-duplicated waits).
    pub cache_hits: u64,
    /// Schedule-cache misses (this caller built the schedule).
    pub cache_misses: u64,
    /// Times a caller waited on another worker's in-flight build.
    pub cache_dedup_waits: u64,

    /// `par` fan-out batches observed.
    pub par_batches: u64,
    /// `par` work items observed.
    pub par_tasks: u64,

    /// Modeled communication time per tier from workload programs (ps).
    pub comm_time_ps_by_tier: [u64; TIERS],
    /// Modeled synchronization time from workload programs (ps).
    pub sync_time_ps: u64,
    /// Modeled local memory time from workload programs (ps).
    pub mem_time_ps: u64,
    /// Modeled host round-trip time from workload programs (ps).
    pub host_time_ps: u64,

    /// Bytes injected into the NoC (observed at the first hop).
    pub noc_injected_bytes: u64,
    /// Bytes delivered by the NoC (observed at the final hop).
    /// Conservation: equals `noc_injected_bytes` after a completed run.
    pub noc_delivered_bytes: u64,
    /// Cycles packets spent stalled waiting for credits.
    pub noc_stall_cycles: u64,
    /// Packets delivered by the NoC.
    pub noc_packets: u64,

    /// Degradation-ladder tier of the planned run, when a plan was
    /// observed (0 = full, 1 = repaired, 2 = shrunk, 3 = host-fallback).
    pub degraded_tier: Option<u8>,
    /// Distribution of per-transfer wire bytes.
    pub transfer_bytes: Histogram,

    /// Schedule steps the recovery manager completed.
    pub recovery_steps: u64,
    /// Step-level recovery retries (backoff rounds).
    pub recovery_retries: u64,
    /// Total backoff the recovery manager waited (ps).
    pub recovery_backoff_ps: u64,
    /// Replans triggered by mid-run fault arrivals or quarantines.
    pub recovery_replans: u64,
    /// Segments promoted to permanent faults by the health tracker.
    pub recovery_quarantines: u64,
    /// Timed permanent-fault arrivals the manager absorbed.
    pub recovery_arrivals: u64,
    /// Step-boundary checkpoints (completed steps whose buffers became
    /// the resume point).
    pub recovery_checkpoints: u64,
    /// Requests that reached the serving engine's admission stage.
    pub serve_requests: u64,
    /// Requests admitted into a tenant queue.
    pub serve_admitted: u64,
    /// Requests shed with a typed rejection (any reason).
    pub serve_shed: u64,
    /// Of the shed requests, those shed for a slipped deadline.
    pub serve_deadline_shed: u64,
    /// Of the shed requests, those shed because their tenant was
    /// quarantined.
    pub serve_quarantine_shed: u64,
    /// Requests served end-to-end (any ladder tier).
    pub serve_completed: u64,
    /// Of the served requests, those that ended on the host-fallback rung.
    pub serve_host_fallback: u64,
    /// Chunks dispatched across tenant channels.
    pub serve_chunks: u64,
    /// Highest overload-ladder level the engine reached (watermark).
    pub serve_ladder_peak: u64,
}

impl MetricsReport {
    /// The all-zero report (what a disabled sink always snapshots to).
    #[must_use]
    pub const fn new() -> MetricsReport {
        MetricsReport {
            wire_bytes_by_tier: [0; TIERS],
            wire_transfers_by_tier: [0; TIERS],
            link_busy_ps_by_tier: [0; TIERS],
            max_link_busy_ps: 0,
            wall_ps: 0,
            barriers: 0,
            barrier_wait_ps: 0,
            stragglers: 0,
            max_straggler_delay_ns: 0,
            exec_steps: 0,
            exec_bytes_injected_by_tier: [0; TIERS],
            exec_bytes_delivered_by_tier: [0; TIERS],
            arena_snapshots: 0,
            arena_grows: 0,
            crc_checks: 0,
            corrupted: 0,
            retries: 0,
            retransmissions: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_dedup_waits: 0,
            par_batches: 0,
            par_tasks: 0,
            comm_time_ps_by_tier: [0; TIERS],
            sync_time_ps: 0,
            mem_time_ps: 0,
            host_time_ps: 0,
            noc_injected_bytes: 0,
            noc_delivered_bytes: 0,
            noc_stall_cycles: 0,
            noc_packets: 0,
            degraded_tier: None,
            transfer_bytes: Histogram::new(),
            recovery_steps: 0,
            recovery_retries: 0,
            recovery_backoff_ps: 0,
            recovery_replans: 0,
            recovery_quarantines: 0,
            recovery_arrivals: 0,
            recovery_checkpoints: 0,
            serve_requests: 0,
            serve_admitted: 0,
            serve_shed: 0,
            serve_deadline_shed: 0,
            serve_quarantine_shed: 0,
            serve_completed: 0,
            serve_host_fallback: 0,
            serve_chunks: 0,
            serve_ladder_peak: 0,
        }
    }

    /// Snapshots that reused the arena allocation instead of growing it.
    #[must_use]
    pub const fn arena_reuses(&self) -> u64 {
        self.arena_snapshots - self.arena_grows
    }

    /// Name of the recorded degradation tier, if a plan was observed.
    #[must_use]
    pub fn degraded_tier_name(&self) -> Option<&'static str> {
        self.degraded_tier.map(ladder_name)
    }

    /// Folds another report into this one: counters add, watermarks
    /// (`wall_ps`, `max_link_busy_ps`, `max_straggler_delay_ns`) take the
    /// max, and the degraded tier keeps the *worst* observed rung.
    pub fn merge(&mut self, other: &MetricsReport) {
        for i in 0..TIERS {
            self.wire_bytes_by_tier[i] += other.wire_bytes_by_tier[i];
            self.wire_transfers_by_tier[i] += other.wire_transfers_by_tier[i];
            self.link_busy_ps_by_tier[i] += other.link_busy_ps_by_tier[i];
            self.exec_bytes_injected_by_tier[i] += other.exec_bytes_injected_by_tier[i];
            self.exec_bytes_delivered_by_tier[i] += other.exec_bytes_delivered_by_tier[i];
            self.comm_time_ps_by_tier[i] += other.comm_time_ps_by_tier[i];
        }
        self.max_link_busy_ps = self.max_link_busy_ps.max(other.max_link_busy_ps);
        self.wall_ps = self.wall_ps.max(other.wall_ps);
        self.barriers += other.barriers;
        self.barrier_wait_ps += other.barrier_wait_ps;
        self.stragglers += other.stragglers;
        self.max_straggler_delay_ns = self
            .max_straggler_delay_ns
            .max(other.max_straggler_delay_ns);
        self.exec_steps += other.exec_steps;
        self.arena_snapshots += other.arena_snapshots;
        self.arena_grows += other.arena_grows;
        self.crc_checks += other.crc_checks;
        self.corrupted += other.corrupted;
        self.retries += other.retries;
        self.retransmissions += other.retransmissions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_dedup_waits += other.cache_dedup_waits;
        self.par_batches += other.par_batches;
        self.par_tasks += other.par_tasks;
        self.sync_time_ps += other.sync_time_ps;
        self.mem_time_ps += other.mem_time_ps;
        self.host_time_ps += other.host_time_ps;
        self.noc_injected_bytes += other.noc_injected_bytes;
        self.noc_delivered_bytes += other.noc_delivered_bytes;
        self.noc_stall_cycles += other.noc_stall_cycles;
        self.noc_packets += other.noc_packets;
        self.degraded_tier = match (self.degraded_tier, other.degraded_tier) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for i in 0..self.transfer_bytes.buckets.len() {
            self.transfer_bytes.buckets[i] += other.transfer_bytes.buckets[i];
        }
        self.recovery_steps += other.recovery_steps;
        self.recovery_retries += other.recovery_retries;
        self.recovery_backoff_ps += other.recovery_backoff_ps;
        self.recovery_replans += other.recovery_replans;
        self.recovery_quarantines += other.recovery_quarantines;
        self.recovery_arrivals += other.recovery_arrivals;
        self.recovery_checkpoints += other.recovery_checkpoints;
        self.serve_requests += other.serve_requests;
        self.serve_admitted += other.serve_admitted;
        self.serve_shed += other.serve_shed;
        self.serve_deadline_shed += other.serve_deadline_shed;
        self.serve_quarantine_shed += other.serve_quarantine_shed;
        self.serve_completed += other.serve_completed;
        self.serve_host_fallback += other.serve_host_fallback;
        self.serve_chunks += other.serve_chunks;
        self.serve_ladder_peak = self.serve_ladder_peak.max(other.serve_ladder_peak);
    }

    /// Deterministic `key,value` CSV of every counter (per-tier counters
    /// expand to one row per tier; histogram buckets to one row each).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        let mut kv = |k: &str, v: u64| out.push_str(&format!("{k},{v}\n"));
        for i in 0..TIERS {
            kv(
                &format!("wire_bytes.{}", tier_name(i)),
                self.wire_bytes_by_tier[i],
            );
        }
        for i in 0..TIERS {
            kv(
                &format!("wire_transfers.{}", tier_name(i)),
                self.wire_transfers_by_tier[i],
            );
        }
        for i in 0..TIERS {
            kv(
                &format!("link_busy_ps.{}", tier_name(i)),
                self.link_busy_ps_by_tier[i],
            );
        }
        kv("max_link_busy_ps", self.max_link_busy_ps);
        kv("wall_ps", self.wall_ps);
        kv("barriers", self.barriers);
        kv("barrier_wait_ps", self.barrier_wait_ps);
        kv("stragglers", self.stragglers);
        kv("max_straggler_delay_ns", self.max_straggler_delay_ns);
        kv("exec_steps", self.exec_steps);
        for i in 0..TIERS {
            kv(
                &format!("exec_bytes_injected.{}", tier_name(i)),
                self.exec_bytes_injected_by_tier[i],
            );
        }
        for i in 0..TIERS {
            kv(
                &format!("exec_bytes_delivered.{}", tier_name(i)),
                self.exec_bytes_delivered_by_tier[i],
            );
        }
        kv("arena_snapshots", self.arena_snapshots);
        kv("arena_grows", self.arena_grows);
        kv("arena_reuses", self.arena_reuses());
        kv("crc_checks", self.crc_checks);
        kv("corrupted", self.corrupted);
        kv("retries", self.retries);
        kv("retransmissions", self.retransmissions);
        kv("cache_hits", self.cache_hits);
        kv("cache_misses", self.cache_misses);
        kv("cache_dedup_waits", self.cache_dedup_waits);
        kv("par_batches", self.par_batches);
        kv("par_tasks", self.par_tasks);
        for i in 0..TIERS {
            kv(
                &format!("comm_time_ps.{}", tier_name(i)),
                self.comm_time_ps_by_tier[i],
            );
        }
        kv("sync_time_ps", self.sync_time_ps);
        kv("mem_time_ps", self.mem_time_ps);
        kv("host_time_ps", self.host_time_ps);
        kv("noc_injected_bytes", self.noc_injected_bytes);
        kv("noc_delivered_bytes", self.noc_delivered_bytes);
        kv("noc_stall_cycles", self.noc_stall_cycles);
        kv("noc_packets", self.noc_packets);
        kv(
            "degraded_tier",
            self.degraded_tier.map_or(u64::MAX, u64::from),
        );
        kv("recovery_steps", self.recovery_steps);
        kv("recovery_retries", self.recovery_retries);
        kv("recovery_backoff_ps", self.recovery_backoff_ps);
        kv("recovery_replans", self.recovery_replans);
        kv("recovery_quarantines", self.recovery_quarantines);
        kv("recovery_arrivals", self.recovery_arrivals);
        kv("recovery_checkpoints", self.recovery_checkpoints);
        kv("serve_requests", self.serve_requests);
        kv("serve_admitted", self.serve_admitted);
        kv("serve_shed", self.serve_shed);
        kv("serve_deadline_shed", self.serve_deadline_shed);
        kv("serve_quarantine_shed", self.serve_quarantine_shed);
        kv("serve_completed", self.serve_completed);
        kv("serve_host_fallback", self.serve_host_fallback);
        kv("serve_chunks", self.serve_chunks);
        kv("serve_ladder_peak", self.serve_ladder_peak);
        for (i, count) in self.transfer_bytes.buckets.iter().enumerate() {
            kv(
                &format!("transfer_bytes_ge_{}", Histogram::bucket_floor(i)),
                *count,
            );
        }
        out
    }

    /// Compact human-readable summary (non-zero counters only).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("metrics report\n");
        for line in self.to_csv().lines().skip(1) {
            let Some((k, v)) = line.split_once(',') else {
                continue;
            };
            if v != "0" && v != u64::MAX.to_string() {
                out.push_str(&format!("  {k:<34} {v}\n"));
            }
        }
        if let Some(name) = self.degraded_tier_name() {
            out.push_str(&format!("  {:<34} {name}\n", "degraded_tier_name"));
        }
        out
    }
}

impl Default for MetricsReport {
    fn default() -> MetricsReport {
        MetricsReport::new()
    }
}

/// A metrics sink: either enabled (a `Mutex`-guarded [`MetricsReport`])
/// or the `const`-constructible no-op sink.
#[derive(Debug)]
pub struct Metrics {
    enabled: bool,
    inner: Mutex<MetricsReport>,
}

impl Metrics {
    /// The no-op sink: records nothing, costs one branch per call site.
    #[must_use]
    pub const fn disabled() -> Metrics {
        Metrics {
            enabled: false,
            inner: Mutex::new(MetricsReport::new()),
        }
    }

    /// An enabled sink starting from the all-zero report.
    #[must_use]
    pub fn enabled() -> Metrics {
        Metrics {
            enabled: true,
            inner: Mutex::new(MetricsReport::new()),
        }
    }

    /// Whether this sink records anything.
    #[inline]
    #[must_use]
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn with(&self, f: impl FnOnce(&mut MetricsReport)) {
        if !self.enabled {
            return;
        }
        match self.inner.lock() {
            Ok(mut r) => f(&mut r),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }

    /// Copies out the current report (all-zero on a disabled sink).
    #[must_use]
    pub fn snapshot(&self) -> MetricsReport {
        match self.inner.lock() {
            Ok(r) => *r,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Resets the report to all-zero.
    pub fn reset(&self) {
        self.with(|r| *r = MetricsReport::new());
    }

    /// Folds `other` into this sink's report (see [`MetricsReport::merge`]).
    pub fn absorb(&self, other: &MetricsReport) {
        self.with(|r| r.merge(other));
    }

    /// One timeline transfer window of `bytes` on `tier`.
    pub fn wire_transfer(&self, tier: usize, bytes: u64) {
        self.with(|r| {
            r.wire_bytes_by_tier[tier] += bytes;
            r.wire_transfers_by_tier[tier] += 1;
            r.transfer_bytes.record(bytes);
        });
    }

    /// Adds `ps` of per-link serialization busy time on `tier`.
    pub fn link_busy(&self, tier: usize, ps: u64) {
        self.with(|r| r.link_busy_ps_by_tier[tier] += ps);
    }

    /// Folds the busiest-link watermark.
    pub fn max_link_busy(&self, ps: u64) {
        self.with(|r| r.max_link_busy_ps = r.max_link_busy_ps.max(ps));
    }

    /// Folds the end-to-end completion watermark.
    pub fn wall(&self, ps: u64) {
        self.with(|r| r.wall_ps = r.wall_ps.max(ps));
    }

    /// One barrier costing `ps`.
    pub fn barrier(&self, ps: u64) {
        self.with(|r| {
            r.barriers += 1;
            r.barrier_wait_ps += ps;
        });
    }

    /// One straggler delaying by `delay_ns`.
    pub fn straggler(&self, delay_ns: u64) {
        self.with(|r| {
            r.stragglers += 1;
            r.max_straggler_delay_ns = r.max_straggler_delay_ns.max(delay_ns);
        });
    }

    /// One executed step: its staging snapshot, whether the arena grew,
    /// and the per-tier injected/delivered byte observations.
    pub fn exec_step(&self, tier: usize, injected: u64, delivered: u64, grew: bool) {
        self.with(|r| {
            r.exec_steps += 1;
            r.arena_snapshots += 1;
            r.arena_grows += u64::from(grew);
            r.exec_bytes_injected_by_tier[tier] += injected;
            r.exec_bytes_delivered_by_tier[tier] += delivered;
        });
    }

    /// Fault-layer counters from one executor run.
    pub fn fault_counts(&self, crc_checks: u64, corrupted: u64, retries: u64) {
        self.with(|r| {
            r.crc_checks += crc_checks;
            r.corrupted += corrupted;
            r.retries += retries;
        });
    }

    /// `n` NoC packet retransmissions.
    pub fn retransmissions(&self, n: u64) {
        self.with(|r| r.retransmissions += n);
    }

    /// One schedule-cache hit.
    pub fn cache_hit(&self) {
        self.with(|r| r.cache_hits += 1);
    }

    /// One schedule-cache miss.
    pub fn cache_miss(&self) {
        self.with(|r| r.cache_misses += 1);
    }

    /// One wait on another worker's in-flight build.
    pub fn cache_dedup_wait(&self) {
        self.with(|r| r.cache_dedup_waits += 1);
    }

    /// One `par` fan-out of `tasks` items.
    pub fn par_batch(&self, tasks: u64) {
        self.with(|r| {
            r.par_batches += 1;
            r.par_tasks += tasks;
        });
    }

    /// Adds modeled per-tier communication time (ps) from a workload.
    pub fn comm_time(&self, tier: usize, ps: u64) {
        self.with(|r| r.comm_time_ps_by_tier[tier] += ps);
    }

    /// Adds modeled sync / local-memory / host time (ps) from a workload.
    pub fn program_time(&self, sync_ps: u64, mem_ps: u64, host_ps: u64) {
        self.with(|r| {
            r.sync_time_ps += sync_ps;
            r.mem_time_ps += mem_ps;
            r.host_time_ps += host_ps;
        });
    }

    /// NoC totals from one cycle-accurate run.
    pub fn noc(&self, injected: u64, delivered: u64, stalls: u64, packets: u64) {
        self.with(|r| {
            r.noc_injected_bytes += injected;
            r.noc_delivered_bytes += delivered;
            r.noc_stall_cycles += stalls;
            r.noc_packets += packets;
        });
    }

    /// Records the degradation-ladder tier of a planned run (keeps the
    /// worst rung across multiple plans).
    pub fn degraded_tier(&self, tier: u8) {
        self.with(|r| {
            r.degraded_tier = Some(r.degraded_tier.map_or(tier, |t| t.max(tier)));
        });
    }

    /// One recovery-manager step completion (also a checkpoint).
    pub fn recovery_step(&self) {
        self.with(|r| {
            r.recovery_steps += 1;
            r.recovery_checkpoints += 1;
        });
    }

    /// One step-level recovery retry that waited `backoff_ps`.
    pub fn recovery_retry(&self, backoff_ps: u64) {
        self.with(|r| {
            r.recovery_retries += 1;
            r.recovery_backoff_ps += backoff_ps;
        });
    }

    /// One mid-run replan.
    pub fn recovery_replan(&self) {
        self.with(|r| r.recovery_replans += 1);
    }

    /// One health-tracker quarantine promotion.
    pub fn recovery_quarantine(&self) {
        self.with(|r| r.recovery_quarantines += 1);
    }

    /// `n` timed permanent-fault arrivals absorbed at a step boundary.
    pub fn recovery_arrivals(&self, n: u64) {
        self.with(|r| r.recovery_arrivals += n);
    }

    /// One request reaching the serving engine's admission stage.
    pub fn serve_request(&self) {
        self.with(|r| r.serve_requests += 1);
    }

    /// One request admitted into its tenant queue.
    pub fn serve_admit(&self) {
        self.with(|r| r.serve_admitted += 1);
    }

    /// One request shed; flags mark the deadline / quarantine classes.
    pub fn serve_shed(&self, deadline: bool, quarantine: bool) {
        self.with(|r| {
            r.serve_shed += 1;
            if deadline {
                r.serve_deadline_shed += 1;
            }
            if quarantine {
                r.serve_quarantine_shed += 1;
            }
        });
    }

    /// One request served end-to-end over `chunks` dispatched chunks;
    /// `host_fallback` marks tier-3 service.
    pub fn serve_complete(&self, chunks: u64, host_fallback: bool) {
        self.with(|r| {
            r.serve_completed += 1;
            r.serve_chunks += chunks;
            if host_fallback {
                r.serve_host_fallback += 1;
            }
        });
    }

    /// Folds an overload-ladder level into the peak watermark.
    pub fn serve_ladder(&self, level: u64) {
        self.with(|r| r.serve_ladder_peak = r.serve_ladder_peak.max(level));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_stays_all_zero() {
        static M: Metrics = Metrics::disabled();
        M.wire_transfer(1, 4096);
        M.barrier(10);
        M.cache_hit();
        M.degraded_tier(3);
        M.wall(99);
        assert!(!M.is_enabled());
        assert_eq!(M.snapshot(), MetricsReport::new());
    }

    #[test]
    fn counters_accumulate_and_watermarks_fold_max() {
        let m = Metrics::enabled();
        m.wire_transfer(1, 100);
        m.wire_transfer(1, 50);
        m.wire_transfer(3, 7);
        m.wall(10);
        m.wall(5);
        m.max_link_busy(4);
        m.max_link_busy(9);
        m.straggler(100);
        m.straggler(40);
        let r = m.snapshot();
        assert_eq!(r.wire_bytes_by_tier, [0, 150, 0, 7]);
        assert_eq!(r.wire_transfers_by_tier, [0, 2, 0, 1]);
        assert_eq!(r.wall_ps, 10);
        assert_eq!(r.max_link_busy_ps, 9);
        assert_eq!(r.stragglers, 2);
        assert_eq!(r.max_straggler_delay_ns, 100);
        assert_eq!(r.transfer_bytes.count(), 3);
    }

    #[test]
    fn merge_matches_recording_into_one_sink() {
        let a = Metrics::enabled();
        let b = Metrics::enabled();
        let joint = Metrics::enabled();
        for (m, tier, bytes) in [(&a, 1usize, 64u64), (&b, 2, 128)] {
            m.wire_transfer(tier, bytes);
            joint.wire_transfer(tier, bytes);
        }
        a.barrier(5);
        joint.barrier(5);
        b.degraded_tier(2);
        joint.degraded_tier(2);
        a.degraded_tier(1);
        joint.degraded_tier(1);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, joint.snapshot());
        assert_eq!(merged.degraded_tier, Some(2), "worst rung wins");
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.buckets[0], 2, "0 and 1 share the first bucket");
        assert_eq!(h.buckets[1], 2, "2 and 3");
        assert_eq!(h.buckets[2], 1, "4");
        assert_eq!(h.buckets[9], 1, "1023");
        assert_eq!(h.buckets[10], 1, "1024");
        assert_eq!(h.buckets[16], 1, "overflow");
        assert_eq!(h.count(), 8);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(10), 1024);
    }

    #[test]
    fn csv_and_render_are_deterministic_and_complete() {
        let m = Metrics::enabled();
        m.wire_transfer(2, 4096);
        m.exec_step(2, 4096, 4096, true);
        m.fault_counts(10, 2, 2);
        m.degraded_tier(1);
        let r = m.snapshot();
        assert_eq!(r.to_csv(), r.to_csv());
        let csv = r.to_csv();
        assert!(csv.contains("wire_bytes.inter-chip,4096"));
        assert!(csv.contains("exec_bytes_injected.inter-chip,4096"));
        assert!(csv.contains("arena_reuses,0"));
        assert!(csv.contains("degraded_tier,1"));
        let pretty = r.render();
        assert!(pretty.contains("degraded_tier_name"));
        assert!(pretty.contains("repaired"));
        assert!(!pretty.contains("noc_packets"), "zero rows are hidden");
    }

    #[test]
    fn recovery_counters_accumulate_and_merge() {
        let m = Metrics::enabled();
        m.recovery_step();
        m.recovery_step();
        m.recovery_retry(100);
        m.recovery_retry(200);
        m.recovery_replan();
        m.recovery_quarantine();
        m.recovery_arrivals(3);
        let r = m.snapshot();
        assert_eq!(r.recovery_steps, 2);
        assert_eq!(r.recovery_checkpoints, 2);
        assert_eq!(r.recovery_retries, 2);
        assert_eq!(r.recovery_backoff_ps, 300);
        assert_eq!(r.recovery_replans, 1);
        assert_eq!(r.recovery_quarantines, 1);
        assert_eq!(r.recovery_arrivals, 3);
        let mut merged = r;
        merged.merge(&r);
        assert_eq!(merged.recovery_steps, 4);
        assert_eq!(merged.recovery_backoff_ps, 600);
        let csv = r.to_csv();
        assert!(csv.contains("recovery_steps,2"));
        assert!(csv.contains("recovery_backoff_ps,300"));
    }

    #[test]
    fn tier_and_ladder_names_are_stable() {
        assert_eq!(tier_name(0), "local");
        assert_eq!(tier_name(1), "inter-bank");
        assert_eq!(tier_name(2), "inter-chip");
        assert_eq!(tier_name(3), "inter-rank");
        assert_eq!(ladder_name(0), "full");
        assert_eq!(ladder_name(3), "host-fallback");
    }
}
