//! Small statistics helpers used by the simulators and the bench harness.

use std::fmt;

use crate::SimTime;

/// Online accumulator for a stream of `f64` samples (count, mean, min, max).
///
/// # Example
///
/// ```
/// use pim_sim::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.count(), 3);
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.min(), Some(1.0));
/// assert_eq!(acc.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for Accumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.4} min={:.4} max={:.4}",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// Fixed-bucket histogram of [`SimTime`] samples (e.g., packet latencies).
///
/// Buckets are uniform in `bucket_width`; samples beyond the last bucket land
/// in an overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    bucket_width: SimTime,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum_ps: u128,
}

impl LatencyHistogram {
    /// Creates a histogram with `buckets` uniform buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    #[must_use]
    pub fn new(bucket_width: SimTime, buckets: usize) -> Self {
        assert!(bucket_width > SimTime::ZERO, "zero bucket width");
        assert!(buckets > 0, "zero bucket count");
        LatencyHistogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum_ps: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.total += 1;
        self.sum_ps += latency.as_ps() as u128;
        let idx = (latency.as_ps() / self.bucket_width.as_ps()) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean latency; zero when empty.
    #[must_use]
    pub fn mean(&self) -> SimTime {
        if self.total == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ps(u64::try_from(self.sum_ps / self.total as u128).unwrap_or(u64::MAX))
        }
    }

    /// Count in bucket `i` (buckets beyond the configured range return the
    /// overflow count only for `i == bucket_count()`).
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        if i < self.buckets.len() {
            self.buckets[i]
        } else {
            self.overflow
        }
    }

    /// Number of regular (non-overflow) buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate `p`-quantile (0.0..=1.0) using bucket upper bounds.
    /// Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&p), "quantile out of range: {p}");
        if self.total == 0 {
            return SimTime::ZERO;
        }
        let target = (p * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_width * (i as u64 + 1);
            }
        }
        SimTime::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basics() {
        let acc: Accumulator = [4.0, 8.0].into_iter().collect();
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.sum(), 12.0);
        assert_eq!(acc.mean(), 6.0);
        assert_eq!(acc.min(), Some(4.0));
        assert_eq!(acc.max(), Some(8.0));
    }

    #[test]
    fn empty_accumulator_is_well_behaved() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
        assert_eq!(acc.to_string(), "n=0");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = LatencyHistogram::new(SimTime::from_ns(10), 4);
        h.record(SimTime::from_ns(5)); // bucket 0
        h.record(SimTime::from_ns(15)); // bucket 1
        h.record(SimTime::from_ns(39)); // bucket 3
        h.record(SimTime::from_ns(100)); // overflow
        assert_eq!(h.total(), 4);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(4), 1); // overflow
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = LatencyHistogram::new(SimTime::from_ns(10), 10);
        for ns in [10u64, 20, 30, 40] {
            h.record(SimTime::from_ns(ns));
        }
        assert_eq!(h.mean(), SimTime::from_ns(25));
        assert_eq!(h.quantile(0.5), SimTime::from_ns(30));
        assert_eq!(h.quantile(1.0), SimTime::from_ns(50));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = LatencyHistogram::new(SimTime::from_ns(1), 1);
        assert_eq!(h.quantile(0.99), SimTime::ZERO);
        assert_eq!(h.mean(), SimTime::ZERO);
    }
}
