//! Property tests for the unit types — the arithmetic everything else
//! stands on. Each property is exercised over a seeded sweep of random
//! inputs drawn from [`SimRng`], so failures replay exactly.

use pim_sim::{Bandwidth, Bytes, Cycles, Frequency, SimRng, SimTime};

const CASES: usize = 256;

#[test]
fn transfer_time_is_monotone_in_bytes() {
    let mut rng = SimRng::seed_from_u64(0x0111);
    for _ in 0..CASES {
        let bw_mbps = rng.gen_range(1.0f64..100_000.0);
        let a = rng.gen_range(0u64..1 << 40);
        let b = rng.gen_range(0u64..1 << 40);
        let bw = Bandwidth::mbps(bw_mbps);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(bw.transfer_time(Bytes::new(lo)) <= bw.transfer_time(Bytes::new(hi)));
    }
}

#[test]
fn transfer_time_is_antitone_in_bandwidth() {
    let mut rng = SimRng::seed_from_u64(0x0112);
    for _ in 0..CASES {
        let bytes = rng.gen_range(1u64..1 << 40);
        let a_mbps = rng.gen_range(1.0f64..100_000.0);
        let b_mbps = rng.gen_range(1.0f64..100_000.0);
        let (slow, fast) = if a_mbps <= b_mbps {
            (a_mbps, b_mbps)
        } else {
            (b_mbps, a_mbps)
        };
        let t_slow = Bandwidth::mbps(slow).transfer_time(Bytes::new(bytes));
        let t_fast = Bandwidth::mbps(fast).transfer_time(Bytes::new(bytes));
        assert!(t_fast <= t_slow);
    }
}

#[test]
fn transfer_time_never_undershoots_the_exact_value() {
    let mut rng = SimRng::seed_from_u64(0x0113);
    for _ in 0..CASES {
        let bytes = rng.gen_range(1u64..1 << 40);
        let bps = rng.gen_range(1u64..1 << 40);
        // ceil rounding: time * bw >= bytes, and the undershoot of one less
        // picosecond would be too small.
        let bw = Bandwidth::bytes_per_sec(bps);
        let t = bw.transfer_time(Bytes::new(bytes));
        let moved = t.as_ps() as u128 * bps as u128 / 1_000_000_000_000u128;
        assert!(moved >= bytes as u128 || t.as_ps() == 0);
    }
}

#[test]
fn split_then_aggregate_never_gains_bandwidth() {
    let mut rng = SimRng::seed_from_u64(0x0114);
    for _ in 0..CASES {
        let bps = rng.gen_range(1u64..1 << 50);
        let n = rng.gen_range(1u64..1000);
        let bw = Bandwidth::bytes_per_sec(bps);
        assert!(bw.split(n).aggregate(n).as_bytes_per_sec() <= bps);
    }
}

#[test]
fn cycles_roundtrip_through_time() {
    let mut rng = SimRng::seed_from_u64(0x0115);
    for _ in 0..CASES {
        let mhz = rng.gen_range(1u64..10_000);
        let cycles = rng.gen_range(0u64..1 << 40);
        let f = Frequency::mhz(mhz);
        let c = Cycles::new(cycles);
        assert_eq!(f.time_to_cycles(f.cycles_to_time(c)), c);
    }
}

#[test]
fn simtime_addition_is_commutative_and_associative() {
    let mut rng = SimRng::seed_from_u64(0x0116);
    for _ in 0..CASES {
        let a = rng.gen_range(0u64..1 << 50);
        let b = rng.gen_range(0u64..1 << 50);
        let c = rng.gen_range(0u64..1 << 50);
        let (x, y, z) = (
            SimTime::from_ps(a),
            SimTime::from_ps(b),
            SimTime::from_ps(c),
        );
        assert_eq!(x + y, y + x);
        assert_eq!((x + y) + z, x + (y + z));
    }
}

#[test]
fn ratio_is_inverse_consistent() {
    let mut rng = SimRng::seed_from_u64(0x0117);
    for _ in 0..CASES {
        let a = rng.gen_range(1u64..1 << 50);
        let b = rng.gen_range(1u64..1 << 50);
        let (x, y) = (SimTime::from_ps(a), SimTime::from_ps(b));
        let r = x.ratio(y) * y.ratio(x);
        assert!((r - 1.0).abs() < 1e-9);
    }
}

#[test]
fn div_ceil_covers() {
    let mut rng = SimRng::seed_from_u64(0x0118);
    for _ in 0..CASES {
        let bytes = rng.gen_range(1u64..1 << 50);
        let chunk = rng.gen_range(1u64..1 << 20);
        let n = Bytes::new(bytes).div_ceil(Bytes::new(chunk));
        assert!(n * chunk >= bytes);
        assert!((n - 1) * chunk < bytes);
    }
}

#[test]
fn engine_event_order_is_total_under_interleaving() {
    // Schedule events from inside events; the dispatch order must follow
    // (time, insertion) no matter how they were created.
    use pim_sim::Engine;
    let mut engine: Engine<Vec<(u64, u32)>> = Engine::new();
    for i in 0..8u32 {
        engine.schedule(
            SimTime::from_ns(10),
            move |log: &mut Vec<(u64, u32)>, eng| {
                log.push((10, i));
                eng.schedule_in(SimTime::from_ns(u64::from(8 - i)), move |log, _| {
                    log.push((10 + u64::from(8 - i), i));
                });
            },
        );
    }
    let mut log = Vec::new();
    engine.run(&mut log);
    // First wave in insertion order.
    assert_eq!(
        log[..8].iter().map(|&(_, i)| i).collect::<Vec<_>>(),
        (0..8).collect::<Vec<_>>()
    );
    // Second wave in time order (reverse insertion, since delay = 8 - i).
    assert_eq!(
        log[8..].iter().map(|&(_, i)| i).collect::<Vec<_>>(),
        (0..8).rev().collect::<Vec<_>>()
    );
    // Times are globally non-decreasing.
    assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
}
