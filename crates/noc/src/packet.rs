//! Traffic generation: a [`pimnet::schedule::CommSchedule`] becomes a list
//! of dependent packets.
//!
//! Each non-local transfer becomes one packet per destination (a dynamic
//! network has no multicast, so a bus broadcast is replayed as unicasts —
//! one of the costs credit-based flow control pays against PIMnet's
//! switch-configured multicast). A packet carries the *collective
//! algorithm's* data dependencies: a node cannot forward a ring chunk it
//! has not finished receiving, so the packet for step `s` depends on the
//! node's packets of step `s-1` (and on all its packets of earlier phases).

use pim_arch::geometry::DpuId;
use pimnet::schedule::CommSchedule;
use pimnet::topology::Resource;

/// One unicast message in the cycle-level network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Dense packet id (index into the packet list).
    pub id: usize,
    /// Sending node.
    pub src: DpuId,
    /// Receiving node.
    pub dst: DpuId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Links traversed, in order.
    pub path: Vec<Resource>,
    /// Position in the collective: (phase index, step index).
    pub stage: (usize, usize),
    /// Packet ids that must be *delivered* before this packet may inject
    /// (the sender's own sends/receives of the previous step/phase).
    pub deps: Vec<usize>,
}

/// Expands a schedule into dependent unicast packets.
///
/// Local (resource-less) transfers move no network bytes and are skipped;
/// dependencies skip over them too.
#[must_use]
pub fn packets_from_schedule(schedule: &CommSchedule) -> Vec<Packet> {
    let mut packets: Vec<Packet> = Vec::new();
    // Per node: packet ids of the most recent stage the node participated in.
    let nodes = schedule.geometry.total_dpus() as usize;
    let mut last_stage: Vec<Vec<usize>> = vec![Vec::new(); nodes];

    for (pi, phase) in schedule.phases.iter().enumerate() {
        for (si, step) in phase.steps.iter().enumerate() {
            let mut this_stage: Vec<Vec<usize>> = vec![Vec::new(); nodes];
            for t in &step.transfers {
                if t.is_local() {
                    continue;
                }
                let bytes = t.bytes(schedule.elem_bytes).as_u64();
                for &dst in &t.dsts {
                    let id = packets.len();
                    // The sender's and receiver's packets from the previous
                    // stage gate this one (chunk hand-off dependency).
                    let mut deps = last_stage[t.src.index()].clone();
                    deps.extend_from_slice(&last_stage[dst.index()]);
                    deps.sort_unstable();
                    deps.dedup();
                    packets.push(Packet {
                        id,
                        src: t.src,
                        dst,
                        bytes,
                        path: unicast_path(&t.resources, dst, schedule),
                        stage: (pi, si),
                        deps,
                    });
                    this_stage[t.src.index()].push(id);
                    this_stage[dst.index()].push(id);
                }
            }
            for (node, ids) in this_stage.into_iter().enumerate() {
                if !ids.is_empty() {
                    last_stage[node] = ids;
                }
            }
        }
    }
    packets
}

/// For a (possibly multicast) resource path, the linear chain of hops one
/// unicast copy to `dst` traverses: everything except the other
/// destinations' receive channels.
fn unicast_path(resources: &[Resource], dst: DpuId, schedule: &CommSchedule) -> Vec<Resource> {
    let dst_chip = pimnet::topology::ChipLoc::of(schedule.geometry.coord(dst));
    resources
        .iter()
        .filter(|r| match r {
            Resource::ChipRx { chip } => *chip == dst_chip,
            _ => true,
        })
        .copied()
        .collect()
}

/// Expands a packet list with CRC-retry retransmissions under a fault
/// scenario.
///
/// A packet whose attempt `k` the injector corrupts is re-sent: the retry
/// is a fresh packet over the same path that can only inject once the
/// corrupted attempt finished occupying the wire (a dependency on the
/// previous attempt), so retries consume real link time in the credit
/// simulation. Everything that depended on the original packet is
/// repointed to the *final* attempt — downstream steps wait for clean
/// data, exactly like the functional executor's CRC gate.
///
/// The injector's decision coordinates are `(phase, step, packet id)`, so
/// the expansion is independent of iteration order and identical across
/// runs for a seed. With an inactive injector the input list is returned
/// unchanged (zero overhead).
///
/// # Errors
///
/// [`pimnet::PimnetError::TransferFailed`] when a packet stays corrupted
/// through its whole retry budget.
pub fn inject_retransmissions(
    packets: &[Packet],
    injector: &pim_faults::FaultInjector,
) -> Result<Vec<Packet>, pimnet::PimnetError> {
    if !injector.is_active() {
        return Ok(packets.to_vec());
    }
    let mut out: Vec<Packet> = Vec::with_capacity(packets.len());
    // Original id -> id of its final (clean) attempt.
    let mut final_attempt: Vec<usize> = Vec::with_capacity(packets.len());
    for p in packets {
        let corrupted = injector
            .attempts_before_success(p.stage.0 as u64, p.stage.1 as u64, p.id as u64)
            .ok_or(pimnet::PimnetError::TransferFailed {
                phase: p.stage.0,
                step: p.stage.1,
                transfer: p.id,
                attempts: injector.config().max_retries + 1,
            })?;
        // Dependencies were expressed against original ids; repoint them
        // at the dependees' final attempts (all earlier in `out`).
        let deps: Vec<usize> = p.deps.iter().map(|&d| final_attempt[d]).collect();
        let mut last = out.len();
        out.push(Packet {
            id: last,
            deps,
            ..p.clone()
        });
        for _ in 0..corrupted {
            let id = out.len();
            out.push(Packet {
                id,
                deps: vec![last],
                ..p.clone()
            });
            last = id;
        }
        final_attempt.push(last);
    }
    Ok(out)
}

/// Total bytes injected by a packet list.
#[must_use]
pub fn total_bytes(packets: &[Packet]) -> u64 {
    packets.iter().map(|p| p.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::geometry::PimGeometry;
    use pimnet::collective::CollectiveKind;

    fn schedule(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    #[test]
    fn broadcasts_expand_to_unicasts() {
        // 256 DPUs AllReduce: the inter-rank phase broadcasts to 3 ranks,
        // so the packet count there is 3x the transfer count.
        let s = schedule(CollectiveKind::AllReduce, 256, 4096);
        let packets = packets_from_schedule(&s);
        let rank_packets = packets
            .iter()
            .filter(|p| p.path.iter().any(|r| matches!(r, Resource::RankBus { .. })))
            .count();
        // 256 banks x 2 halves x 3 destinations.
        assert_eq!(rank_packets, 256 * 2 * 3);
        // Each bus packet's path is a clean 3-hop chain (tx, bus, rx).
        for p in packets
            .iter()
            .filter(|p| p.path.iter().any(|r| matches!(r, Resource::RankBus { .. })))
        {
            assert_eq!(p.path.len(), 3);
        }
    }

    #[test]
    fn ring_steps_chain_dependencies() {
        let s = schedule(CollectiveKind::AllReduce, 8, 64);
        let packets = packets_from_schedule(&s);
        // Step 0 packets have no deps; later steps depend on earlier ones.
        let first: Vec<_> = packets.iter().filter(|p| p.stage == (0, 0)).collect();
        assert!(first.iter().all(|p| p.deps.is_empty()));
        let second: Vec<_> = packets.iter().filter(|p| p.stage == (0, 1)).collect();
        assert!(!second.is_empty());
        assert!(second.iter().all(|p| !p.deps.is_empty()));
    }

    #[test]
    fn alltoall_packets_have_no_cross_step_data_deps_within_a_node_pairing() {
        // All-to-All chunks are independent, but our conservative model
        // still chains a node's steps (it cannot inject two chunks at once
        // through one ring port anyway). Just verify packet integrity.
        let s = schedule(CollectiveKind::AllToAll, 16, 64);
        let packets = packets_from_schedule(&s);
        assert!(!packets.is_empty());
        for p in &packets {
            assert!(p.bytes > 0);
            assert!(!p.path.is_empty());
            assert_ne!(p.src, p.dst);
            for &d in &p.deps {
                assert!(d < p.id, "dependency on a later packet");
            }
        }
    }

    #[test]
    fn retransmission_expansion_is_deterministic_and_chains_attempts() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = schedule(CollectiveKind::AllReduce, 8, 64);
        let packets = packets_from_schedule(&s);
        let inj = FaultInjector::new(
            FaultConfig {
                transient_ber: 0.3,
                max_retries: 16,
                ..FaultConfig::none()
            }
            .with_seed(5),
        );
        let a = inject_retransmissions(&packets, &inj).unwrap();
        let b = inject_retransmissions(&packets, &inj).unwrap();
        assert_eq!(a, b, "same seed must expand identically");
        assert!(a.len() > packets.len(), "BER 0.3 should add retries");
        // Ids are dense and deps point backwards.
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.id, i);
            assert!(p.deps.iter().all(|&d| d < i));
        }
        // A retry differs from its predecessor only in id and deps.
        let retries = a.len() - packets.len();
        assert!(retries > 0);
        // Total wire traffic grows by exactly the retry packets' bytes.
        assert!(total_bytes(&a) > total_bytes(&packets));
    }

    #[test]
    fn inactive_injector_returns_the_original_list() {
        use pim_faults::FaultInjector;
        let s = schedule(CollectiveKind::AllReduce, 8, 64);
        let packets = packets_from_schedule(&s);
        let out = inject_retransmissions(&packets, &FaultInjector::none()).unwrap();
        assert_eq!(out, packets);
    }

    #[test]
    fn hopeless_error_rate_is_a_typed_failure() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = schedule(CollectiveKind::AllReduce, 8, 64);
        let packets = packets_from_schedule(&s);
        let inj = FaultInjector::new(FaultConfig {
            transient_ber: 1.0,
            max_retries: 2,
            ..FaultConfig::none()
        });
        assert!(matches!(
            inject_retransmissions(&packets, &inj),
            Err(pimnet::PimnetError::TransferFailed { .. })
        ));
    }

    #[test]
    fn total_bytes_matches_schedule_wire_bytes_for_unicast_only() {
        // For a single-rank geometry there are no broadcasts, so packet
        // bytes equal schedule wire bytes exactly.
        let s = schedule(CollectiveKind::AllReduce, 64, 512);
        let packets = packets_from_schedule(&s);
        assert_eq!(total_bytes(&packets), s.total_wire_bytes().as_u64());
    }
}
