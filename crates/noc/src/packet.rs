//! Traffic generation: a [`pimnet::schedule::CommSchedule`] becomes a list
//! of dependent packets.
//!
//! Each non-local transfer becomes one packet per destination (a dynamic
//! network has no multicast, so a bus broadcast is replayed as unicasts —
//! one of the costs credit-based flow control pays against PIMnet's
//! switch-configured multicast). A packet carries the *collective
//! algorithm's* data dependencies: a node cannot forward a ring chunk it
//! has not finished receiving, so the packet for step `s` depends on the
//! node's packets of step `s-1` (and on all its packets of earlier phases).

use pim_arch::geometry::DpuId;
use pimnet::schedule::CommSchedule;
use pimnet::topology::Resource;

/// One unicast message in the cycle-level network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Dense packet id (index into the packet list).
    pub id: usize,
    /// Sending node.
    pub src: DpuId,
    /// Receiving node.
    pub dst: DpuId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Links traversed, in order.
    pub path: Vec<Resource>,
    /// Position in the collective: (phase index, step index).
    pub stage: (usize, usize),
    /// Packet ids that must be *delivered* before this packet may inject
    /// (the sender's own sends/receives of the previous step/phase).
    pub deps: Vec<usize>,
}

/// Expands a schedule into dependent unicast packets.
///
/// Local (resource-less) transfers move no network bytes and are skipped;
/// dependencies skip over them too.
#[must_use]
pub fn packets_from_schedule(schedule: &CommSchedule) -> Vec<Packet> {
    let mut packets: Vec<Packet> = Vec::new();
    // Per node: packet ids of the most recent stage the node participated in.
    let nodes = schedule.geometry.total_dpus() as usize;
    let mut last_stage: Vec<Vec<usize>> = vec![Vec::new(); nodes];

    for (pi, phase) in schedule.phases.iter().enumerate() {
        for (si, step) in phase.steps.iter().enumerate() {
            let mut this_stage: Vec<Vec<usize>> = vec![Vec::new(); nodes];
            for t in &step.transfers {
                if t.is_local() {
                    continue;
                }
                let bytes = t.bytes(schedule.elem_bytes).as_u64();
                for &dst in &t.dsts {
                    let id = packets.len();
                    // The sender's and receiver's packets from the previous
                    // stage gate this one (chunk hand-off dependency).
                    let mut deps = last_stage[t.src.index()].clone();
                    deps.extend_from_slice(&last_stage[dst.index()]);
                    deps.sort_unstable();
                    deps.dedup();
                    packets.push(Packet {
                        id,
                        src: t.src,
                        dst,
                        bytes,
                        path: unicast_path(&t.resources, dst, schedule),
                        stage: (pi, si),
                        deps,
                    });
                    this_stage[t.src.index()].push(id);
                    this_stage[dst.index()].push(id);
                }
            }
            for (node, ids) in this_stage.into_iter().enumerate() {
                if !ids.is_empty() {
                    last_stage[node] = ids;
                }
            }
        }
    }
    packets
}

/// For a (possibly multicast) resource path, the linear chain of hops one
/// unicast copy to `dst` traverses: everything except the other
/// destinations' receive channels.
fn unicast_path(resources: &[Resource], dst: DpuId, schedule: &CommSchedule) -> Vec<Resource> {
    let dst_chip = pimnet::topology::ChipLoc::of(schedule.geometry.coord(dst));
    resources
        .iter()
        .filter(|r| match r {
            Resource::ChipRx { chip } => *chip == dst_chip,
            _ => true,
        })
        .copied()
        .collect()
}

/// Total bytes injected by a packet list.
#[must_use]
pub fn total_bytes(packets: &[Packet]) -> u64 {
    packets.iter().map(|p| p.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::geometry::PimGeometry;
    use pimnet::collective::CollectiveKind;

    fn schedule(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    #[test]
    fn broadcasts_expand_to_unicasts() {
        // 256 DPUs AllReduce: the inter-rank phase broadcasts to 3 ranks,
        // so the packet count there is 3x the transfer count.
        let s = schedule(CollectiveKind::AllReduce, 256, 4096);
        let packets = packets_from_schedule(&s);
        let rank_packets = packets
            .iter()
            .filter(|p| {
                p.path
                    .iter()
                    .any(|r| matches!(r, Resource::RankBus { .. }))
            })
            .count();
        // 256 banks x 2 halves x 3 destinations.
        assert_eq!(rank_packets, 256 * 2 * 3);
        // Each bus packet's path is a clean 3-hop chain (tx, bus, rx).
        for p in packets.iter().filter(|p| {
            p.path
                .iter()
                .any(|r| matches!(r, Resource::RankBus { .. }))
        }) {
            assert_eq!(p.path.len(), 3);
        }
    }

    #[test]
    fn ring_steps_chain_dependencies() {
        let s = schedule(CollectiveKind::AllReduce, 8, 64);
        let packets = packets_from_schedule(&s);
        // Step 0 packets have no deps; later steps depend on earlier ones.
        let first: Vec<_> = packets.iter().filter(|p| p.stage == (0, 0)).collect();
        assert!(first.iter().all(|p| p.deps.is_empty()));
        let second: Vec<_> = packets.iter().filter(|p| p.stage == (0, 1)).collect();
        assert!(!second.is_empty());
        assert!(second.iter().all(|p| !p.deps.is_empty()));
    }

    #[test]
    fn alltoall_packets_have_no_cross_step_data_deps_within_a_node_pairing() {
        // All-to-All chunks are independent, but our conservative model
        // still chains a node's steps (it cannot inject two chunks at once
        // through one ring port anyway). Just verify packet integrity.
        let s = schedule(CollectiveKind::AllToAll, 16, 64);
        let packets = packets_from_schedule(&s);
        assert!(!packets.is_empty());
        for p in &packets {
            assert!(p.bytes > 0);
            assert!(!p.path.is_empty());
            assert_ne!(p.src, p.dst);
            for &d in &p.deps {
                assert!(d < p.id, "dependency on a later packet");
            }
        }
    }

    #[test]
    fn total_bytes_matches_schedule_wire_bytes_for_unicast_only() {
        // For a single-rank geometry there are no broadcasts, so packet
        // bytes equal schedule wire bytes exactly.
        let s = schedule(CollectiveKind::AllReduce, 64, 512);
        let packets = packets_from_schedule(&s);
        assert_eq!(total_bytes(&packets), s.total_wire_bytes().as_u64());
    }
}
