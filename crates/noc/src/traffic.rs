//! Synthetic traffic patterns over the PIMnet topology — the classic NoC
//! evaluation workloads (uniform random, bit-complement, hotspot,
//! neighbour), expressed as packet lists for the credit-based simulator.
//!
//! These are not part of the paper's evaluation (PIMnet never routes
//! dynamic traffic), but they characterize the *dynamic* network the paper
//! compares against, and they stress the simulator far harder than
//! collective traffic does.

use pim_sim::rng::SimRng;

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet::topology::{chip_path, rank_path, ring_path, shorter_direction};

use crate::packet::Packet;

/// A synthetic destination pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Every packet's destination drawn uniformly at random.
    UniformRandom,
    /// Destination = bitwise complement of the source (worst-case distance).
    BitComplement,
    /// A fraction of traffic converges on node 0, the rest uniform.
    Hotspot,
    /// Destination = next bank on the same chip's ring.
    Neighbor,
}

impl Pattern {
    /// All patterns, for sweeps.
    pub const ALL: [Pattern; 4] = [
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::Hotspot,
        Pattern::Neighbor,
    ];

    fn destination(self, src: u32, total: u32, geometry: &PimGeometry, rng: &mut SimRng) -> u32 {
        match self {
            Pattern::UniformRandom => {
                let mut d = rng.gen_range(0..total - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            Pattern::BitComplement => (!src) & (total - 1),
            Pattern::Hotspot => {
                if src != 0 && rng.gen_bool(0.3) {
                    0
                } else {
                    let mut d = rng.gen_range(0..total - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                }
            }
            Pattern::Neighbor => {
                let c = geometry.coord(DpuId(src));
                geometry
                    .id(pim_arch::geometry::DpuCoord {
                        bank: (c.bank + 1) % geometry.banks_per_chip,
                        ..c
                    })
                    .0
            }
        }
    }
}

/// Generates `packets_per_node` independent packets per DPU under a
/// pattern (dependency-free: every packet may inject immediately).
///
/// # Panics
///
/// Panics for geometries with non-power-of-two node counts (needed by
/// [`Pattern::BitComplement`]) or fewer than two DPUs.
#[must_use]
pub fn synthetic_packets(
    geometry: &PimGeometry,
    pattern: Pattern,
    packets_per_node: usize,
    bytes: u64,
    seed: u64,
) -> Vec<Packet> {
    let total = geometry.total_dpus();
    assert!(
        total.is_power_of_two() && total >= 2,
        "synthetic traffic needs a power-of-two node count >= 2"
    );
    let mut rng = SimRng::seed_from_u64(seed);
    let mut packets = Vec::with_capacity(total as usize * packets_per_node);
    for round in 0..packets_per_node {
        for src in 0..total {
            let mut dst = pattern.destination(src, total, geometry, &mut rng);
            if dst == src {
                dst = (src + 1) % total; // bit-complement self-pair guard
            }
            let (s, d) = (DpuId(src), DpuId(dst));
            let path = if geometry.same_chip(s, d) {
                let (a, b) = (geometry.coord(s).bank, geometry.coord(d).bank);
                ring_path(
                    geometry,
                    s,
                    d,
                    shorter_direction(geometry.banks_per_chip, a, b),
                )
            } else if geometry.same_rank(s, d) {
                chip_path(geometry, s, d)
            } else {
                rank_path(geometry, s, &[d])
            };
            packets.push(Packet {
                id: packets.len(),
                src: s,
                dst: d,
                bytes,
                path,
                stage: (0, round),
                deps: Vec::new(),
            });
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::credit::simulate_credit_packets;
    use pim_sim::SimTime;

    fn run(pattern: Pattern, n: u32) -> crate::report::NocReport {
        let g = PimGeometry::paper_scaled(n);
        let packets = synthetic_packets(&g, pattern, 4, 256, 99);
        let ready = vec![SimTime::ZERO; n as usize];
        simulate_credit_packets(&packets, &ready, &NocConfig::paper())
    }

    #[test]
    fn every_pattern_completes() {
        for pattern in Pattern::ALL {
            let r = run(pattern, 64);
            assert_eq!(r.packets, 64 * 4, "{pattern:?}");
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn neighbor_traffic_is_the_cheapest() {
        // One-hop ring traffic should finish far faster than worst-case
        // bit-complement (which crosses chips and ranks).
        let neighbor = run(Pattern::Neighbor, 256);
        let complement = run(Pattern::BitComplement, 256);
        assert!(
            neighbor.completion * 3 < complement.completion,
            "neighbor {} vs bit-complement {}",
            neighbor.completion,
            complement.completion
        );
    }

    #[test]
    fn hotspot_saturates_one_destination() {
        let uniform = run(Pattern::UniformRandom, 64);
        let hotspot = run(Pattern::Hotspot, 64);
        assert!(
            hotspot.completion > uniform.completion,
            "hotspot {} should congest worse than uniform {}",
            hotspot.completion,
            uniform.completion
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let g = PimGeometry::paper_scaled(32);
        let a = synthetic_packets(&g, Pattern::UniformRandom, 2, 64, 5);
        let b = synthetic_packets(&g, Pattern::UniformRandom, 2, 64, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn destinations_are_never_the_source() {
        let g = PimGeometry::paper_scaled(128);
        for pattern in Pattern::ALL {
            for p in synthetic_packets(&g, pattern, 3, 64, 17) {
                assert_ne!(p.src, p.dst, "{pattern:?}");
            }
        }
    }
}
