//! PIM-controlled (statically scheduled) playback — the other side of the
//! Fig 13 comparison.
//!
//! Under PIM control there is nothing dynamic to simulate: after the
//! READY/START barrier fires (when the *last* DPU finishes compute), the
//! schedule's steps execute back-to-back with compile-time-proven freedom
//! from contention. Completion is therefore the barrier time plus the
//! deterministic step times over exactly the same link bandwidths the
//! credit simulation uses ([`NocConfig::fabric`]).

use pim_sim::trace::codes;
use pim_sim::{Probe, SimTime};

use pim_arch::SystemConfig;
use pimnet::schedule::CommSchedule;
use pimnet::sync::SyncModel;
use pimnet::timing::TimingModel;

use crate::config::NocConfig;
use crate::packet::{packets_from_schedule, total_bytes};
use crate::report::NocReport;

/// Runs the statically-scheduled playback of `schedule`'s traffic, with
/// `ready[i]` the time DPU `i` finishes compute. Communication starts only
/// after the last DPU is ready (plus READY/START propagation).
///
/// # Panics
///
/// Panics if `ready` is shorter than the DPU count.
#[must_use]
pub fn simulate_scheduled(
    schedule: &CommSchedule,
    ready: &[SimTime],
    cfg: &NocConfig,
) -> NocReport {
    let nodes = schedule.geometry.total_dpus() as usize;
    assert!(
        ready.len() >= nodes,
        "ready times: got {}, need {nodes}",
        ready.len()
    );
    let fabric = cfg.fabric();
    let timing = TimingModel::new(fabric, SystemConfig::paper());
    let sync = SyncModel::from_fabric(&fabric);

    let barrier_at = ready.iter().copied().max().unwrap_or(SimTime::ZERO)
        + sync.barrier(timing.scope_of(schedule), SimTime::ZERO);
    let network: SimTime = schedule
        .phases
        .iter()
        .map(|p| timing.phase_time(schedule, p))
        .sum();
    let completion = barrier_at + network;

    let packets = packets_from_schedule(schedule);
    NocReport {
        completion,
        cycles: cfg.time_to_cycles(completion),
        packets: packets.len(),
        injected_bytes: total_bytes(&packets),
        stall_cycles: 0,
        p50_latency: SimTime::ZERO,
        p99_latency: SimTime::ZERO,
        max_link_utilization: 0.0,
    }
}

/// [`simulate_scheduled`] with observability: the READY/START barrier
/// lands in `probe` as a `barrier` span, and completion / injected bytes /
/// packet count land in the metrics sink (scheduled playback has no
/// per-packet delivery times — per-transfer wire accounting belongs to
/// [`pimnet::timeline::Timeline::build_probed`]). With a disabled probe
/// this is exactly [`simulate_scheduled`].
///
/// # Panics
///
/// Same as [`simulate_scheduled`].
#[must_use]
pub fn simulate_scheduled_probed(
    schedule: &CommSchedule,
    ready: &[SimTime],
    cfg: &NocConfig,
    probe: &Probe,
) -> NocReport {
    let report = simulate_scheduled(schedule, ready, cfg);
    if probe.is_active() {
        let fabric = cfg.fabric();
        let timing = TimingModel::new(fabric, SystemConfig::paper());
        let _ = SyncModel::from_fabric(&fabric).barrier_probed(
            timing.scope_of(schedule),
            SimTime::ZERO,
            probe,
        );
        probe.metrics.wall(report.completion.as_ps());
        probe.metrics.noc(
            report.injected_bytes,
            report.injected_bytes,
            0,
            report.packets as u64,
        );
    }
    report
}

/// Scheduled playback over a fabric with permanent faults: the schedule is
/// first rewritten around the fault set (rings rerouted, dead crossbar
/// ports borrowed, contending steps serialized — see
/// [`pimnet::schedule::repair`]), then played back like
/// [`simulate_scheduled`], with the repair's control-plane overhead
/// ([`SyncModel::repair_overhead`]) added to the barrier.
///
/// # Errors
///
/// Whatever repair returns when the fault set defeats it
/// (`PimnetError::DeadRank`, `PimnetError::Unroutable`).
///
/// # Panics
///
/// Panics if `ready` is shorter than the DPU count.
pub fn simulate_scheduled_repaired(
    schedule: &CommSchedule,
    ready: &[SimTime],
    cfg: &NocConfig,
    faults: &pim_faults::permanent::PermanentFaultSet,
) -> Result<NocReport, pimnet::PimnetError> {
    let repaired = pimnet::schedule::repair::repair(schedule, faults)?;
    let mut report = simulate_scheduled(&repaired.schedule, ready, cfg);
    let overhead =
        SyncModel::from_fabric(&cfg.fabric()).repair_overhead(repaired.report.extra_steps);
    report.completion += overhead;
    report.cycles = cfg.time_to_cycles(report.completion);
    Ok(report)
}

/// [`simulate_scheduled_repaired`] with observability: the repair's
/// control-plane cost lands in `probe` as a `repair-overhead` instant on
/// top of everything [`simulate_scheduled_probed`] records. With a
/// disabled probe this is exactly [`simulate_scheduled_repaired`].
///
/// # Errors
///
/// Same as [`simulate_scheduled_repaired`] (nothing is recorded on the
/// error path).
///
/// # Panics
///
/// Same as [`simulate_scheduled_repaired`].
pub fn simulate_scheduled_repaired_probed(
    schedule: &CommSchedule,
    ready: &[SimTime],
    cfg: &NocConfig,
    faults: &pim_faults::permanent::PermanentFaultSet,
    probe: &Probe,
) -> Result<NocReport, pimnet::PimnetError> {
    if !probe.is_active() {
        return simulate_scheduled_repaired(schedule, ready, cfg, faults);
    }
    let repaired = pimnet::schedule::repair::repair(schedule, faults)?;
    let mut report = simulate_scheduled_probed(&repaired.schedule, ready, cfg, probe);
    let overhead =
        SyncModel::from_fabric(&cfg.fabric()).repair_overhead(repaired.report.extra_steps);
    if overhead > SimTime::ZERO || !repaired.report.is_identity() {
        probe.trace.instant(
            SimTime::ZERO,
            codes::REPAIR_OVERHEAD,
            [repaired.report.extra_steps as u64, overhead.as_ps(), 0, 0],
        );
    }
    report.completion += overhead;
    report.cycles = cfg.time_to_cycles(report.completion);
    probe.metrics.wall(report.completion.as_ps());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::credit::simulate_credit;
    use pim_arch::geometry::PimGeometry;
    use pimnet::collective::CollectiveKind;

    fn schedule(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    fn zeros(n: u32) -> Vec<SimTime> {
        vec![SimTime::ZERO; n as usize]
    }

    #[test]
    fn scheduled_has_no_stalls_by_construction() {
        let s = schedule(CollectiveKind::AllToAll, 64, 512);
        let r = simulate_scheduled(&s, &zeros(64), &NocConfig::paper());
        assert_eq!(r.stall_cycles, 0);
        assert!(r.completion > SimTime::ZERO);
    }

    #[test]
    fn scheduled_waits_for_the_slowest_dpu() {
        let s = schedule(CollectiveKind::AllReduce, 8, 256);
        let cfg = NocConfig::paper();
        let base = simulate_scheduled(&s, &zeros(8), &cfg);
        let mut ready = zeros(8);
        ready[0] = SimTime::from_us(100);
        let skewed = simulate_scheduled(&s, &ready, &cfg);
        assert_eq!(
            skewed.completion,
            base.completion + SimTime::from_us(100),
            "barrier must track the slowest DPU exactly"
        );
    }

    #[test]
    fn fig13_allreduce_modes_are_close() {
        // Fig 13(a): for AllReduce the two flow-control strategies are
        // within a few percent of each other.
        let s = schedule(CollectiveKind::AllReduce, 64, 1024);
        let cfg = NocConfig::paper();
        let ready = zeros(64);
        let credit = simulate_credit(&s, &ready, &cfg);
        let sched = simulate_scheduled(&s, &ready, &cfg);
        let ratio = credit.completion.ratio(sched.completion);
        assert!(
            (0.7..1.4).contains(&ratio),
            "AR credit/scheduled ratio {ratio:.3} out of band \
             (credit {credit}, scheduled {sched})"
        );
    }

    #[test]
    fn fig13_alltoall_prefers_pim_control() {
        // Fig 13(b): All-to-All's convergent traffic contends at the
        // inter-chip crossbar under credit-based wormhole flow control;
        // PIM-controlled scheduling avoids it (paper: ~18.7% faster).
        let s = schedule(CollectiveKind::AllToAll, 64, 2048);
        let cfg = NocConfig::paper();
        let ready = zeros(64);
        let credit = simulate_credit(&s, &ready, &cfg);
        let sched = simulate_scheduled(&s, &ready, &cfg);
        assert!(
            sched.completion < credit.completion,
            "scheduled ({sched}) should beat credit-based ({credit}) on A2A"
        );
    }

    #[test]
    fn repaired_playback_prices_the_detour() {
        use pim_faults::permanent::PermanentFaultSet;
        let s = schedule(CollectiveKind::AllReduce, 64, 512);
        let cfg = NocConfig::paper();
        let clean = simulate_scheduled(&s, &zeros(64), &cfg);
        // Identity fault set reproduces the clean report.
        let same =
            simulate_scheduled_repaired(&s, &zeros(64), &cfg, &PermanentFaultSet::none()).unwrap();
        assert_eq!(same, clean);
        // A dead segment and a dead port both cost completion time.
        let f = PermanentFaultSet::parse_tokens("r0c0b2E, r0c3tx").unwrap();
        let broken = simulate_scheduled_repaired(&s, &zeros(64), &cfg, &f).unwrap();
        assert!(broken.completion > clean.completion);
        assert_eq!(broken.injected_bytes, clean.injected_bytes);
        // A dead rank is a typed refusal, not a panic.
        let s256 = schedule(CollectiveKind::AllReduce, 256, 256);
        let dead = PermanentFaultSet::parse_tokens("rank2").unwrap();
        assert!(simulate_scheduled_repaired(&s256, &zeros(256), &cfg, &dead).is_err());
    }

    #[test]
    fn both_modes_move_identical_bytes() {
        let s = schedule(CollectiveKind::AllReduce, 32, 512);
        let cfg = NocConfig::paper();
        let credit = simulate_credit(&s, &zeros(32), &cfg);
        let sched = simulate_scheduled(&s, &zeros(32), &cfg);
        assert_eq!(credit.injected_bytes, sched.injected_bytes);
        assert_eq!(credit.packets, sched.packets);
    }
}
