//! Cycle-accurate flit/byte-level NoC simulation for the PIMnet topology.
//!
//! The paper's Fig 13 asks: what does PIMnet give up by replacing dynamic,
//! credit-based flow control with compile-time scheduling? The authors
//! rebuilt PIMnet's topology in Booksim 2.0 and compared the two. This
//! crate is our from-scratch equivalent:
//!
//! * [`credit`] — a cycle-driven, wormhole-routed network with per-hop
//!   input buffers and credit back-pressure. Every DPU injects its
//!   collective traffic the moment its compute finishes; convergent flows
//!   contend at the inter-chip crossbar channels and the shared bus, with
//!   real head-of-line blocking.
//! * [`scheduled`] — PIM-controlled playback: a global READY/START barrier
//!   after the *last* DPU finishes, then the static
//!   [`pimnet::schedule::CommSchedule`] steps run back-to-back,
//!   contention-free by construction.
//!
//! Both modes move byte-for-byte identical traffic (generated from the same
//! schedule) over byte-for-byte identical link bandwidths, so completion
//! times are directly comparable. The paper's result — AllReduce within
//! ~1 %, All-to-All ~19 % better under PIM control because credit-based
//! wormhole flow control suffers crossbar contention — falls out of the
//! same mechanisms here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod credit;
pub mod packet;
pub mod report;
pub mod scheduled;
pub mod traffic;

pub use config::NocConfig;
pub use credit::{
    simulate_credit, simulate_credit_faulty, simulate_credit_faulty_probed,
    simulate_credit_packets, simulate_credit_packets_probed, simulate_credit_probed,
    try_simulate_credit_packets_probed,
};
pub use packet::inject_retransmissions;
pub use report::NocReport;
pub use scheduled::{
    simulate_scheduled, simulate_scheduled_probed, simulate_scheduled_repaired,
    simulate_scheduled_repaired_probed,
};
