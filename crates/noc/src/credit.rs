//! Credit-based, wormhole-routed cycle simulation.
//!
//! The dynamic network the paper compares against (Booksim-style): each
//! link has a downstream input buffer guarded by credits; a link is
//! allocated to one packet at a time (wormhole) and holds it until the
//! packet's tail passes — so a packet stalled on a full downstream buffer
//! blocks everything queued behind it (head-of-line blocking). Every DPU
//! injects as soon as its own compute finishes and its data dependencies
//! are met; nothing waits for a global barrier.
//!
//! The model streams bytes rather than discrete flits: per cycle, an
//! allocated link moves `min(link width, bytes available upstream, credit
//! space downstream)` bytes of its current packet. With 2/3/48-byte link
//! widths this is exactly flit-level behaviour with 1-byte flits, at much
//! lower simulation cost.

use std::collections::{BTreeMap, HashMap, VecDeque};

use pim_sim::trace::codes;
use pim_sim::{Probe, SimTime};

use pimnet::schedule::CommSchedule;
use pimnet::topology::Resource;
use pimnet::PimnetError;

use crate::config::NocConfig;
use crate::packet::packets_from_schedule;
use crate::report::NocReport;

struct LinkState {
    /// Packet currently holding the link (wormhole allocation).
    current: Option<usize>,
    /// Packets waiting for the link, FIFO.
    queue: VecDeque<usize>,
    /// Consecutive cycles the current packet moved no byte (VC-escape
    /// preemption counter).
    stalled: u32,
}

/// Runs the credit-based simulation of `schedule`'s traffic, with
/// `ready[i]` the time DPU `i` finishes compute and may start injecting.
///
/// # Panics
///
/// Panics if `ready` is shorter than the DPU count, or if the simulation
/// exceeds `cfg.max_cycles` (deadlock guard).
#[must_use]
pub fn simulate_credit(schedule: &CommSchedule, ready: &[SimTime], cfg: &NocConfig) -> NocReport {
    simulate_credit_probed(schedule, ready, cfg, Probe::disabled())
}

/// [`simulate_credit`] with observability: every packet delivery lands in
/// `probe` as a `noc-deliver` instant (at its simulated delivery time),
/// and the report's byte/stall/busy totals land in the metrics sink. With
/// a disabled probe this is exactly [`simulate_credit`].
///
/// # Panics
///
/// Same as [`simulate_credit`].
#[must_use]
pub fn simulate_credit_probed(
    schedule: &CommSchedule,
    ready: &[SimTime],
    cfg: &NocConfig,
    probe: &Probe,
) -> NocReport {
    let packets = packets_from_schedule(schedule);
    let nodes = schedule.geometry.total_dpus() as usize;
    assert!(
        ready.len() >= nodes,
        "ready times: got {}, need {nodes}",
        ready.len()
    );
    simulate_credit_packets_probed(&packets, ready, cfg, probe)
}

/// Runs the credit-based simulation of `schedule`'s traffic under a fault
/// scenario.
///
/// Faults enter the cycle model in two ways:
///
/// * **stragglers** push back the affected DPUs' injection-ready times
///   (a dynamic network has no barrier, so only the straggler's own
///   packets — and whatever depends on them — are delayed, which is
///   precisely the flow-control advantage Fig 13 quantifies);
/// * **transient CRC failures** replay the corrupted packet over the same
///   links via [`crate::packet::inject_retransmissions`], consuming real
///   wire time and back-pressuring everything queued behind it.
///
/// With an inactive injector this is exactly [`simulate_credit`]. The
/// simulation stays fully deterministic for a seed.
///
/// # Errors
///
/// * [`pimnet::PimnetError::DeadDpu`] if a participant is hard-dead;
/// * [`pimnet::PimnetError::TransferFailed`] if a packet exhausts its
///   retry budget;
/// * [`pimnet::PimnetError::SimulationStalled`] if the scenario wedges
///   the flow control past the `cfg.max_cycles` deadlock guard (typed,
///   not a panic: chaos harnesses count it).
///
/// # Panics
///
/// Panics if `ready` is shorter than the DPU count.
pub fn simulate_credit_faulty(
    schedule: &CommSchedule,
    ready: &[SimTime],
    cfg: &NocConfig,
    injector: &pim_faults::FaultInjector,
) -> Result<NocReport, pimnet::PimnetError> {
    if !injector.is_active() {
        return Ok(simulate_credit(schedule, ready, cfg));
    }
    let nodes = schedule.geometry.total_dpus() as usize;
    assert!(
        ready.len() >= nodes,
        "ready times: got {}, need {nodes}",
        ready.len()
    );
    if let Some(dead) = schedule.participants().find(|id| injector.is_dead(id.0)) {
        return Err(pimnet::PimnetError::DeadDpu { dpu: dead.0 });
    }
    let stretched: Vec<SimTime> = ready
        .iter()
        .enumerate()
        .map(|(i, &t)| t + SimTime::from_ns(injector.straggler_delay_ns(i as u32, 0)))
        .collect();
    let packets =
        crate::packet::inject_retransmissions(&packets_from_schedule(schedule), injector)?;
    try_simulate_credit_packets_probed(&packets, &stretched, cfg, Probe::disabled())
}

/// [`simulate_credit_faulty`] with observability: stragglers and CRC
/// retransmissions land in `probe` as `straggler` / `noc-retransmit`
/// instants (and metrics counters) on top of everything
/// [`simulate_credit_probed`] records. With a disabled probe this is
/// exactly [`simulate_credit_faulty`].
///
/// # Errors
///
/// Same as [`simulate_credit_faulty`] (nothing from the failed simulation
/// is recorded on the error path).
///
/// # Panics
///
/// Same as [`simulate_credit_faulty`].
pub fn simulate_credit_faulty_probed(
    schedule: &CommSchedule,
    ready: &[SimTime],
    cfg: &NocConfig,
    injector: &pim_faults::FaultInjector,
    probe: &Probe,
) -> Result<NocReport, pimnet::PimnetError> {
    if !probe.is_active() {
        return simulate_credit_faulty(schedule, ready, cfg, injector);
    }
    if !injector.is_active() {
        return Ok(simulate_credit_probed(schedule, ready, cfg, probe));
    }
    let nodes = schedule.geometry.total_dpus() as usize;
    assert!(
        ready.len() >= nodes,
        "ready times: got {}, need {nodes}",
        ready.len()
    );
    if let Some(dead) = schedule.participants().find(|id| injector.is_dead(id.0)) {
        return Err(pimnet::PimnetError::DeadDpu { dpu: dead.0 });
    }
    let mut stretched: Vec<SimTime> = Vec::with_capacity(ready.len());
    for (i, &t) in ready.iter().enumerate() {
        let delay_ns = injector.straggler_delay_ns(i as u32, 0);
        if delay_ns > 0 && i < nodes {
            probe
                .trace
                .instant(SimTime::ZERO, codes::STRAGGLER, [i as u64, delay_ns, 0, 0]);
            probe.metrics.straggler(delay_ns);
        }
        stretched.push(t + SimTime::from_ns(delay_ns));
    }
    let base = packets_from_schedule(schedule);
    let packets = crate::packet::inject_retransmissions(&base, injector)?;
    probe
        .metrics
        .retransmissions((packets.len() - base.len()) as u64);
    // Retry attempts re-derived per *base* packet (the expansion already
    // proved each has a clean final attempt), so event order is the stable
    // base-packet order rather than the expanded interleaving.
    for p in &base {
        let corrupted = injector
            .attempts_before_success(p.stage.0 as u64, p.stage.1 as u64, p.id as u64)
            .unwrap_or(0);
        for attempt in 1..=u64::from(corrupted) {
            probe.trace.instant(
                SimTime::ZERO,
                codes::NOC_RETRANSMIT,
                [u64::from(p.src.0), u64::from(p.dst.0), p.bytes, attempt],
            );
        }
    }
    try_simulate_credit_packets_probed(&packets, &stretched, cfg, probe)
}

/// Runs the credit-based simulation on an explicit packet list (used both
/// by [`simulate_credit`] and by the synthetic traffic patterns of
/// [`crate::traffic`]).
///
/// # Panics
///
/// Panics if a packet's source index exceeds `ready.len()`, or if the
/// simulation exceeds `cfg.max_cycles` (deadlock guard).
#[must_use]
pub fn simulate_credit_packets(
    packets: &[crate::packet::Packet],
    ready: &[SimTime],
    cfg: &NocConfig,
) -> NocReport {
    simulate_credit_packets_probed(packets, ready, cfg, Probe::disabled())
}

/// [`simulate_credit_packets`] with observability (the probed core the
/// plain entry points delegate to). With an active probe, each delivery
/// becomes a `noc-deliver` instant at its simulated delivery time (in
/// packet-id order, so traces are independent of the cycle interleaving),
/// and per-tier link-busy time, stall cycles, and byte conservation
/// land in the metrics sink.
///
/// # Panics
///
/// Same as [`simulate_credit_packets`].
#[must_use]
pub fn simulate_credit_packets_probed(
    packets: &[crate::packet::Packet],
    ready: &[SimTime],
    cfg: &NocConfig,
    probe: &Probe,
) -> NocReport {
    match try_simulate_credit_packets_probed(packets, ready, cfg, probe) {
        Ok(report) => report,
        Err(e) => panic!("credit simulation failed on a fault-free packet list: {e}"),
    }
}

/// The mutable per-link flow-control state keyed by the resource the link
/// occupies, looked up fallibly: a packet routed over a link that was
/// never registered is a malformed packet list, reported as
/// [`PimnetError::Unroutable`] instead of a panic.
fn link_mut<'a>(
    links: &'a mut BTreeMap<Resource, LinkState>,
    r: &Resource,
) -> Result<&'a mut LinkState, PimnetError> {
    links.get_mut(r).ok_or_else(|| PimnetError::Unroutable {
        reason: format!("packet routed over unregistered link {r:?}"),
    })
}

/// The fallible core of the credit simulation: exactly
/// [`simulate_credit_packets_probed`], but every run-time failure mode —
/// a malformed packet list, the `cfg.max_cycles` deadlock guard firing —
/// comes back as a typed [`PimnetError`] instead of a panic. The fault
/// paths ([`simulate_credit_faulty`], [`simulate_credit_faulty_probed`])
/// route through this so chaos scenarios end in typed error trails.
///
/// # Errors
///
/// * [`PimnetError::Unroutable`] if a packet references a link or hop
///   that is not part of its own registered path (malformed input);
/// * [`PimnetError::SimulationStalled`] if traffic stops making progress
///   before every packet is delivered (`cfg.max_cycles` guard).
///
/// # Panics
///
/// Panics if a packet's source index exceeds `ready.len()`.
pub fn try_simulate_credit_packets_probed(
    packets: &[crate::packet::Packet],
    ready: &[SimTime],
    cfg: &NocConfig,
    probe: &Probe,
) -> Result<NocReport, PimnetError> {
    let nodes = ready.len();
    if packets.is_empty() {
        return Ok(NocReport {
            completion: ready.iter().copied().max().unwrap_or(SimTime::ZERO),
            cycles: 0,
            packets: 0,
            injected_bytes: 0,
            stall_cycles: 0,
            p50_latency: SimTime::ZERO,
            p99_latency: SimTime::ZERO,
            max_link_utilization: 0.0,
        });
    }

    // Reverse dependency lists and remaining-dep counters.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); packets.len()];
    let mut deps_left: Vec<usize> = packets.iter().map(|p| p.deps.len()).collect();
    for p in packets {
        for &d in &p.deps {
            dependents[d].push(p.id);
        }
    }

    // Per-packet per-hop progress (bytes that crossed each hop).
    let mut prog: Vec<Vec<u64>> = packets.iter().map(|p| vec![0u64; p.path.len()]).collect();
    let mut delivered: Vec<bool> = vec![false; packets.len()];
    let mut enqueued_hop: Vec<usize> = vec![0; packets.len()]; // next hop to enqueue
    let ready_cycle: Vec<u64> = (0..nodes).map(|i| cfg.time_to_cycles(ready[i])).collect();

    // A BTreeMap so every iteration below walks links in sorted resource
    // order — determinism without a separate ordering vector.
    let mut links: BTreeMap<Resource, LinkState> = BTreeMap::new();
    for p in packets {
        for r in &p.path {
            links.entry(*r).or_insert(LinkState {
                current: None,
                queue: VecDeque::new(),
                stalled: 0,
            });
        }
    }

    // A packet is *armed* once its dependencies are delivered; it then
    // releases at its source's ready cycle (min-heap keyed by that cycle,
    // with the packet id as deterministic tie-breaker).
    use std::cmp::Reverse;
    let mut armed: std::collections::BinaryHeap<Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for p in packets {
        if p.deps.is_empty() {
            armed.push(Reverse((ready_cycle[p.src.index()], p.id)));
        }
    }

    let mut remaining = packets.len();
    let mut injected_bytes = 0u64;
    let mut stall_cycles = 0u64;
    let mut cycle = 0u64;
    let mut last_delivery_cycle = 0u64;
    let mut stalled_links: Vec<Resource> = Vec::new();
    let mut release_cycle_of: Vec<u64> = vec![0; packets.len()];
    let mut delivery_cycle: Vec<u64> = vec![0; packets.len()];
    let mut latencies: Vec<u64> = Vec::with_capacity(packets.len());
    let mut busy: HashMap<Resource, u64> = HashMap::new();

    while remaining > 0 {
        if cycle >= cfg.max_cycles {
            return Err(PimnetError::SimulationStalled {
                cycles: cycle,
                remaining,
            });
        }

        // 1. Release armed packets whose ready cycle has arrived; the heap
        // order (cycle, id) keeps queue insertion deterministic.
        while let Some(&Reverse((at, pid))) = armed.peek() {
            if at > cycle {
                break;
            }
            armed.pop();
            release_cycle_of[pid] = cycle;
            let first = packets[pid].path[0];
            link_mut(&mut links, &first)?.queue.push_back(pid);
            enqueued_hop[pid] = 1;
        }

        // 2. Allocate free links; packets still queued behind a busy link
        // are the visible cost of dynamic flow control (contention wait).
        // A wormhole that has been dead for `preempt_after` cycles yields
        // (virtual-channel escape; prevents multi-hop ring deadlock).
        for l in links.values_mut() {
            if let Some(cur) = l.current {
                if l.stalled >= cfg.preempt_after && !l.queue.is_empty() {
                    l.queue.push_back(cur);
                    l.current = l.queue.pop_front();
                    l.stalled = 0;
                }
            } else {
                l.current = l.queue.pop_front();
                l.stalled = 0;
            }
            stall_cycles += l.queue.len() as u64;
        }

        // 3. Move bytes using a snapshot of progress.
        let mut moved: Vec<(usize, usize, u64)> = Vec::new(); // (packet, hop, delta)
        for (r, l) in &links {
            let Some(pid) = l.current else { continue };
            let p = &packets[pid];
            let hop =
                p.path
                    .iter()
                    .position(|x| x == r)
                    .ok_or_else(|| PimnetError::Unroutable {
                        reason: format!("packet {pid} holds link {r:?} off its own path"),
                    })?;
            let upstream = if hop == 0 {
                p.bytes
            } else {
                prog[pid][hop - 1]
            };
            let avail = upstream - prog[pid][hop];
            let space = if hop + 1 < p.path.len() {
                cfg.buffer_bytes - (prog[pid][hop] - prog[pid][hop + 1])
            } else {
                u64::MAX
            };
            let delta = cfg.capacity(r).min(avail).min(space);
            if delta == 0 {
                stall_cycles += 1;
                stalled_links.push(*r);
            } else {
                moved.push((pid, hop, delta));
            }
        }
        for r in stalled_links.drain(..) {
            link_mut(&mut links, &r)?.stalled += 1;
        }
        for (pid, hop, _) in &moved {
            let r = packets[*pid].path[*hop];
            link_mut(&mut links, &r)?.stalled = 0;
            *busy.entry(r).or_insert(0) += 1;
        }

        // 4. Apply movements; manage allocation, enqueueing, delivery.
        for (pid, hop, delta) in moved {
            prog[pid][hop] += delta;
            if hop == 0 {
                injected_bytes += delta;
            }
            let p = &packets[pid];
            // First bytes reached the buffer before hop+1: join its queue.
            if hop + 1 < p.path.len() && enqueued_hop[pid] == hop + 1 {
                link_mut(&mut links, &p.path[hop + 1])?.queue.push_back(pid);
                enqueued_hop[pid] = hop + 2;
            }
            // Tail passed this hop: free the link.
            if prog[pid][hop] == p.bytes {
                let l = link_mut(&mut links, &p.path[hop])?;
                if l.current == Some(pid) {
                    l.current = None;
                }
            }
            // Delivered?
            if hop + 1 == p.path.len() && prog[pid][hop] == p.bytes && !delivered[pid] {
                delivered[pid] = true;
                remaining -= 1;
                last_delivery_cycle = cycle + 1;
                delivery_cycle[pid] = cycle + 1;
                latencies.push(cycle + 1 - release_cycle_of[pid]);
                for &d in &dependents[pid] {
                    deps_left[d] -= 1;
                    if deps_left[d] == 0 {
                        let rc = ready_cycle[packets[d].src.index()].max(cycle + 1);
                        armed.push(Reverse((rc, d)));
                    }
                }
            }
        }

        cycle += 1;
    }

    latencies.sort_unstable();
    let pct = |p: f64| -> SimTime {
        if latencies.is_empty() {
            return SimTime::ZERO;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        cfg.cycles_to_time(latencies[idx])
    };
    let max_link_utilization = busy
        .values()
        .map(|&b| b as f64 / last_delivery_cycle.max(1) as f64)
        .fold(0.0f64, f64::max);
    if probe.is_active() {
        for p in packets {
            probe.trace.instant(
                cfg.cycles_to_time(delivery_cycle[p.id]),
                codes::NOC_DELIVER,
                [
                    u64::from(p.src.0),
                    u64::from(p.dst.0),
                    p.bytes,
                    ((p.stage.0 as u64) << 16) | p.stage.1 as u64,
                ],
            );
        }
        let mut busy_ps_by_tier = [0u64; pim_sim::metrics::TIERS];
        let mut max_busy_ps = 0u64;
        for r in links.keys() {
            let Some(&b) = busy.get(r) else { continue };
            let ps = cfg.cycles_to_time(b).as_ps();
            busy_ps_by_tier[r.tier_index()] += ps;
            max_busy_ps = max_busy_ps.max(ps);
        }
        for (tier, &ps) in busy_ps_by_tier.iter().enumerate() {
            if ps > 0 {
                probe.metrics.link_busy(tier, ps);
            }
        }
        probe.metrics.max_link_busy(max_busy_ps);
        probe
            .metrics
            .wall(cfg.cycles_to_time(last_delivery_cycle).as_ps());
        // Every packet is fully delivered by loop exit, so delivered bytes
        // are the packet total; injected bytes were counted at hop 0. The
        // two must agree (`tests/metrics_invariants.rs`).
        let delivered_bytes: u64 = packets.iter().map(|p| p.bytes).sum();
        probe.metrics.noc(
            injected_bytes,
            delivered_bytes,
            stall_cycles,
            packets.len() as u64,
        );
    }
    Ok(NocReport {
        completion: cfg.cycles_to_time(last_delivery_cycle),
        cycles: last_delivery_cycle,
        packets: packets.len(),
        injected_bytes,
        stall_cycles,
        p50_latency: pct(0.5),
        p99_latency: pct(0.99),
        max_link_utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::geometry::PimGeometry;
    use pimnet::collective::CollectiveKind;

    fn schedule(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    fn zeros(n: u32) -> Vec<SimTime> {
        vec![SimTime::ZERO; n as usize]
    }

    #[test]
    fn single_chip_allreduce_completes_with_full_ring_utilization() {
        let s = schedule(CollectiveKind::AllReduce, 8, 512);
        let r = simulate_credit(&s, &zeros(8), &NocConfig::paper());
        // 8 banks x 2 directions x 7 steps, for ReduceScatter + AllGather.
        assert_eq!(r.packets, 8 * 2 * 7 * 2);
        assert!(r.cycles > 0);
        // Lower bound: each direction moves 7 x (256/8) elems x 4 B = 896 B
        // per bank at 2 B/cycle -> at least 448 cycles.
        assert!(r.cycles >= 448, "finished impossibly fast: {}", r.cycles);
    }

    #[test]
    fn completion_scales_with_message_size() {
        let cfg = NocConfig::paper();
        let small = simulate_credit(
            &schedule(CollectiveKind::AllReduce, 8, 256),
            &zeros(8),
            &cfg,
        );
        let large = simulate_credit(
            &schedule(CollectiveKind::AllReduce, 8, 2048),
            &zeros(8),
            &cfg,
        );
        let ratio = large.cycles as f64 / small.cycles as f64;
        assert!(
            (4.0..12.0).contains(&ratio),
            "expected ~8x more cycles, got {ratio:.2}"
        );
    }

    #[test]
    fn ready_skew_delays_completion() {
        let s = schedule(CollectiveKind::AllReduce, 8, 512);
        let cfg = NocConfig::paper();
        let base = simulate_credit(&s, &zeros(8), &cfg);
        let mut ready = zeros(8);
        ready[3] = SimTime::from_us(50);
        let skewed = simulate_credit(&s, &ready, &cfg);
        assert!(skewed.completion > base.completion);
        assert!(skewed.completion >= SimTime::from_us(50));
    }

    #[test]
    fn cross_rank_traffic_flows() {
        let s = schedule(CollectiveKind::AllReduce, 32, 256);
        let r = simulate_credit(&s, &zeros(32), &NocConfig::paper());
        assert!(r.cycles > 0);
        assert!(r.injected_bytes > 0);
    }

    #[test]
    fn alltoall_stalls_more_than_allreduce() {
        // The crossbar contention story of Fig 13: A2A's convergent wormhole
        // traffic produces head-of-line stalls; AR's neighbor traffic does
        // not (much).
        let cfg = NocConfig::paper();
        let ar = simulate_credit(
            &schedule(CollectiveKind::AllReduce, 64, 1024),
            &zeros(64),
            &cfg,
        );
        let a2a = simulate_credit(
            &schedule(CollectiveKind::AllToAll, 64, 1024),
            &zeros(64),
            &cfg,
        );
        assert!(
            a2a.stall_cycles > ar.stall_cycles,
            "A2A stalls ({}) should exceed AR stalls ({})",
            a2a.stall_cycles,
            ar.stall_cycles
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let s = schedule(CollectiveKind::AllToAll, 16, 256);
        let cfg = NocConfig::paper();
        let a = simulate_credit(&s, &zeros(16), &cfg);
        let b = simulate_credit(&s, &zeros(16), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn inactive_injector_reproduces_the_fault_free_report() {
        use pim_faults::FaultInjector;
        let s = schedule(CollectiveKind::AllReduce, 8, 512);
        let cfg = NocConfig::paper();
        let clean = simulate_credit(&s, &zeros(8), &cfg);
        let faulty = simulate_credit_faulty(&s, &zeros(8), &cfg, &FaultInjector::none()).unwrap();
        assert_eq!(clean, faulty);
    }

    #[test]
    fn retransmissions_cost_cycles_and_bytes_deterministically() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = schedule(CollectiveKind::AllReduce, 8, 512);
        let cfg = NocConfig::paper();
        let clean = simulate_credit(&s, &zeros(8), &cfg);
        let inj = FaultInjector::new(
            FaultConfig {
                transient_ber: 0.2,
                max_retries: 16,
                ..FaultConfig::none()
            }
            .with_seed(9),
        );
        let a = simulate_credit_faulty(&s, &zeros(8), &cfg, &inj).unwrap();
        let b = simulate_credit_faulty(&s, &zeros(8), &cfg, &inj).unwrap();
        assert_eq!(a, b, "same seed must simulate identically");
        assert!(
            a.injected_bytes > clean.injected_bytes,
            "retries add wire bytes"
        );
        assert!(
            a.completion >= clean.completion,
            "retries cannot speed things up"
        );
    }

    #[test]
    fn an_undeliverable_scenario_stalls_typed_instead_of_panicking() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = schedule(CollectiveKind::AllReduce, 8, 512);
        // A deadlock guard far too tight for the traffic: the fault path
        // must report SimulationStalled, not assert.
        let cfg = NocConfig {
            max_cycles: 4,
            ..NocConfig::paper()
        };
        let inj = FaultInjector::new(
            FaultConfig {
                straggler_prob: 1.0,
                straggler_max_ns: 10,
                ..FaultConfig::none()
            }
            .with_seed(3),
        );
        let err = simulate_credit_faulty(&s, &zeros(8), &cfg, &inj).unwrap_err();
        assert!(
            matches!(
                err,
                pimnet::PimnetError::SimulationStalled { cycles: 4, remaining } if remaining > 0
            ),
            "expected SimulationStalled, got {err:?}"
        );
    }

    #[test]
    fn a_straggler_delays_only_its_dependents() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = schedule(CollectiveKind::AllReduce, 8, 512);
        let cfg = NocConfig::paper();
        let clean = simulate_credit(&s, &zeros(8), &cfg);
        let inj = FaultInjector::new(
            FaultConfig {
                straggler_prob: 0.5,
                straggler_max_ns: 80_000,
                ..FaultConfig::none()
            }
            .with_seed(11),
        );
        let slow = simulate_credit_faulty(&s, &zeros(8), &cfg, &inj).unwrap();
        // Same traffic, later finish: stragglers delay injection, not bytes.
        assert_eq!(slow.injected_bytes, clean.injected_bytes);
        assert!(slow.completion > clean.completion);
    }

    #[test]
    fn dead_participants_are_refused_up_front() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = schedule(CollectiveKind::AllReduce, 8, 512);
        let inj = FaultInjector::new(FaultConfig {
            dead_dpus: vec![3],
            ..FaultConfig::none()
        });
        assert!(matches!(
            simulate_credit_faulty(&s, &zeros(8), &NocConfig::paper(), &inj),
            Err(pimnet::PimnetError::DeadDpu { dpu: 3 })
        ));
    }
}
