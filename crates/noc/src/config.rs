//! NoC simulation parameters.

use pim_sim::{Frequency, SimTime};

use pimnet::topology::Resource;
use pimnet::FabricConfig;

/// Link widths and buffering of the cycle-level network.
///
/// The network runs on a single clock (the DPU's 350 MHz); per-link widths
/// are chosen so that `width × clock` equals the Table IV bandwidths:
/// 2 B/cycle ring segments (0.7 GB/s), 3 B/cycle DQ channels (1.05 GB/s),
/// 48 B/cycle bus (16.8 GB/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Network clock.
    pub clock: Frequency,
    /// Ring-segment width in bytes per cycle.
    pub ring_bpc: u64,
    /// DQ (chip send/receive) channel width in bytes per cycle.
    pub dq_bpc: u64,
    /// Inter-rank bus width in bytes per cycle.
    pub bus_bpc: u64,
    /// Input-buffer capacity per link, in bytes (credit pool).
    pub buffer_bytes: u64,
    /// Virtual-channel escape: a wormhole that moves no byte for this many
    /// consecutive cycles yields its link to the next queued packet
    /// (without this, mixed multi-hop ring traffic can deadlock — the
    /// problem VCs solve in real credit-based routers).
    pub preempt_after: u32,
    /// Hard cap on simulated cycles (deadlock/runaway guard).
    pub max_cycles: u64,
}

impl NocConfig {
    /// The paper's Table IV fabric at 350 MHz.
    #[must_use]
    pub fn paper() -> Self {
        NocConfig {
            clock: Frequency::mhz(350),
            ring_bpc: 2,
            dq_bpc: 3,
            bus_bpc: 48,
            buffer_bytes: 64,
            preempt_after: 8,
            max_cycles: 200_000_000,
        }
    }

    /// Bytes per cycle of one resource.
    #[must_use]
    pub fn capacity(&self, r: &Resource) -> u64 {
        match r {
            Resource::RingSegment { .. } => self.ring_bpc,
            Resource::ChipTx { .. } | Resource::ChipRx { .. } => self.dq_bpc,
            Resource::RankBus { .. } => self.bus_bpc,
        }
    }

    /// Converts a cycle count to simulated time.
    #[must_use]
    pub fn cycles_to_time(&self, cycles: u64) -> SimTime {
        self.clock.cycles_to_time(pim_sim::Cycles::new(cycles))
    }

    /// Converts a time to whole network cycles (rounded up).
    #[must_use]
    pub fn time_to_cycles(&self, t: SimTime) -> u64 {
        let c = self.clock.time_to_cycles(t).as_u64();
        if self.cycles_to_time(c) < t {
            c + 1
        } else {
            c
        }
    }

    /// The analytic fabric this cycle network corresponds to (for
    /// apples-to-apples scheduled playback).
    #[must_use]
    pub fn fabric(&self) -> FabricConfig {
        let hz = self.clock.as_hz() as f64;
        FabricConfig::paper()
            .with_bank_channel_bw(pim_sim::Bandwidth::bytes_per_sec(
                (self.ring_bpc as f64 * hz) as u64,
            ))
            .with_chip_channel_bw(pim_sim::Bandwidth::bytes_per_sec(
                (self.dq_bpc as f64 * hz) as u64,
            ))
            .with_rank_bus_bw(pim_sim::Bandwidth::bytes_per_sec(
                (self.bus_bpc as f64 * hz) as u64,
            ))
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimnet::topology::{ChipLoc, Direction};

    #[test]
    fn paper_widths_match_table_iv_bandwidths() {
        let c = NocConfig::paper();
        // 2 B x 350 MHz = 0.7 GB/s, 3 B = 1.05 GB/s, 48 B = 16.8 GB/s.
        assert_eq!(c.fabric().bank_channel_bw.as_gbps(), 0.7);
        assert_eq!(c.fabric().chip_channel_bw.as_gbps(), 1.05);
        assert_eq!(c.fabric().rank_bus_bw.as_gbps(), 16.8);
    }

    #[test]
    fn capacities_by_resource() {
        let c = NocConfig::paper();
        let chip = ChipLoc {
            channel: 0,
            rank: 0,
            chip: 0,
        };
        assert_eq!(
            c.capacity(&Resource::RingSegment {
                chip,
                from_bank: 0,
                dir: Direction::East
            }),
            2
        );
        assert_eq!(c.capacity(&Resource::ChipTx { chip }), 3);
        assert_eq!(c.capacity(&Resource::RankBus { channel: 0 }), 48);
    }

    #[test]
    fn cycle_time_roundtrip() {
        let c = NocConfig::paper();
        let t = c.cycles_to_time(350);
        assert_eq!(t, SimTime::from_ns(1000));
        assert_eq!(c.time_to_cycles(t), 350);
        // Rounding up: 1 ps needs one whole cycle.
        assert_eq!(c.time_to_cycles(SimTime::from_ps(1)), 1);
    }
}
