//! Simulation results.

use std::fmt;

use pim_sim::SimTime;

/// Outcome of one network simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocReport {
    /// End-to-end completion time (last byte delivered), including the
    /// compute-ready offsets.
    pub completion: SimTime,
    /// Simulated network cycles.
    pub cycles: u64,
    /// Packets delivered.
    pub packets: usize,
    /// Total bytes injected into the network.
    pub injected_bytes: u64,
    /// Contention cost of dynamic flow control, in packet-cycles: cycles a
    /// packet spent queued behind a busy link plus cycles an allocated link
    /// could not move a byte (head-of-line blocking / exhausted credits).
    /// Zero under static scheduling, by construction.
    pub stall_cycles: u64,
    /// Median packet latency (release → last byte delivered). Zero in
    /// scheduled mode, where per-packet latencies are not simulated.
    pub p50_latency: SimTime,
    /// 99th-percentile packet latency; zero in scheduled mode.
    pub p99_latency: SimTime,
    /// Busy fraction of the most-utilized link over the run ([0, 1]);
    /// zero in scheduled mode.
    pub max_link_utilization: f64,
}

impl NocReport {
    /// Mean injected bandwidth over the whole run, bytes per cycle.
    #[must_use]
    pub fn mean_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.injected_bytes as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for NocReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cycles, {} packets, {} B, {} stall cycles)",
            self.completion, self.cycles, self.packets, self.injected_bytes, self.stall_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, bytes: u64) -> NocReport {
        NocReport {
            completion: SimTime::from_us(1),
            cycles,
            packets: 2,
            injected_bytes: bytes,
            stall_cycles: 0,
            p50_latency: SimTime::ZERO,
            p99_latency: SimTime::ZERO,
            max_link_utilization: 0.0,
        }
    }

    #[test]
    fn mean_bandwidth() {
        let r = report(100, 400);
        assert_eq!(r.mean_bytes_per_cycle(), 4.0);
        assert!(r.to_string().contains("100 cycles"));
    }

    #[test]
    fn zero_cycles_is_safe() {
        let r = report(0, 0);
        assert_eq!(r.mean_bytes_per_cycle(), 0.0);
    }
}
