//! The DRAM packaging hierarchy: banks → chips → ranks → channels.
//!
//! PIMnet's multi-tier design mirrors this hierarchy exactly (inter-bank,
//! inter-chip, inter-rank networks), so everything above this module is
//! phrased in terms of [`PimGeometry`] coordinates.

use std::fmt;

/// Global, linear identifier of a DPU (equivalently: of a PIM bank, since
/// each bank hosts exactly one DPU).
///
/// IDs enumerate banks in packaging order: all banks of chip 0 of rank 0 of
/// channel 0 first, then chip 1, and so on. [`PimGeometry::coord`] converts
/// to a structured coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DpuId(pub u32);

impl DpuId {
    /// The raw linear index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DPU{}", self.0)
    }
}

/// Structured coordinate of a DPU within the packaging hierarchy.
///
/// All fields are indices *within the parent level*: `bank` is the bank index
/// within its chip, `chip` within its rank, `rank` within its channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DpuCoord {
    /// Memory channel index within the system.
    pub channel: u32,
    /// Rank (DIMM) index within the channel.
    pub rank: u32,
    /// DRAM chip index within the rank.
    pub chip: u32,
    /// Bank index within the chip.
    pub bank: u32,
}

impl fmt::Display for DpuCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/r{}/c{}/b{}",
            self.channel, self.rank, self.chip, self.bank
        )
    }
}

/// Shape of a PIM system: how many banks per chip, chips per rank, ranks per
/// channel, and channels in the system.
///
/// The paper's evaluation configuration (§III-B, Table VI) is 8 banks/chip ×
/// 8 chips/rank × 4 ranks/channel × 1 channel = 256 DPUs, available as
/// [`PimGeometry::paper`].
///
/// # Example
///
/// ```
/// use pim_arch::{DpuId, PimGeometry};
///
/// let g = PimGeometry::paper();
/// let c = g.coord(DpuId(200));
/// assert_eq!((c.rank, c.chip, c.bank), (3, 1, 0));
/// assert_eq!(g.id(c), DpuId(200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PimGeometry {
    /// PIM banks (= DPUs) per DRAM chip.
    pub banks_per_chip: u32,
    /// DRAM chips per rank.
    pub chips_per_rank: u32,
    /// Ranks (DIMMs) per memory channel.
    pub ranks_per_channel: u32,
    /// Memory channels in the system.
    pub channels: u32,
}

impl PimGeometry {
    /// Creates a geometry, validating that every level is non-empty.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        banks_per_chip: u32,
        chips_per_rank: u32,
        ranks_per_channel: u32,
        channels: u32,
    ) -> Self {
        let g = PimGeometry {
            banks_per_chip,
            chips_per_rank,
            ranks_per_channel,
            channels,
        };
        assert!(
            banks_per_chip > 0 && chips_per_rank > 0 && ranks_per_channel > 0 && channels > 0,
            "PimGeometry::new: all dimensions must be non-zero, got {g:?}"
        );
        g
    }

    /// The paper's evaluation geometry: 8 banks/chip, 8 chips/rank,
    /// 4 ranks/channel, 1 channel (256 DPUs).
    #[must_use]
    pub fn paper() -> Self {
        PimGeometry::new(8, 8, 4, 1)
    }

    /// The real UPMEM server of Table II: 2560 DPUs across 20 PIM DIMMs.
    /// Modeled as 8 banks/chip × 16 chips/rank × 2 ranks/channel ×
    /// 10 channels.
    #[must_use]
    pub fn upmem_server() -> Self {
        PimGeometry::new(8, 16, 2, 10)
    }

    /// A geometry spanning `n` DPUs on a single chain of the paper's shape,
    /// used for the weak-scaling sweeps (8 → 16 → ... → 256 DPUs). Fills
    /// banks first, then chips, then ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two between 1 and 256.
    #[must_use]
    pub fn paper_scaled(n: u32) -> Self {
        assert!(
            n.is_power_of_two() && (1..=256).contains(&n),
            "paper_scaled: DPU count must be a power of two in 1..=256, got {n}"
        );
        let banks = n.min(8);
        let chips = (n / banks).min(8);
        let ranks = n / (banks * chips);
        PimGeometry::new(banks, chips.max(1), ranks.max(1), 1)
    }

    /// DPUs per rank.
    #[must_use]
    pub fn dpus_per_rank(&self) -> u32 {
        self.banks_per_chip * self.chips_per_rank
    }

    /// DPUs per memory channel.
    #[must_use]
    pub fn dpus_per_channel(&self) -> u32 {
        self.dpus_per_rank() * self.ranks_per_channel
    }

    /// Total DPUs in the system.
    #[must_use]
    pub fn total_dpus(&self) -> u32 {
        self.dpus_per_channel() * self.channels
    }

    /// Total DRAM chips in the system.
    #[must_use]
    pub fn total_chips(&self) -> u32 {
        self.chips_per_rank * self.ranks_per_channel * self.channels
    }

    /// Total ranks in the system.
    #[must_use]
    pub fn total_ranks(&self) -> u32 {
        self.ranks_per_channel * self.channels
    }

    /// Converts a global DPU id to a structured coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this geometry.
    #[must_use]
    pub fn coord(&self, id: DpuId) -> DpuCoord {
        assert!(
            id.0 < self.total_dpus(),
            "DpuId {id} out of range for geometry with {} DPUs",
            self.total_dpus()
        );
        let mut rest = id.0;
        let bank = rest % self.banks_per_chip;
        rest /= self.banks_per_chip;
        let chip = rest % self.chips_per_rank;
        rest /= self.chips_per_rank;
        let rank = rest % self.ranks_per_channel;
        let channel = rest / self.ranks_per_channel;
        DpuCoord {
            channel,
            rank,
            chip,
            bank,
        }
    }

    /// Converts a structured coordinate back to a global DPU id.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate component is out of range.
    #[must_use]
    pub fn id(&self, c: DpuCoord) -> DpuId {
        assert!(
            c.bank < self.banks_per_chip
                && c.chip < self.chips_per_rank
                && c.rank < self.ranks_per_channel
                && c.channel < self.channels,
            "coordinate {c} out of range for {self:?}"
        );
        DpuId(
            ((c.channel * self.ranks_per_channel + c.rank) * self.chips_per_rank + c.chip)
                * self.banks_per_chip
                + c.bank,
        )
    }

    /// Iterates over every DPU id in the system, in linear order.
    pub fn dpus(&self) -> impl Iterator<Item = DpuId> {
        (0..self.total_dpus()).map(DpuId)
    }

    /// True iff the two DPUs sit on the same DRAM chip.
    #[must_use]
    pub fn same_chip(&self, a: DpuId, b: DpuId) -> bool {
        let (ca, cb) = (self.coord(a), self.coord(b));
        (ca.channel, ca.rank, ca.chip) == (cb.channel, cb.rank, cb.chip)
    }

    /// True iff the two DPUs sit on the same rank (DIMM).
    #[must_use]
    pub fn same_rank(&self, a: DpuId, b: DpuId) -> bool {
        let (ca, cb) = (self.coord(a), self.coord(b));
        (ca.channel, ca.rank) == (cb.channel, cb.rank)
    }

    /// True iff the two DPUs share a memory channel (the scope PIMnet can
    /// connect; anything beyond still goes through the host).
    #[must_use]
    pub fn same_channel(&self, a: DpuId, b: DpuId) -> bool {
        self.coord(a).channel == self.coord(b).channel
    }
}

impl Default for PimGeometry {
    fn default() -> Self {
        PimGeometry::paper()
    }
}

impl fmt::Display for PimGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} banks/chip x {} chips/rank x {} ranks/ch x {} ch ({} DPUs)",
            self.banks_per_chip,
            self.chips_per_rank,
            self.ranks_per_channel,
            self.channels,
            self.total_dpus()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_counts() {
        let g = PimGeometry::paper();
        assert_eq!(g.total_dpus(), 256);
        assert_eq!(g.dpus_per_rank(), 64);
        assert_eq!(g.dpus_per_channel(), 256);
        assert_eq!(g.total_chips(), 32);
        assert_eq!(g.total_ranks(), 4);
    }

    #[test]
    fn upmem_server_matches_table_ii() {
        let g = PimGeometry::upmem_server();
        assert_eq!(g.total_dpus(), 2560);
        assert_eq!(g.total_ranks(), 20);
    }

    #[test]
    fn coord_id_roundtrip_everywhere() {
        let g = PimGeometry::new(3, 5, 2, 2);
        for id in g.dpus() {
            assert_eq!(g.id(g.coord(id)), id);
        }
    }

    #[test]
    fn linear_order_fills_banks_first() {
        let g = PimGeometry::paper();
        assert_eq!(
            g.coord(DpuId(0)),
            DpuCoord {
                channel: 0,
                rank: 0,
                chip: 0,
                bank: 0
            }
        );
        assert_eq!(g.coord(DpuId(7)).bank, 7);
        assert_eq!(
            g.coord(DpuId(8)),
            DpuCoord {
                channel: 0,
                rank: 0,
                chip: 1,
                bank: 0
            }
        );
        assert_eq!(g.coord(DpuId(64)).rank, 1);
        assert_eq!(
            g.coord(DpuId(255)),
            DpuCoord {
                channel: 0,
                rank: 3,
                chip: 7,
                bank: 7
            }
        );
    }

    #[test]
    fn scoping_predicates() {
        let g = PimGeometry::paper();
        assert!(g.same_chip(DpuId(0), DpuId(7)));
        assert!(!g.same_chip(DpuId(0), DpuId(8)));
        assert!(g.same_rank(DpuId(0), DpuId(63)));
        assert!(!g.same_rank(DpuId(0), DpuId(64)));
        assert!(g.same_channel(DpuId(0), DpuId(255)));
    }

    #[test]
    fn paper_scaled_shapes() {
        assert_eq!(PimGeometry::paper_scaled(8).total_dpus(), 8);
        assert_eq!(PimGeometry::paper_scaled(8).banks_per_chip, 8);
        let g64 = PimGeometry::paper_scaled(64);
        assert_eq!(
            (
                g64.banks_per_chip,
                g64.chips_per_rank,
                g64.ranks_per_channel
            ),
            (8, 8, 1)
        );
        let g256 = PimGeometry::paper_scaled(256);
        assert_eq!(g256, PimGeometry::paper());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let g = PimGeometry::paper();
        let _ = g.coord(DpuId(256));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = PimGeometry::new(0, 8, 4, 1);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            PimGeometry::paper().to_string(),
            "8 banks/chip x 8 chips/rank x 4 ranks/ch x 1 ch (256 DPUs)"
        );
        assert_eq!(DpuId(3).to_string(), "DPU3");
        assert_eq!(
            DpuCoord {
                channel: 0,
                rank: 1,
                chip: 2,
                bank: 3
            }
            .to_string(),
            "ch0/r1/c2/b3"
        );
    }
}
