//! Whole-system configuration presets (paper Tables II and VI).

use pim_sim::Bandwidth;

use crate::compute::{ComputePreset, DpuModel};
use crate::geometry::PimGeometry;
use crate::hostlink::HostLink;
use crate::memory::{DmaModel, MemoryParams};

/// Complete description of a PIM system's compute/memory substrate.
///
/// The network fabric (tier bandwidths, topologies) is configured separately
/// in the `pimnet` crate; `SystemConfig` is everything *except* the
/// interconnect, i.e. what both PIMnet and every baseline share.
///
/// # Example
///
/// ```
/// use pim_arch::{ComputePreset, SystemConfig};
///
/// // Fig 15: the paper's system, but with GDDR6-AiM-class compute.
/// let cfg = SystemConfig::paper().with_compute(ComputePreset::Gddr6Aim);
/// assert_eq!(cfg.dpu.throughput_scale, 180);
/// assert_eq!(cfg.geometry.total_dpus(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Packaging hierarchy (banks/chips/ranks/channels).
    pub geometry: PimGeometry,
    /// Per-DPU compute model.
    pub dpu: DpuModel,
    /// Per-bank memory capacities.
    pub memory: MemoryParams,
    /// Per-bank MRAM↔WRAM DMA engine.
    pub dma: DmaModel,
    /// Host↔PIM path (per channel).
    pub host: HostLink,
    /// Buffer-chip ↔ PIM-chip aggregate bandwidth within one rank
    /// (19.2 GB/s, from DIMM-Link \[89\]); used by the DIMM-Link and
    /// NDPBridge comparison backends.
    pub buffer_chip_bw: Bandwidth,
}

impl SystemConfig {
    /// The paper's simulated evaluation system (Table VI): 256 DPUs on one
    /// DDR4-2400 channel, 350 MHz DPUs, measured host bandwidths.
    #[must_use]
    pub fn paper() -> Self {
        SystemConfig {
            geometry: PimGeometry::paper(),
            dpu: DpuModel::upmem(),
            memory: MemoryParams::upmem(),
            dma: DmaModel::upmem(),
            host: HostLink::paper(),
            buffer_chip_bw: Bandwidth::gbps(19.2),
        }
    }

    /// The real UPMEM server of Table II (2560 DPUs over 10 channels), for
    /// the characterization-style experiments.
    #[must_use]
    pub fn upmem_server() -> Self {
        SystemConfig {
            geometry: PimGeometry::upmem_server(),
            ..SystemConfig::paper()
        }
    }

    /// The paper system scaled down/up to `n` DPUs on one channel (weak
    /// scaling sweeps, Figs 3 and 12).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two in `1..=256`.
    #[must_use]
    pub fn paper_scaled(n: u32) -> Self {
        SystemConfig {
            geometry: PimGeometry::paper_scaled(n),
            ..SystemConfig::paper()
        }
    }

    /// Replaces the geometry.
    #[must_use]
    pub fn with_geometry(mut self, geometry: PimGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Replaces the DPU compute model with a device preset (Fig 15).
    #[must_use]
    pub fn with_compute(mut self, preset: ComputePreset) -> Self {
        self.dpu = DpuModel::preset(preset);
        self
    }

    /// Replaces the host link model.
    #[must_use]
    pub fn with_host(mut self, host: HostLink) -> Self {
        self.host = host;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_the_table_vi_system() {
        let c = SystemConfig::paper();
        assert_eq!(c.geometry.total_dpus(), 256);
        assert_eq!(c.geometry.ranks_per_channel, 4);
        assert_eq!(c.buffer_chip_bw.as_gbps(), 19.2);
        assert_eq!(c.dpu.preset, ComputePreset::UpmemDpu);
    }

    #[test]
    fn upmem_server_preset_is_table_ii_scale() {
        assert_eq!(SystemConfig::upmem_server().geometry.total_dpus(), 2560);
    }

    #[test]
    fn builder_methods_replace_fields() {
        let c = SystemConfig::paper()
            .with_geometry(PimGeometry::paper_scaled(64))
            .with_compute(ComputePreset::NextGenDpu);
        assert_eq!(c.geometry.total_dpus(), 64);
        assert_eq!(c.dpu.throughput_scale, 1000);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper());
    }
}
