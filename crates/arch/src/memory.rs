//! Per-bank memory resources (MRAM, WRAM, IRAM) and the MRAM↔WRAM DMA.
//!
//! Each UPMEM PIM bank pairs a DPU with a 64 MiB DRAM bank (MRAM), a 64 KiB
//! software-managed scratchpad (WRAM) and a 24 KiB instruction memory
//! (IRAM). Only WRAM-resident data can feed the pipeline; a per-bank DMA
//! engine moves data between MRAM and WRAM.
//!
//! For PIMnet this matters because collective payloads are sourced from and
//! sunk into WRAM (§V-D): when a collective's working set exceeds the WRAM
//! budget, the overflow must be staged through MRAM, which the paper reports
//! as the `Mem` component of Fig 11's communication-time breakdown.

use pim_sim::{Bandwidth, Bytes, SimTime};

/// Capacities of one PIM bank's memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryParams {
    /// Main DRAM bank (MRAM): 64 MiB on UPMEM.
    pub mram: Bytes,
    /// Software-managed scratchpad (WRAM): 64 KiB on UPMEM.
    pub wram: Bytes,
    /// Instruction memory (IRAM): 24 KiB on UPMEM.
    pub iram: Bytes,
    /// WRAM reserved for the kernel's own stack/locals; the remainder is the
    /// collective staging budget.
    pub wram_reserved: Bytes,
}

impl MemoryParams {
    /// The UPMEM bank memory configuration.
    #[must_use]
    pub fn upmem() -> Self {
        MemoryParams {
            mram: Bytes::mib(64),
            wram: Bytes::kib(64),
            iram: Bytes::kib(24),
            wram_reserved: Bytes::kib(16),
        }
    }

    /// WRAM bytes available for staging collective payloads.
    #[must_use]
    pub fn wram_for_collectives(&self) -> Bytes {
        self.wram.saturating_sub(self.wram_reserved)
    }

    /// How many bytes of a `payload` overflow the WRAM staging budget and
    /// must round-trip through MRAM.
    #[must_use]
    pub fn wram_overflow(&self, payload: Bytes) -> Bytes {
        payload.saturating_sub(self.wram_for_collectives())
    }
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams::upmem()
    }
}

/// Timing model of the per-bank MRAM↔WRAM DMA engine.
///
/// Gómez-Luna et al. \[39\] measured ~628 MB/s sustained for large MRAM→WRAM
/// transfers on real hardware; that is the default here.
///
/// # Example
///
/// ```
/// use pim_arch::DmaModel;
/// use pim_sim::Bytes;
///
/// let dma = DmaModel::upmem();
/// let t = dma.transfer_time(Bytes::kib(48));
/// assert!(t.as_us() > 70.0 && t.as_us() < 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmaModel {
    /// Sustained MRAM↔WRAM bandwidth of one bank's DMA engine.
    pub bandwidth: Bandwidth,
    /// Fixed per-transfer setup cost (descriptor programming).
    pub setup: SimTime,
    /// Largest single DMA transfer (2 KiB on UPMEM); longer moves are split
    /// and each split pays `setup`.
    pub max_transfer: Bytes,
}

impl DmaModel {
    /// The UPMEM DMA engine: 628 MB/s sustained, 2 KiB max transfer, ~0.1 µs
    /// setup per descriptor.
    #[must_use]
    pub fn upmem() -> Self {
        DmaModel {
            bandwidth: Bandwidth::mbps(628.0),
            setup: SimTime::from_ns(100),
            max_transfer: Bytes::kib(2),
        }
    }

    /// Time to move `bytes` between MRAM and WRAM (either direction),
    /// including per-descriptor setup for each `max_transfer` split.
    #[must_use]
    pub fn transfer_time(&self, bytes: Bytes) -> SimTime {
        if bytes.is_zero() {
            return SimTime::ZERO;
        }
        let descriptors = bytes.div_ceil(self.max_transfer);
        self.bandwidth.transfer_time(bytes) + self.setup * descriptors
    }
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_capacities() {
        let m = MemoryParams::upmem();
        assert_eq!(m.mram, Bytes::mib(64));
        assert_eq!(m.wram, Bytes::kib(64));
        assert_eq!(m.iram, Bytes::kib(24));
        assert_eq!(m.wram_for_collectives(), Bytes::kib(48));
    }

    #[test]
    fn overflow_accounting() {
        let m = MemoryParams::upmem();
        assert_eq!(m.wram_overflow(Bytes::kib(32)), Bytes::ZERO);
        assert_eq!(m.wram_overflow(Bytes::kib(48)), Bytes::ZERO);
        assert_eq!(m.wram_overflow(Bytes::kib(64)), Bytes::kib(16));
    }

    #[test]
    fn dma_zero_bytes_is_free() {
        assert_eq!(DmaModel::upmem().transfer_time(Bytes::ZERO), SimTime::ZERO);
    }

    #[test]
    fn dma_splits_pay_setup() {
        let dma = DmaModel::upmem();
        // 4 KiB = two 2 KiB descriptors -> 2 setups.
        let t = dma.transfer_time(Bytes::kib(4));
        let serialization = dma.bandwidth.transfer_time(Bytes::kib(4));
        assert_eq!(t, serialization + dma.setup * 2);
    }

    #[test]
    fn dma_monotone_in_bytes() {
        let dma = DmaModel::upmem();
        let mut prev = SimTime::ZERO;
        for kib in [1u64, 2, 4, 8, 16, 32, 64] {
            let t = dma.transfer_time(Bytes::kib(kib));
            assert!(t > prev);
            prev = t;
        }
    }
}
