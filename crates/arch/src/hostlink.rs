//! The host↔PIM communication path that baseline collectives traverse.
//!
//! In commodity PIM, a DPU can only reach another DPU through the host CPU:
//! the host reads the data over the DDR interface, optionally computes
//! (e.g., the reduction of an AllReduce), and writes results back. This
//! module models that path with the bandwidths measured on real UPMEM
//! hardware by Gómez-Luna et al. \[39\] and quoted in the paper's Table VI,
//! plus the host software overhead per UPMEM API call that PID-Comm \[67\]
//! identified (and that the paper's "Software (Ideal)" comparison sets to
//! zero).

use pim_sim::{Bandwidth, Bytes, SimTime};

/// Bandwidths and software overheads of the host↔PIM path (per memory
/// channel).
///
/// # Example
///
/// ```
/// use pim_arch::HostLink;
/// use pim_sim::Bytes;
///
/// let host = HostLink::paper();
/// // Gathering 8 MiB of partial sums from the PIM side takes ~1.8 ms of
/// // pure serialization on the 4.74 GB/s PIM->CPU path.
/// let t = host.pim_to_cpu.transfer_time(Bytes::mib(8));
/// assert!((t.as_ms() - 1.77).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostLink {
    /// PIM → CPU gather bandwidth (4.74 GB/s measured \[39\]).
    pub pim_to_cpu: Bandwidth,
    /// CPU → PIM scatter bandwidth (6.68 GB/s measured \[39\]).
    pub cpu_to_pim: Bandwidth,
    /// CPU → PIM broadcast bandwidth when the same data goes to every rank
    /// (16.88 GB/s measured \[39\]).
    pub cpu_broadcast: Bandwidth,
    /// Host-side reduction throughput (memory-bound elementwise sum on the
    /// Xeon host).
    pub host_reduce_bw: Bandwidth,
    /// Host software overhead per UPMEM API transfer call (buffer
    /// marshalling, rank launch). The paper's baseline pays this; the
    /// idealized software backend sets it to zero.
    pub per_call_overhead: SimTime,
    /// Fixed host software overhead per *DPU buffer* touched by a transfer
    /// call (descriptor setup). Zero in the idealized software model.
    pub per_dpu_overhead: SimTime,
    /// Throughput of the host-side data *marshalling* pass: the UPMEM SDK
    /// reorders every DPU's buffer in host memory before/after the DMA,
    /// which PID-Comm \[67\] identified as the dominant collective cost.
    /// Applied to every byte whose per-DPU layout differs between host and
    /// PIM (gathers, scatters of distinct data). Effectively infinite in
    /// the idealized software model.
    pub marshal_bw: Bandwidth,
    /// Kernel-launch overhead when the host must relaunch PIM kernels around
    /// a collective.
    pub launch_overhead: SimTime,
}

impl HostLink {
    /// The paper's Table VI host path.
    #[must_use]
    pub fn paper() -> Self {
        HostLink {
            pim_to_cpu: Bandwidth::gbps(4.74),
            cpu_to_pim: Bandwidth::gbps(6.68),
            cpu_broadcast: Bandwidth::gbps(16.88),
            host_reduce_bw: Bandwidth::gbps(25.6),
            per_call_overhead: SimTime::from_us(25),
            per_dpu_overhead: SimTime::from_us(2),
            marshal_bw: Bandwidth::gbps(1.2),
            launch_overhead: SimTime::from_us(50),
        }
    }

    /// Host-side marshalling time for `bytes` of per-DPU-reordered data.
    #[must_use]
    pub fn marshal_time(&self, bytes: Bytes) -> SimTime {
        self.marshal_bw.transfer_time(bytes)
    }

    /// The same link with *all* software overheads removed — the paper's
    /// "Software (Ideal)" model (an idealized PID-Comm).
    #[must_use]
    pub fn ideal(self) -> Self {
        HostLink {
            per_call_overhead: SimTime::ZERO,
            per_dpu_overhead: SimTime::ZERO,
            launch_overhead: SimTime::ZERO,
            host_reduce_bw: Bandwidth::gbps(1_000.0), // reduction is free
            marshal_bw: Bandwidth::gbps(1_000.0),     // no rearrangement cost
            ..self
        }
    }

    /// Time for the host to gather `bytes` from the PIM side of one channel
    /// (serialization only; add overheads separately).
    #[must_use]
    pub fn gather_time(&self, bytes: Bytes) -> SimTime {
        self.pim_to_cpu.transfer_time(bytes)
    }

    /// Time for the host to scatter `bytes` of distinct data to the PIM side.
    #[must_use]
    pub fn scatter_time(&self, bytes: Bytes) -> SimTime {
        self.cpu_to_pim.transfer_time(bytes)
    }

    /// Time for the host to broadcast `bytes` of identical data to all ranks.
    #[must_use]
    pub fn broadcast_time(&self, bytes: Bytes) -> SimTime {
        self.cpu_broadcast.transfer_time(bytes)
    }

    /// Time for the host CPU to reduce `bytes` of gathered partial data.
    #[must_use]
    pub fn reduce_time(&self, bytes: Bytes) -> SimTime {
        self.host_reduce_bw.transfer_time(bytes)
    }
}

impl Default for HostLink {
    fn default() -> Self {
        HostLink::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths_match_table_vi() {
        let h = HostLink::paper();
        assert_eq!(h.pim_to_cpu.as_gbps(), 4.74);
        assert_eq!(h.cpu_to_pim.as_gbps(), 6.68);
        assert_eq!(h.cpu_broadcast.as_gbps(), 16.88);
    }

    #[test]
    fn ideal_removes_overheads_only() {
        let h = HostLink::paper().ideal();
        assert_eq!(h.per_call_overhead, SimTime::ZERO);
        assert_eq!(h.per_dpu_overhead, SimTime::ZERO);
        assert!(
            h.marshal_time(Bytes::mib(8)) < HostLink::paper().marshal_time(Bytes::mib(8)) / 100
        );
        assert_eq!(h.launch_overhead, SimTime::ZERO);
        // Link bandwidths are physics, not software; they stay.
        assert_eq!(h.pim_to_cpu, HostLink::paper().pim_to_cpu);
    }

    #[test]
    fn broadcast_beats_scatter_for_same_bytes() {
        let h = HostLink::paper();
        let b = Bytes::mib(1);
        assert!(h.broadcast_time(b) < h.scatter_time(b));
    }

    #[test]
    fn gather_is_the_slowest_direction() {
        let h = HostLink::paper();
        let b = Bytes::mib(1);
        assert!(h.gather_time(b) > h.scatter_time(b));
    }
}
