//! Per-DPU compute timing model.
//!
//! UPMEM DPUs are 32-bit in-order cores with a 14-stage pipeline and up to
//! 24 hardware threads (tasklets); with ≥11 active tasklets the pipeline
//! retires one instruction per cycle, so DPU-level throughput is well
//! approximated by *total instructions / frequency*. Crucially, the DPU has
//! **no native 32-bit multiplier**: multiplication is emulated in software
//! (§VI-B of the paper attributes MLP/NTT's large compute fraction to this),
//! which this model captures with a per-multiply instruction cost.
//!
//! The paper's Fig 15 asks what PIMnet buys when the PIM compute is much
//! faster (HBM-PIM, GDDR6-AiM with ~180× UPMEM throughput, next-gen DPUs);
//! [`ComputePreset`] provides those device models.

use std::fmt;

use pim_sim::{Cycles, Frequency, SimTime};

/// Instruction-count summary of a per-DPU kernel (or kernel phase).
///
/// Counts are *totals across all tasklets of one DPU*. The model converts
/// them to cycles through [`DpuModel::compute_time`].
///
/// # Example
///
/// ```
/// use pim_arch::{DpuModel, OpCounts};
///
/// // One MLP layer slice: 1024 multiply-accumulates on one DPU.
/// let ops = OpCounts::new().with_muls(1024).with_adds(1024).with_loads(2048);
/// let t = DpuModel::upmem().compute_time(&ops);
/// assert!(t.as_us() > 150.0); // multiplies dominate: 64 cycles each
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpCounts {
    /// Integer/float additions, subtractions, comparisons (single-issue ops).
    pub adds: u64,
    /// 32-bit multiplications (software-emulated on UPMEM).
    pub muls: u64,
    /// WRAM loads.
    pub loads: u64,
    /// WRAM stores.
    pub stores: u64,
    /// Any other single-cycle instructions (address math, branches, ...).
    pub other: u64,
}

impl OpCounts {
    /// An empty (zero-work) kernel.
    #[must_use]
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Sets the addition count.
    #[must_use]
    pub fn with_adds(mut self, n: u64) -> Self {
        self.adds = n;
        self
    }

    /// Sets the multiplication count.
    #[must_use]
    pub fn with_muls(mut self, n: u64) -> Self {
        self.muls = n;
        self
    }

    /// Sets the load count.
    #[must_use]
    pub fn with_loads(mut self, n: u64) -> Self {
        self.loads = n;
        self
    }

    /// Sets the store count.
    #[must_use]
    pub fn with_stores(mut self, n: u64) -> Self {
        self.stores = n;
        self
    }

    /// Sets the other-instruction count.
    #[must_use]
    pub fn with_other(mut self, n: u64) -> Self {
        self.other = n;
        self
    }

    /// Element-wise sum of two kernels.
    #[must_use]
    pub fn merged(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            adds: self.adds + rhs.adds,
            muls: self.muls + rhs.muls,
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
            other: self.other + rhs.other,
        }
    }

    /// Kernel scaled by an iteration count.
    #[must_use]
    pub fn repeated(self, n: u64) -> OpCounts {
        OpCounts {
            adds: self.adds * n,
            muls: self.muls * n,
            loads: self.loads * n,
            stores: self.stores * n,
            other: self.other * n,
        }
    }

    /// Arithmetic operations (adds + muls) — the numerator of arithmetic
    /// intensity in the roofline models.
    #[must_use]
    pub fn arithmetic_ops(&self) -> u64 {
        self.adds + self.muls
    }
}

/// Which commercial PIM device a [`DpuModel`] imitates (paper Fig 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputePreset {
    /// UPMEM DPU: 350 MHz, software-emulated multiply (the baseline).
    UpmemDpu,
    /// Samsung HBM-PIM (FIMDRAM): hardware FP16 MACs; modeled as ~120× UPMEM
    /// effective multiply-accumulate throughput.
    HbmPim,
    /// SK hynix GDDR6-AiM: 1 TFLOPS MAC; the paper cites ~180× UPMEM compute
    /// throughput \[39\].
    Gddr6Aim,
    /// Next-generation UPMEM DPU (5–8 TFLOPS/chip, native FP); modeled as
    /// 1000× UPMEM.
    NextGenDpu,
}

impl fmt::Display for ComputePreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComputePreset::UpmemDpu => "UPMEM DPU",
            ComputePreset::HbmPim => "HBM-PIM",
            ComputePreset::Gddr6Aim => "GDDR6-AiM",
            ComputePreset::NextGenDpu => "next-gen DPU",
        };
        f.write_str(s)
    }
}

/// Timing model of one DPU (one PIM bank's compute unit).
///
/// `throughput_scale` divides the instruction count before converting to
/// cycles; it is 1 for the UPMEM DPU and >1 for the fixed-function PIM
/// devices of Fig 15 whose MAC arrays retire many operations per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DpuModel {
    /// Core clock (350 MHz for UPMEM).
    pub frequency: Frequency,
    /// Hardware thread count (24 tasklets on UPMEM). Informational: the
    /// pipeline model assumes enough tasklets to saturate issue.
    pub tasklets: u32,
    /// Pipeline cost of an add-class instruction, in cycles.
    pub add_cycles: u64,
    /// Effective pipeline cost of a (software-emulated) 32-bit multiply,
    /// in cycles, including operand staging.
    pub mul_cycles: u64,
    /// Pipeline cost of a WRAM load/store, in cycles.
    pub mem_cycles: u64,
    /// Operations retired per issued "instruction slot" (SIMD/MAC-array
    /// factor); 1 for UPMEM.
    pub throughput_scale: u64,
    /// Which device this models.
    pub preset: ComputePreset,
}

impl DpuModel {
    /// The UPMEM DPU model: 350 MHz, 24 tasklets, and a 64-cycle effective
    /// 32-bit multiply (the software `__mulsi3` shift-add loop plus operand
    /// staging; PrIM \[39\] reports 30-90 cycles depending on operand width).
    #[must_use]
    pub fn upmem() -> Self {
        DpuModel {
            frequency: Frequency::mhz(350),
            tasklets: 24,
            add_cycles: 1,
            mul_cycles: 64,
            mem_cycles: 1,
            throughput_scale: 1,
            preset: ComputePreset::UpmemDpu,
        }
    }

    /// Builds the model for an alternative PIM device (paper Fig 15).
    #[must_use]
    pub fn preset(preset: ComputePreset) -> Self {
        let upmem = DpuModel::upmem();
        match preset {
            ComputePreset::UpmemDpu => upmem,
            ComputePreset::HbmPim => DpuModel {
                mul_cycles: 1,
                throughput_scale: 120,
                preset,
                ..upmem
            },
            ComputePreset::Gddr6Aim => DpuModel {
                mul_cycles: 1,
                throughput_scale: 180,
                preset,
                ..upmem
            },
            ComputePreset::NextGenDpu => DpuModel {
                mul_cycles: 1,
                throughput_scale: 1000,
                preset,
                ..upmem
            },
        }
    }

    /// Total pipeline cycles for a kernel on this DPU.
    #[must_use]
    pub fn compute_cycles(&self, ops: &OpCounts) -> Cycles {
        let raw = ops.adds * self.add_cycles
            + ops.muls * self.mul_cycles
            + (ops.loads + ops.stores) * self.mem_cycles
            + ops.other;
        Cycles::new(raw.div_ceil(self.throughput_scale))
    }

    /// Wall-clock time for a kernel on this DPU.
    #[must_use]
    pub fn compute_time(&self, ops: &OpCounts) -> SimTime {
        self.frequency.cycles_to_time(self.compute_cycles(ops))
    }

    /// Peak arithmetic throughput of one DPU in operations per second
    /// (add-class ops; the roofline ceiling).
    #[must_use]
    pub fn peak_ops_per_sec(&self) -> f64 {
        self.frequency.as_hz() as f64 * self.throughput_scale as f64 / self.add_cycles as f64
    }
}

impl Default for DpuModel {
    fn default() -> Self {
        DpuModel::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_multiply_is_expensive() {
        let m = DpuModel::upmem();
        let add_only = OpCounts::new().with_adds(1000);
        let mul_only = OpCounts::new().with_muls(1000);
        assert_eq!(m.compute_cycles(&add_only), Cycles::new(1000));
        assert_eq!(m.compute_cycles(&mul_only), Cycles::new(64_000));
        assert!(m.compute_time(&mul_only) > m.compute_time(&add_only) * 20);
    }

    #[test]
    fn aim_is_about_180x_upmem_on_macs() {
        let upmem = DpuModel::upmem();
        let aim = DpuModel::preset(ComputePreset::Gddr6Aim);
        let macs = OpCounts::new().with_muls(100_000).with_adds(100_000);
        let ratio = upmem.compute_time(&macs).ratio(aim.compute_time(&macs));
        // 65 cycles/MAC on UPMEM vs 2/180 cycles/MAC on AiM >> 180x raw;
        // what matters for Fig 15 is "two to three orders of magnitude".
        assert!(ratio > 180.0, "ratio = {ratio}");
    }

    #[test]
    fn op_counts_merge_and_repeat() {
        let a = OpCounts::new().with_adds(1).with_muls(2).with_loads(3);
        let b = OpCounts::new().with_adds(10).with_stores(5).with_other(7);
        let m = a.merged(b);
        assert_eq!(
            (m.adds, m.muls, m.loads, m.stores, m.other),
            (11, 2, 3, 5, 7)
        );
        let r = a.repeated(4);
        assert_eq!((r.adds, r.muls, r.loads), (4, 8, 12));
        assert_eq!(m.arithmetic_ops(), 13);
    }

    #[test]
    fn throughput_scale_divides_rounding_up() {
        let m = DpuModel::preset(ComputePreset::HbmPim);
        let ops = OpCounts::new().with_adds(121);
        assert_eq!(m.compute_cycles(&ops), Cycles::new(2)); // ceil(121/120)
    }

    #[test]
    fn peak_ops_per_sec_upmem() {
        let m = DpuModel::upmem();
        assert_eq!(m.peak_ops_per_sec(), 350e6);
    }

    #[test]
    fn zero_work_takes_zero_time() {
        let m = DpuModel::upmem();
        assert_eq!(m.compute_time(&OpCounts::new()), SimTime::ZERO);
    }

    #[test]
    fn preset_display() {
        assert_eq!(ComputePreset::Gddr6Aim.to_string(), "GDDR6-AiM");
    }
}
