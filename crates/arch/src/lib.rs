//! UPMEM-like processing-in-memory (PIM) architecture model.
//!
//! This crate models the *compute* and *memory* side of a bank-level PIM
//! system in the style of the UPMEM DPU architecture the PIMnet paper builds
//! on (Devaux, Hot Chips 2019):
//!
//! * [`geometry::PimGeometry`] — the packaging hierarchy: banks within a
//!   chip, chips within a rank, ranks within a memory channel, channels in
//!   the system, with typed coordinates and global [`geometry::DpuId`]s;
//! * [`compute::DpuModel`] — a per-DPU timing model (350 MHz, 24 hardware
//!   tasklets, software-emulated 32-bit multiplication) plus presets for the
//!   alternative PIM devices of the paper's Fig 15 (HBM-PIM, GDDR6-AiM,
//!   next-generation DPUs);
//! * [`memory`] — WRAM/IRAM/MRAM capacities and the MRAM↔WRAM DMA engine;
//! * [`hostlink::HostLink`] — the measured host↔PIM bandwidths of the
//!   paper's Table VI (4.74 / 6.68 / 16.88 GB/s) and the host software
//!   overhead that baseline collectives pay per API call;
//! * [`config::SystemConfig`] — presets assembling all of the above for the
//!   paper's simulated system (Table VI) and the real UPMEM server
//!   (Table II).
//!
//! The interconnect itself (the paper's contribution) lives in the `pimnet`
//! crate; this crate is the substrate it runs on.
//!
//! # Example
//!
//! ```
//! use pim_arch::SystemConfig;
//!
//! // The paper's evaluation system: 256 DPUs on one memory channel.
//! let cfg = SystemConfig::paper();
//! assert_eq!(cfg.geometry.total_dpus(), 256);
//! assert_eq!(cfg.dpu.frequency.as_hz(), 350_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod config;
pub mod geometry;
pub mod hostlink;
pub mod memory;

pub use compute::{ComputePreset, DpuModel, OpCounts};
pub use config::SystemConfig;
pub use geometry::{DpuCoord, DpuId, PimGeometry};
pub use hostlink::HostLink;
pub use memory::{DmaModel, MemoryParams};
