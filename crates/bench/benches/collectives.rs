//! Micro-benchmarks: collective timing-model evaluation and functional
//! execution throughput.

use pim_arch::geometry::DpuId;
use pim_arch::SystemConfig;
use pim_sim::Bytes;
use pimnet::backends::{BaselineHostBackend, CollectiveBackend, PimnetBackend};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::exec::{ExecMachine, ReduceOp};
use pimnet::FabricConfig;
use pimnet_bench::bench;

fn timing_models() {
    let pim = PimnetBackend::paper();
    let base = BaselineHostBackend::new(SystemConfig::paper());
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let spec = CollectiveSpec::new(kind, Bytes::kib(32));
        bench(
            &format!("collective-timing/pimnet/{}", kind.abbrev()),
            100,
            || pim.collective(&spec).unwrap(),
        );
        bench(
            &format!("collective-timing/baseline/{}", kind.abbrev()),
            100,
            || base.collective(&spec).unwrap(),
        );
    }
}

fn functional_execution() {
    let pim = PimnetBackend::new(SystemConfig::paper(), FabricConfig::paper());
    for (kind, elems) in [
        (CollectiveKind::AllReduce, 1024usize),
        (CollectiveKind::ReduceScatter, 1024),
        (CollectiveKind::AllToAll, 256),
    ] {
        let spec = CollectiveSpec::new(kind, Bytes::new(elems as u64 * 4));
        let schedule = pim.schedule(&spec).unwrap();
        bench(
            &format!("functional-exec/run/{}", kind.abbrev()),
            10,
            || {
                let mut m = ExecMachine::init(&schedule, |id: DpuId| vec![u64::from(id.0); elems]);
                m.run(&schedule, ReduceOp::Sum);
                m
            },
        );
    }
}

fn main() {
    timing_models();
    functional_execution();
}
