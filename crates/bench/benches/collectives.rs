//! Criterion benches: collective timing-model evaluation and functional
//! execution throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pim_arch::geometry::DpuId;
use pim_arch::SystemConfig;
use pim_sim::Bytes;
use pimnet::backends::{BaselineHostBackend, CollectiveBackend, PimnetBackend};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::exec::{ExecMachine, ReduceOp};
use pimnet::FabricConfig;

fn timing_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("collective-timing");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let pim = PimnetBackend::paper();
    let base = BaselineHostBackend::new(SystemConfig::paper());
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let spec = CollectiveSpec::new(kind, Bytes::kib(32));
        g.bench_with_input(BenchmarkId::new("pimnet", kind.abbrev()), &spec, |b, s| {
            b.iter(|| pim.collective(s).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("baseline", kind.abbrev()), &spec, |b, s| {
            b.iter(|| base.collective(s).unwrap())
        });
    }
    g.finish();
}

fn functional_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional-exec");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let pim = PimnetBackend::new(SystemConfig::paper(), FabricConfig::paper());
    for (kind, elems) in [
        (CollectiveKind::AllReduce, 1024usize),
        (CollectiveKind::ReduceScatter, 1024),
        (CollectiveKind::AllToAll, 256),
    ] {
        let spec = CollectiveSpec::new(kind, Bytes::new(elems as u64 * 4));
        let schedule = pim.schedule(&spec).unwrap();
        g.bench_function(BenchmarkId::new("run", kind.abbrev()), |b| {
            b.iter(|| {
                let mut m =
                    ExecMachine::init(&schedule, |id: DpuId| vec![u64::from(id.0); elems]);
                m.run(&schedule, ReduceOp::Sum);
                m
            })
        });
    }
    g.finish();
}

criterion_group!(benches, timing_models, functional_execution);
criterion_main!(benches);
