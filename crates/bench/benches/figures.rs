//! Micro-benchmarks: reduced-size versions of the figure pipelines, so a
//! regression in any layer shows up in `cargo bench`.

use pim_arch::SystemConfig;
use pim_sim::Bytes;
use pimnet::backends::all_backends;
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::roofline::{compute_roofline, effective_collective_bandwidth};
use pimnet::FabricConfig;
use pimnet_bench::bench;

fn main() {
    bench("figures/fig12-mini-sweep", 50, || {
        let mut acc = 0.0f64;
        for n in [8u32, 32, 128] {
            let sys = SystemConfig::paper_scaled(n);
            let backends = all_backends(sys, FabricConfig::paper());
            let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(8));
            for backend in &backends {
                if backend.supports(spec.kind) {
                    acc += backend.collective(&spec).unwrap().total().as_secs_f64();
                }
            }
        }
        acc
    });
    bench("figures/fig02-rooflines", 50, || {
        let sys = SystemConfig::paper();
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
        let backends = all_backends(sys, FabricConfig::paper());
        let peak = compute_roofline(&sys).peak_ops_per_sec;
        let mut acc = peak;
        for backend in &backends {
            if backend.supports(spec.kind) {
                acc += effective_collective_bandwidth(backend.as_ref(), &spec).unwrap();
            }
        }
        acc
    });
}
