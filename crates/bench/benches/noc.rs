//! Micro-benchmarks: cycle-level NoC simulation throughput (the Fig 13
//! substrate).

use pim_arch::geometry::PimGeometry;
use pim_noc::{simulate_credit, simulate_scheduled, NocConfig};
use pim_sim::SimTime;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::CommSchedule;
use pimnet_bench::bench;

fn main() {
    let cfg = NocConfig::paper();
    for (kind, n, elems) in [
        (CollectiveKind::AllReduce, 16u32, 512usize),
        (CollectiveKind::AllToAll, 16, 512),
    ] {
        let geo = PimGeometry::paper_scaled(n);
        let s = CommSchedule::build(kind, &geo, elems, 4).unwrap();
        let ready = vec![SimTime::ZERO; n as usize];
        bench(&format!("noc/credit/{}", kind.abbrev()), 10, || {
            simulate_credit(&s, &ready, &cfg)
        });
        bench(&format!("noc/scheduled/{}", kind.abbrev()), 10, || {
            simulate_scheduled(&s, &ready, &cfg)
        });
    }
}
