//! Criterion benches: cycle-level NoC simulation throughput (the Fig 13
//! substrate).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pim_arch::geometry::PimGeometry;
use pim_noc::{simulate_credit, simulate_scheduled, NocConfig};
use pim_sim::SimTime;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::CommSchedule;

fn noc_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let cfg = NocConfig::paper();
    for (kind, n, elems) in [
        (CollectiveKind::AllReduce, 16u32, 512usize),
        (CollectiveKind::AllToAll, 16, 512),
    ] {
        let geo = PimGeometry::paper_scaled(n);
        let s = CommSchedule::build(kind, &geo, elems, 4).unwrap();
        let ready = vec![SimTime::ZERO; n as usize];
        g.bench_function(BenchmarkId::new("credit", kind.abbrev()), |b| {
            b.iter(|| simulate_credit(&s, &ready, &cfg))
        });
        g.bench_function(BenchmarkId::new("scheduled", kind.abbrev()), |b| {
            b.iter(|| simulate_scheduled(&s, &ready, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, noc_modes);
criterion_main!(benches);
