//! Criterion benches: the functional workload substrates (real NTT math,
//! real graph traversal) and end-to-end program timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pim_arch::SystemConfig;
use pim_workloads::graph::Graph;
use pim_workloads::program::run_program;
use pim_workloads::{mlp::Mlp, ntt, spmv::Spmv, Workload};
use pimnet::backends::PimnetBackend;

fn ntt_math(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for log_n in [10usize, 12] {
        let n = 1usize << log_n;
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        g.bench_function(BenchmarkId::new("forward", n), |b| {
            b.iter(|| {
                let mut x = data.clone();
                ntt::ntt(&mut x);
                x
            })
        });
    }
    let side = 64;
    let data: Vec<u64> = (0..(side * side) as u64).collect();
    g.bench_function("2d-4096", |b| b.iter(|| ntt::ntt_2d(&data, side, side)));
    g.finish();
}

fn graph_traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let graph = Graph::power_law(20_000, 5, 11);
    g.bench_function("bfs-20k", |b| b.iter(|| graph.bfs(graph.hub())));
    g.bench_function("cc-20k", |b| b.iter(|| graph.connected_components()));
    g.finish();
}

fn program_timing(c: &mut Criterion) {
    let mut g = c.benchmark_group("program");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let sys = SystemConfig::paper();
    let pim = PimnetBackend::paper();
    for w in [
        Box::new(Mlp::new(1024)) as Box<dyn Workload>,
        Box::new(Spmv::paper()),
    ] {
        let program = w.program(&sys);
        g.bench_function(BenchmarkId::new("pimnet", w.name()), |b| {
            b.iter(|| run_program(&program, &sys, &pim).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, ntt_math, graph_traversal, program_timing);
criterion_main!(benches);
