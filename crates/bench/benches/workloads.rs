//! Micro-benchmarks: the functional workload substrates (real NTT math,
//! real graph traversal) and end-to-end program timing.

use pim_arch::SystemConfig;
use pim_workloads::graph::Graph;
use pim_workloads::program::run_program;
use pim_workloads::{mlp::Mlp, ntt, spmv::Spmv, Workload};
use pimnet::backends::PimnetBackend;
use pimnet_bench::bench;

fn ntt_math() {
    for log_n in [10usize, 12] {
        let n = 1usize << log_n;
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        bench(&format!("ntt/forward/{n}"), 50, || {
            let mut x = data.clone();
            ntt::ntt(&mut x);
            x
        });
    }
    let side = 64;
    let data: Vec<u64> = (0..(side * side) as u64).collect();
    bench("ntt/2d-4096", 20, || ntt::ntt_2d(&data, side, side));
}

fn graph_traversal() {
    let graph = Graph::power_law(20_000, 5, 11);
    bench("graph/bfs-20k", 20, || graph.bfs(graph.hub()));
    bench("graph/cc-20k", 20, || graph.connected_components());
}

fn program_timing() {
    let sys = SystemConfig::paper();
    let pim = PimnetBackend::paper();
    for w in [
        Box::new(Mlp::new(1024)) as Box<dyn Workload>,
        Box::new(Spmv::paper()),
    ] {
        let program = w.program(&sys);
        bench(&format!("program/pimnet/{}", w.name()), 20, || {
            run_program(&program, &sys, &pim).unwrap()
        });
    }
}

fn main() {
    ntt_math();
    graph_traversal();
    program_timing();
}
