//! Criterion benches: schedule compilation and validation — the "host-side
//! compile step" whose cost a PIMnet deployment pays per collective shape.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pim_arch::geometry::PimGeometry;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::{validate, CommSchedule};

fn build_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule-build");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let geo = PimGeometry::paper();
    for kind in [
        CollectiveKind::AllReduce,
        CollectiveKind::ReduceScatter,
        CollectiveKind::AllGather,
        CollectiveKind::AllToAll,
    ] {
        g.bench_function(BenchmarkId::new("256dpu", kind.abbrev()), |b| {
            b.iter(|| CommSchedule::build(kind, &geo, 8192, 4).unwrap())
        });
    }
    g.finish();
}

fn validate_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule-validate");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let geo = PimGeometry::paper();
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let s = CommSchedule::build(kind, &geo, 8192, 4).unwrap();
        g.bench_function(BenchmarkId::new("256dpu", kind.abbrev()), |b| {
            b.iter(|| validate::validate(&s).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, build_schedules, validate_schedules);
criterion_main!(benches);
