//! Micro-benchmarks: schedule compilation and validation — the "host-side
//! compile step" whose cost a PIMnet deployment pays per collective shape.

use pim_arch::geometry::PimGeometry;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::{validate, CommSchedule};
use pimnet_bench::bench;

fn main() {
    let geo = PimGeometry::paper();
    for kind in [
        CollectiveKind::AllReduce,
        CollectiveKind::ReduceScatter,
        CollectiveKind::AllGather,
        CollectiveKind::AllToAll,
    ] {
        bench(
            &format!("schedule-build/256dpu/{}", kind.abbrev()),
            20,
            || CommSchedule::build(kind, &geo, 8192, 4).unwrap(),
        );
    }
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let s = CommSchedule::build(kind, &geo, 8192, 4).unwrap();
        bench(
            &format!("schedule-validate/256dpu/{}", kind.abbrev()),
            20,
            || validate::validate(&s).unwrap(),
        );
    }
}
