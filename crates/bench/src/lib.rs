//! Shared plumbing for the figure/table binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation: it prints the series as an aligned text table and
//! writes the same data as CSV under `results/` so it can be plotted. The
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! each of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

use pim_sim::SimTime;

pub mod sweeps;

/// A simple aligned text table that doubles as a CSV writer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are pre-formatted).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Display,
    {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// The formatted data rows (header excluded).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        out.push_str(&hdr.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(hdr.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// The table as CSV (header row plus one line per row).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut csv = String::new();
        csv.push_str(&self.headers.join(","));
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        csv
    }

    /// Prints the table to stdout and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let csv = self.to_csv();
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = fs::write(&path, csv) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[csv] {}\n", path.display());
            }
        }
    }
}

/// Minimal wall-clock micro-benchmark runner for the `benches/` harnesses.
///
/// Runs `f` for a couple of warm-up iterations, then measures `iters`
/// timed iterations and prints the mean per-iteration time. The closure's
/// return value is folded into a black-box sink so the optimizer cannot
/// delete the work.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "bench: zero iterations");
    for _ in 0..2.min(iters) {
        std::hint::black_box(f());
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / f64::from(iters);
    println!(
        "{name:<40} {:>12.3} us/iter  ({iters} iters)",
        per_iter * 1e6
    );
}

/// Where CSV outputs land (`$PIMNET_RESULTS_DIR` or `./results`).
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var_os("PIMNET_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a time in microseconds with 3 decimals (the figures' unit).
#[must_use]
pub fn us(t: SimTime) -> String {
    format!("{:.3}", t.as_us())
}

/// Formats a dimensionless ratio ("speedup") with 2 decimals.
#[must_use]
pub fn x(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Formats a percentage with 1 decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(SimTime::from_us(3)), "3.000");
        assert_eq!(x(2.5), "2.50x");
        assert_eq!(pct(0.831), "83.1%");
    }
}
