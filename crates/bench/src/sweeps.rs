//! Shared sweep computations behind the figure and soak binaries.
//!
//! Each function here produces exactly the [`Table`] its binary prints,
//! as a pure function of its arguments — the binaries are thin argument
//! parsers around this module, and the `perf_gate` harness re-runs the
//! same sweeps at different worker counts to assert the output is
//! byte-identical however it is scheduled.
//!
//! Independent cells (one fault scenario, one figure row) fan out over
//! [`pim_sim::par`], whose ordered result collection is what keeps the
//! tables deterministic under parallel execution.

use pim_arch::geometry::{DpuId, PimGeometry};
use pim_arch::SystemConfig;
use pim_faults::{FaultConfig, FaultInjector, FaultTimeline, PermanentFaultRates, TimelineRates};
use pim_sim::{par, Bandwidth, Bytes, Probe, SimTime};
use pim_workloads::{run_program, run_program_probed, Workload};
use pimnet::backends::{
    BaselineHostBackend, CollectiveBackend, DimmLinkBackend, NdpBridgeBackend, PimnetBackend,
    SoftwareIdealBackend,
};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::exec::{ExecMachine, ReduceOp};
use pimnet::recovery::{run_recovered, RecoveryConfig, RecoveryRequest, RecoveryStats};
use pimnet::resilience::{plan_degraded, DegradedPlan};
use pimnet::schedule::{cache, validate};
use pimnet::timing::TimingModel;
use pimnet::FabricConfig;

use crate::{pct, us, x, Table};

/// Elements per node every chaos scenario communicates.
pub const CHAOS_ELEMS: usize = 64;
/// Collectives the chaos soak sweeps.
pub const CHAOS_KINDS: [CollectiveKind; 4] = [
    CollectiveKind::AllReduce,
    CollectiveKind::AllGather,
    CollectiveKind::AllToAll,
    CollectiveKind::Broadcast,
];
/// Geometries the chaos soak sweeps.
pub const CHAOS_GEOMETRIES: [u32; 3] = [8, 64, 256];

/// The seeded fault storm every chaos scenario samples from.
#[must_use]
pub fn chaos_config(seed: u64) -> FaultConfig {
    FaultConfig {
        transient_ber: 0.02,
        straggler_prob: 0.1,
        straggler_max_ns: 5_000,
        max_retries: 8,
        perm_rates: PermanentFaultRates {
            segment_prob: 0.02,
            port_prob: 0.02,
            rank_prob: 0.03,
        },
        ..FaultConfig::none()
    }
    .with_seed(seed)
}

/// What one chaos scenario (one seed of one cell) did.
struct ScenarioOutcome {
    /// Ladder tier the planner landed on, `None` when nothing was
    /// plannable (every rank sampled dead).
    tier: Option<usize>,
    rerouted: usize,
    remapped: usize,
    extra_steps: usize,
    /// Repaired-over-clean completion-time stretch (0 unless Repaired).
    stretch: f64,
    /// The plan executed bit-identically under transient faults.
    verified: bool,
}

/// Accumulated outcomes of one geometry × collective cell.
#[derive(Default)]
struct CellStats {
    tiers: [u32; 4],
    unplannable: u32,
    rerouted: usize,
    remapped: usize,
    extra_steps: usize,
    worst_stretch: f64,
    verified: u32,
}

impl CellStats {
    fn fold(&mut self, s: &ScenarioOutcome) {
        match s.tier {
            Some(t) => self.tiers[t] += 1,
            None => self.unplannable += 1,
        }
        self.rerouted += s.rerouted;
        self.remapped += s.remapped;
        self.extra_steps += s.extra_steps;
        self.worst_stretch = self.worst_stretch.max(s.stretch);
        self.verified += u32::from(s.verified);
    }
}

/// Drives one seeded scenario through the full plan → repair → validate
/// → execute → verify pipeline. Pure function of its arguments.
fn soak_scenario(kind: CollectiveKind, dpus: u32, seed: u64) -> ScenarioOutcome {
    let g = PimGeometry::paper_scaled(dpus);
    let sys = SystemConfig::paper_scaled(dpus);
    let timing = TimingModel::paper();
    let mut out = ScenarioOutcome {
        tier: None,
        rerouted: 0,
        remapped: 0,
        extra_steps: 0,
        stretch: 0.0,
        verified: false,
    };
    let inj = FaultInjector::new(chaos_config(seed));
    let plan = match plan_degraded(kind, &g, CHAOS_ELEMS, 4, &inj, &sys) {
        Ok(p) => p,
        // Every rank sampled dead: nothing left to plan, which the
        // planner reports as a typed error rather than a panic.
        Err(_) => return out,
    };
    out.tier = Some(plan.tier() as usize);
    let Some(s) = plan.schedule() else {
        return out; // host fallback: no PIM-side schedule to verify
    };
    validate::validate(s).expect("planned schedule failed validation");
    if let DegradedPlan::Repaired { report, .. } = &plan {
        out.rerouted = report.rerouted_transfers;
        out.remapped = report.remapped_transfers;
        out.extra_steps = report.extra_steps;
        let clean = cache::build_cached(kind, &g, CHAOS_ELEMS, 4).unwrap();
        out.stretch = timing.time_schedule(s, SimTime::ZERO).total().as_secs_f64()
            / timing
                .time_schedule(&clean, SimTime::ZERO)
                .total()
                .as_secs_f64();
    }
    // Execute under transient faults and check bit-identity against the
    // same schedule's clean run (for Full/Repaired that clean run is by
    // construction identical to the fault-free reference plan).
    let init = |id: pim_arch::geometry::DpuId| vec![u64::from(id.0) + 1; CHAOS_ELEMS];
    let mut clean_m = ExecMachine::init(s, init);
    clean_m.run(s, ReduceOp::Sum);
    let mut faulty_m = ExecMachine::init(s, init);
    faulty_m
        .run_with_faults(s, ReduceOp::Sum, &inj)
        .expect("retry budget exhausted");
    assert_eq!(clean_m, faulty_m, "faulty run diverged");
    out.verified = true;
    out
}

/// The chaos-soak table plus its scenario totals.
pub struct ChaosSummary {
    /// The table the `chaos_soak` binary prints and emits as CSV.
    pub table: Table,
    /// Scenarios swept (cells × seeds per cell).
    pub total: u32,
    /// Scenarios whose PIM-side plan executed bit-identically.
    pub verified: u32,
}

/// Runs the full chaos-soak sweep (`per_cell` seeds from `base` for
/// every geometry × collective cell) on `workers` threads.
///
/// Scenarios are independent, so they fan out at seed granularity; the
/// ordered fold below reproduces the sequential table byte-for-byte at
/// any worker count.
#[must_use]
pub fn chaos_soak(per_cell: u64, base: u64, workers: usize) -> ChaosSummary {
    let mut scenarios = Vec::new();
    for &dpus in &CHAOS_GEOMETRIES {
        for kind in CHAOS_KINDS {
            for seed in base..base + per_cell {
                scenarios.push((kind, dpus, seed));
            }
        }
    }
    let outcomes = par::map_ordered_with(workers, scenarios, |(kind, dpus, seed)| {
        soak_scenario(kind, dpus, seed)
    });

    let mut t = Table::new(
        "chaos soak: ladder tiers and repair cost per scenario cell",
        &[
            "dpus",
            "collective",
            "full",
            "repaired",
            "shrunk",
            "host",
            "no-plan",
            "rerouted",
            "remapped",
            "+steps",
            "worst-stretch",
            "verified",
        ],
    );
    let mut total = 0u32;
    let mut verified = 0u32;
    let mut chunks = outcomes.chunks(per_cell.max(1) as usize);
    for &dpus in &CHAOS_GEOMETRIES {
        for kind in CHAOS_KINDS {
            let mut s = CellStats::default();
            if per_cell > 0 {
                for outcome in chunks.next().expect("scenario chunk per cell") {
                    s.fold(outcome);
                }
            }
            total += per_cell as u32;
            verified += s.verified;
            t.row([
                dpus.to_string(),
                kind.to_string(),
                s.tiers[0].to_string(),
                s.tiers[1].to_string(),
                s.tiers[2].to_string(),
                s.tiers[3].to_string(),
                s.unplannable.to_string(),
                s.rerouted.to_string(),
                s.remapped.to_string(),
                s.extra_steps.to_string(),
                format!("{:.2}x", s.worst_stretch.max(1.0)),
                s.verified.to_string(),
            ]);
        }
    }
    ChaosSummary {
        table: t,
        total,
        verified,
    }
}

/// Elements per node every recovery scenario communicates (small: each
/// scenario single-steps the executor on the recovery clock).
pub const RECOVERY_ELEMS: usize = 32;
/// Geometries the recovery soak sweeps (smaller than the chaos matrix —
/// recovery runs the functional executor step-by-step, not just the
/// planner).
pub const RECOVERY_GEOMETRIES: [u32; 2] = [8, 16];
/// Simulated horizon every scenario's storm is sampled over.
pub const RECOVERY_HORIZON_PS: u64 = 50_000_000;

/// Per-component storm probabilities each recovery scenario samples its
/// time-varying [`FaultTimeline`] from: mid-run permanent arrivals, link
/// flaps and BER bursts, on top of [`recovery_config`]'s background
/// transients. Rank deaths are kept rarer so the matrix exercises the
/// upper ladder tiers, not just host fallback.
#[must_use]
pub fn recovery_rates() -> TimelineRates {
    TimelineRates {
        segment_arrival_prob: 0.06,
        port_arrival_prob: 0.04,
        rank_arrival_prob: 0.02,
        flap_prob: 0.10,
        burst_prob: 0.12,
        burst_ber: 0.8,
    }
}

/// The background (non-timeline) fault configuration of a recovery
/// scenario: mild always-on corruption and stragglers, a real retry
/// budget for the backoff ladder to spend.
#[must_use]
pub fn recovery_config(seed: u64) -> FaultConfig {
    FaultConfig {
        transient_ber: 0.002,
        straggler_prob: 0.05,
        straggler_max_ns: 500,
        max_retries: 8,
        ..FaultConfig::none()
    }
    .with_seed(seed)
}

/// What one recovery scenario (one seed of one cell) did.
struct RecoveryOutcome {
    /// Ladder tier the run ended on; `None` when the storm left nothing
    /// plannable at all (a typed error, counted separately).
    tier: Option<u8>,
    stats: RecoveryStats,
    /// The tier <= 1 result was checked bit-identical to the fault-free
    /// run of the same cell.
    verified: bool,
    /// The end state honored the soundness contract (tier <= 1 implies
    /// bit-identity, machines exactly where the tier promises one, host
    /// fallback carries a typed trail).
    sound: bool,
}

/// Accumulated recovery outcomes of one geometry × collective cell.
#[derive(Default)]
struct RecoveryCellStats {
    tiers: [u32; 4],
    unplannable: u32,
    retries: u64,
    replans: u64,
    quarantines: u64,
    arrivals: u64,
    verified: u32,
    unsound: u32,
}

impl RecoveryCellStats {
    fn fold(&mut self, s: &RecoveryOutcome) {
        match s.tier {
            Some(t) => self.tiers[usize::from(t.min(3))] += 1,
            None => self.unplannable += 1,
        }
        self.retries += s.stats.step_retries;
        self.replans += s.stats.replans;
        self.quarantines += s.stats.quarantines;
        self.arrivals += s.stats.arrivals_applied;
        self.verified += u32::from(s.verified);
        self.unsound += u32::from(!s.sound);
    }
}

/// Drives one seeded time-varying scenario through the runtime recovery
/// manager and verdicts its end state. Pure function of its arguments.
fn recovery_scenario(kind: CollectiveKind, dpus: u32, seed: u64) -> RecoveryOutcome {
    let g = PimGeometry::paper_scaled(dpus);
    let sys = SystemConfig::paper_scaled(dpus);
    let timing = TimingModel::paper();
    let mut cfg = recovery_config(seed);
    cfg.timeline = FaultTimeline::sample(
        seed,
        g.ranks_per_channel,
        g.chips_per_rank,
        g.banks_per_chip,
        RECOVERY_HORIZON_PS,
        &recovery_rates(),
    );
    let injector = FaultInjector::new(cfg);
    let req = RecoveryRequest {
        kind,
        geometry: &g,
        elems_per_node: RECOVERY_ELEMS,
        elem_bytes: 8,
        op: ReduceOp::Sum,
        injector: &injector,
        system: &sys,
        timing: &timing,
        config: RecoveryConfig::default(),
    };
    let init = |id: DpuId| vec![u64::from(id.0) + 1; RECOVERY_ELEMS];
    let out = match run_recovered::<u64>(&req, init) {
        Ok(out) => out,
        // The storm left nothing plannable (e.g. every rank sampled
        // dead): a typed end state of its own, not a ladder tier.
        Err(_) => {
            return RecoveryOutcome {
                tier: None,
                stats: RecoveryStats::default(),
                verified: false,
                sound: true,
            }
        }
    };
    let (verified, sound) = match (out.plan_tier, out.machine.as_ref()) {
        (0 | 1, Some(m)) => {
            // Full/Repaired keep the fault-free buffer layout, so the
            // recovered result must be bit-identical to the clean run.
            let s = cache::build_cached(kind, &g, RECOVERY_ELEMS, 8).expect("reference schedule");
            let mut clean = ExecMachine::init(&s, init);
            clean.run(&s, ReduceOp::Sum);
            let ok = s
                .participants()
                .all(|id| m.result(&s, id) == clean.result(&s, id));
            (ok, ok)
        }
        (2, Some(_)) => (false, true),
        (3, None) => (false, !out.error_trail.is_empty()),
        // Anything else breaks the machine-iff-tier-promises-one rule.
        _ => (false, false),
    };
    RecoveryOutcome {
        tier: Some(out.plan_tier),
        stats: out.stats,
        verified,
        sound,
    }
}

/// The recovery-soak table plus its scenario totals.
pub struct RecoverySummary {
    /// The table the `recovery_soak` binary prints and emits as CSV.
    pub table: Table,
    /// Scenarios swept (cells × seeds per cell).
    pub total: u32,
    /// Scenarios whose tier <= 1 result was checked bit-identical.
    pub verified: u32,
    /// Scenarios that violated the soundness contract (must stay 0).
    pub unsound: u32,
}

/// Runs the full recovery soak (`per_cell` seeds from `base` for every
/// geometry × collective cell) on `workers` threads: every scenario
/// executes step-by-step under a sampled time-varying storm, with
/// checkpointed resume, health quarantine and ladder replans.
///
/// Scenarios are independent, so they fan out at seed granularity; the
/// ordered fold below reproduces the sequential table byte-for-byte at
/// any worker count.
#[must_use]
pub fn recovery_soak(per_cell: u64, base: u64, workers: usize) -> RecoverySummary {
    let mut scenarios = Vec::new();
    for &dpus in &RECOVERY_GEOMETRIES {
        for kind in CHAOS_KINDS {
            for seed in base..base + per_cell {
                scenarios.push((kind, dpus, seed));
            }
        }
    }
    let outcomes = par::map_ordered_with(workers, scenarios, |(kind, dpus, seed)| {
        recovery_scenario(kind, dpus, seed)
    });

    let mut t = Table::new(
        "recovery soak: runtime arrivals, quarantines and replans per scenario cell",
        &[
            "dpus",
            "collective",
            "full",
            "repaired",
            "shrunk",
            "host",
            "no-plan",
            "retries",
            "replans",
            "quarantines",
            "arrivals",
            "verified",
            "unsound",
        ],
    );
    let mut total = 0u32;
    let mut verified = 0u32;
    let mut unsound = 0u32;
    let mut chunks = outcomes.chunks(per_cell.max(1) as usize);
    for &dpus in &RECOVERY_GEOMETRIES {
        for kind in CHAOS_KINDS {
            let mut s = RecoveryCellStats::default();
            if per_cell > 0 {
                for outcome in chunks.next().expect("scenario chunk per cell") {
                    s.fold(outcome);
                }
            }
            total += per_cell as u32;
            verified += s.verified;
            unsound += s.unsound;
            t.row([
                dpus.to_string(),
                kind.to_string(),
                s.tiers[0].to_string(),
                s.tiers[1].to_string(),
                s.tiers[2].to_string(),
                s.tiers[3].to_string(),
                s.unplannable.to_string(),
                s.retries.to_string(),
                s.replans.to_string(),
                s.quarantines.to_string(),
                s.arrivals.to_string(),
                s.verified.to_string(),
                s.unsound.to_string(),
            ]);
        }
    }
    RecoverySummary {
        table: t,
        total,
        verified,
        unsound,
    }
}

/// Fig 12 weak-scaling row sizes.
pub const FIG12_SIZES: [u32; 6] = [8, 16, 32, 64, 128, 256];

/// One Fig 12 table: `kind`'s speedup over the host baseline at every
/// system size, rows computed on `workers` threads.
#[must_use]
pub fn fig12_table(kind: CollectiveKind, workers: usize) -> Table {
    let spec = CollectiveSpec::new(kind, Bytes::kib(32));
    let rows = par::map_ordered_with(workers, FIG12_SIZES.to_vec(), move |n| {
        let sys = SystemConfig::paper_scaled(n);
        let fabric = FabricConfig::paper();
        let base = BaselineHostBackend::new(sys)
            .collective(&spec)
            .unwrap()
            .total();
        let cell = |b: &dyn CollectiveBackend| match b.collective(&spec) {
            Ok(r) => format!("{:.2}", base.ratio(r.total())),
            Err(_) => "n/a".to_string(),
        };
        [
            n.to_string(),
            cell(&SoftwareIdealBackend::new(sys)),
            cell(&NdpBridgeBackend::new(sys)),
            cell(&DimmLinkBackend::new(sys, fabric)),
            cell(&PimnetBackend::new(sys, fabric)),
        ]
    });
    let mut t = Table::new(
        &format!("Fig 12: {kind} speedup over baseline (weak scaling, 32 KB/DPU)"),
        &["DPUs", "S", "N", "D", "P"],
    );
    for row in rows {
        t.row(row);
    }
    t
}

/// Collectives the `fig12_best` paper-vs-tuned table sweeps.
pub const FIG12_BEST_KINDS: [CollectiveKind; 5] = [
    CollectiveKind::AllReduce,
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllGather,
    CollectiveKind::Broadcast,
    CollectiveKind::AllToAll,
];
/// System sizes the `fig12_best` table sweeps.
pub const FIG12_BEST_DPUS: [u32; 3] = [8, 64, 256];
/// Payloads (elements per node) the `fig12_best` table sweeps.
pub const FIG12_BEST_ELEMS: [usize; 2] = [64, 1024];

/// The pinned `(kind, dpus, elems)` cell list of [`fig12_best`], in row
/// order. AllGather is capped at 64 DPUs: its `N·n`-element buffers make
/// the dataflow proof pass — which the autotuner runs on *every*
/// candidate — orders of magnitude more expensive at 256 DPUs than any
/// other cell, for no extra coverage of the composition space.
#[must_use]
pub fn fig12_best_cells() -> Vec<(CollectiveKind, u32, usize)> {
    let mut cells = Vec::new();
    for kind in FIG12_BEST_KINDS {
        for dpus in FIG12_BEST_DPUS {
            if kind == CollectiveKind::AllGather && dpus > 64 {
                continue;
            }
            for elems in FIG12_BEST_ELEMS {
                cells.push((kind, dpus, elems));
            }
        }
    }
    cells
}

/// The paper-vs-tuned "best of" Fig 12 variant: every cell autotunes one
/// `(collective, geometry, payload)` request and reports the paper's
/// Table V time next to the tuned winner's. Cells fan out over `workers`
/// threads; the tuner itself is deterministic and the schedule cache
/// dedups concurrent sweeps, so the table is byte-identical at any
/// worker count and any cache warmth.
#[must_use]
pub fn fig12_best(workers: usize) -> Table {
    let rows = par::map_ordered_with(workers, fig12_best_cells(), |(kind, dpus, elems)| {
        let geometry = PimGeometry::paper_scaled(dpus);
        let choice = pimnet::schedule::autotune::tune(kind, &geometry, elems, 4)
            .expect("every pinned cell tunes");
        [
            kind.to_string(),
            dpus.to_string(),
            elems.to_string(),
            us(choice.paper_time),
            us(choice.tuned_time),
            x(choice.speedup()),
            choice.spec(),
            choice.candidates.to_string(),
            choice.rejected.to_string(),
        ]
    });
    let mut t = Table::new(
        "Fig 12 best-of: paper Table V schedules vs autotuned hierarchical compositions",
        &[
            "kind",
            "dpus",
            "elems",
            "paper_us",
            "tuned_us",
            "speedup",
            "winner",
            "candidates",
            "rejected",
        ],
    );
    for row in rows {
        t.row(row);
    }
    t
}

/// One Fig 11 row set over an explicit workload list: the PIMnet
/// communication-time breakdown plus the speedup over the reference
/// backend (DIMM-Link, or NDPBridge for All-to-All workloads).
///
/// The breakdown columns are sourced from the [`pim_sim::MetricsReport`]
/// that [`run_program_probed`] fills — per-tier communication time plus
/// the sync/mem buckets — rather than from hand-rolled accumulation over
/// [`pimnet::timing::CommBreakdown`] fields; the metrics sink counts in
/// exact integer picoseconds, so the output is byte-identical to the
/// pre-metrics formula (`tests` below pin this).
#[must_use]
pub fn fig11_table_for(suite: &[Box<dyn Workload>]) -> Table {
    let sys = SystemConfig::paper();
    let fabric = FabricConfig::paper();
    let pim = PimnetBackend::new(sys, fabric);
    let dimm = DimmLinkBackend::new(sys, fabric);
    let ndp = NdpBridgeBackend::new(sys);

    let mut t = Table::new(
        "Fig 11: PIMnet communication-time breakdown and speedup vs D (or N for A2A)",
        &[
            "workload",
            "inter-bank",
            "inter-chip",
            "inter-rank",
            "sync",
            "mem",
            "vs",
            "comm-speedup",
        ],
    );
    for w in suite {
        let program = w.program(&sys);
        let probe = Probe::metrics_only();
        run_program_probed(&program, &sys, &pim, &probe).expect("pimnet run");
        let r = probe.metrics.snapshot();
        let comm_total = SimTime::from_ps(
            r.comm_time_ps_by_tier.iter().sum::<u64>()
                + r.sync_time_ps
                + r.mem_time_ps
                + r.host_time_ps,
        );
        let frac = |ps: u64| pct(SimTime::from_ps(ps).ratio(comm_total));

        // Reference system: DIMM-Link, except for A2A workloads where the
        // paper normalizes to NDPBridge.
        let uses_a2a = program
            .collective_kinds()
            .contains(&CollectiveKind::AllToAll);
        let (ref_name, reference): (&str, &dyn CollectiveBackend) =
            if uses_a2a { ("N", &ndp) } else { ("D", &dimm) };
        let reference = run_program(&program, &sys, reference).expect("reference run");

        t.row([
            w.name().to_string(),
            frac(r.comm_time_ps_by_tier[1]),
            frac(r.comm_time_ps_by_tier[2]),
            frac(r.comm_time_ps_by_tier[3]),
            frac(r.sync_time_ps),
            frac(r.mem_time_ps),
            ref_name.to_string(),
            x(reference.comm.total().ratio(comm_total)),
        ]);
    }
    t
}

/// The full-suite Fig 11 table (what the `fig11_comm_breakdown` binary
/// prints).
#[must_use]
pub fn fig11_table() -> Table {
    fig11_table_for(&pim_workloads::paper_suite())
}

/// The Fig 13 credit-vs-scheduled table, rows computed on `workers`
/// threads.
///
/// Completion columns are sourced from the `wall_ps` watermark of each
/// simulation's [`pim_sim::MetricsReport`] — both NoC simulators record
/// their completion time there in exact picoseconds, so the table is
/// byte-identical to reading `NocReport::completion` directly (`tests`
/// below pin this).
#[must_use]
pub fn fig13_table(workers: usize) -> Table {
    use pim_noc::{simulate_credit_probed, simulate_scheduled_probed, NocConfig};
    use pim_sim::rng::SimRng;

    fn ready_times(n: u32, mean_us: f64, jitter: f64, seed: u64) -> Vec<SimTime> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let f = 1.0 + rng.gen_range(-jitter..=jitter);
                SimTime::from_secs_f64(mean_us * 1e-6 * f)
            })
            .collect()
    }

    let configs = vec![
        (CollectiveKind::AllReduce, 64u32, 2048usize),
        (CollectiveKind::AllReduce, 64, 8192),
        (CollectiveKind::AllToAll, 64, 2048),
        (CollectiveKind::AllToAll, 64, 8192),
    ];
    let rows = par::map_ordered_with(workers, configs, |(kind, n, elems)| {
        let cfg = NocConfig::paper();
        let g = PimGeometry::paper_scaled(n);
        let s = cache::build_cached(kind, &g, elems, 4).expect("schedule");
        let ready = ready_times(n, 50.0, 0.10, 0x000F_1613);
        let credit_probe = Probe::metrics_only();
        let _ = simulate_credit_probed(&s, &ready, &cfg, &credit_probe);
        let sched_probe = Probe::metrics_only();
        let _ = simulate_scheduled_probed(&s, &ready, &cfg, &sched_probe);
        let credit = SimTime::from_ps(credit_probe.metrics.snapshot().wall_ps);
        let sched = SimTime::from_ps(sched_probe.metrics.snapshot().wall_ps);
        let gain = 1.0 - sched.as_secs_f64() / credit.as_secs_f64();
        [
            kind.to_string(),
            n.to_string(),
            (elems * 4 / 1024).to_string(),
            us(credit),
            us(sched),
            format!("{:+.1}%", gain * 100.0),
        ]
    });
    let mut t = Table::new(
        "Fig 13: credit-based vs PIM-controlled completion time (us)",
        &[
            "collective",
            "DPUs",
            "KB/DPU",
            "credit",
            "scheduled",
            "PIM-control gain",
        ],
    );
    for row in rows {
        t.row(row);
    }
    t
}

/// The two Fig 14 bandwidth-sweep tables, rows computed on `workers`
/// threads.
#[must_use]
pub fn fig14_tables(workers: usize) -> (Table, Table) {
    let sys = SystemConfig::paper();
    let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
    let dimm = DimmLinkBackend::new(sys, FabricConfig::paper())
        .collective(&spec)
        .expect("dimm-link")
        .total();

    let rows_a = par::map_ordered_with(workers, vec![1u32, 2, 3, 5, 7, 10], move |tenths| {
        let bw = Bandwidth::mbps(f64::from(tenths) * 100.0);
        let fabric = FabricConfig::paper().with_bank_channel_bw(bw);
        let p = PimnetBackend::new(sys, fabric)
            .collective(&spec)
            .unwrap()
            .total();
        [
            format!("{:.1}", f64::from(tenths) / 10.0),
            us(p),
            us(dimm),
            x(dimm.ratio(p)),
        ]
    });
    let mut a = Table::new(
        "Fig 14(a): AllReduce vs inter-bank channel bandwidth",
        &[
            "bank GB/s",
            "PIMnet (us)",
            "DIMM-Link (us)",
            "PIMnet advantage",
        ],
    );
    for row in rows_a {
        a.row(row);
    }

    let rows_b = par::map_ordered_with(workers, vec![1u32, 2, 4, 8], move |quarters| {
        let scale = f64::from(quarters) / 4.0;
        let fabric = FabricConfig::paper()
            .with_chip_channel_bw(Bandwidth::mbps(1050.0 * scale))
            .with_rank_bus_bw(Bandwidth::mbps(16_800.0 * scale));
        let p = PimnetBackend::new(sys, fabric)
            .collective(&spec)
            .unwrap()
            .total();
        [
            format!("{scale:.2}x"),
            format!("{:.2}", 1.05 * scale),
            format!("{:.1}", 16.8 * scale),
            us(p),
            x(dimm.ratio(p)),
        ]
    });
    let mut b = Table::new(
        "Fig 14(b): AllReduce vs inter-chip/inter-rank bandwidth (inter-bank fixed at 0.7)",
        &[
            "global scale",
            "chip GB/s",
            "rank GB/s",
            "PIMnet (us)",
            "PIMnet advantage",
        ],
    );
    for row in rows_b {
        b.row(row);
    }
    (a, b)
}

// ---------------------------------------------------------------------------
// Fig 17: multi-tenancy through the serving engine
// ---------------------------------------------------------------------------

/// One tenant's 32 KiB-per-DPU AllReduce through `pimnet::serve`,
/// returning the service duration of its first completed request.
///
/// The serving engine prices the analytic path exactly like
/// `PimnetBackend::collective` (cached schedule + timing at zero skew)
/// and the forced-fallback path exactly like `BaselineHostBackend`, so
/// fig 17's numbers re-sourced through the engine are bit-identical to
/// the direct backend calls the figure originally made.
fn fig17_tenant_latency(
    fabric: FabricConfig,
    host: Option<pim_arch::HostLink>,
    force_host: bool,
) -> SimTime {
    let mut cfg = pimnet::serve::ServeConfig::uniform(1, 0x17);
    cfg.fabric = fabric;
    cfg.host = host;
    if force_host {
        // A zero fallback threshold pins the overload ladder at the
        // host tier from the first dispatch: this *is* the host-based
        // system of the figure.
        cfg.overload = pimnet::serve::OverloadThresholds {
            shrink_at: 0,
            shed_at: 0,
            fallback_at: 0,
        };
    }
    cfg.chunk_elems = 8192; // one chunk: the whole collective
    let t = &mut cfg.tenants[0];
    t.elems_per_node = 8192; // 32 KiB per DPU at 4 B/element
    t.channels = 1;
    t.token_every_ps = 0; // unmetered
    t.deadline_ps = 1_000_000_000_000; // the figure times service, not SLOs
    t.mean_gap_ps = 400_000_000;
    let report = pimnet::serve::serve(&cfg).expect("fig17 serve config is valid");
    let first = report
        .log
        .iter()
        .find_map(|r| match r.outcome {
            pimnet::serve::RequestOutcome::Served {
                start_ps, end_ps, ..
            }
            | pimnet::serve::RequestOutcome::HostFallback { start_ps, end_ps } => {
                Some(end_ps - start_ps)
            }
            _ => None,
        })
        .expect("at least one request completes");
    SimTime::from_ps(first)
}

/// Fig 17: per-tenant AllReduce latency, alone vs co-tenant, host-based
/// vs PIMnet — every cell served by the multi-tenant engine.
#[must_use]
pub fn fig17_table() -> Table {
    // Each tenant: 2 ranks x 8 chips x 8 banks = 128 DPUs (the default
    // serve tenant shard). Alone, the tenant has the paper's machine to
    // itself; co-tenancy time-shares the host path (half bandwidth) and
    // the inter-rank bus, while PIMnet's ring and crossbar tiers stay
    // physically private to each tenant's ranks.
    let sys = pim_arch::SystemConfig::paper();
    let halved_host = pim_arch::HostLink {
        pim_to_cpu: sys.host.pim_to_cpu.split(2),
        cpu_to_pim: sys.host.cpu_to_pim.split(2),
        cpu_broadcast: sys.host.cpu_broadcast.split(2),
        host_reduce_bw: sys.host.host_reduce_bw.split(2),
        marshal_bw: sys.host.marshal_bw.split(2),
        ..sys.host
    };
    let base_alone = fig17_tenant_latency(FabricConfig::paper(), None, true);
    let base_shared = fig17_tenant_latency(FabricConfig::paper(), Some(halved_host), true);
    let pim_alone = fig17_tenant_latency(FabricConfig::paper(), None, false);
    let shared_fabric = FabricConfig::paper().with_rank_bus_bw(Bandwidth::gbps(16.8).split(2));
    let pim_shared = fig17_tenant_latency(shared_fabric, None, false);

    let mut t = Table::new(
        "Fig 17: per-tenant AllReduce (128-DPU tenant, 32 KB/DPU)",
        &["system", "alone (us)", "co-tenant (us)", "slowdown"],
    );
    t.row([
        "host-based".to_string(),
        us(base_alone),
        us(base_shared),
        format!("{:.2}x", base_shared.ratio(base_alone)),
    ]);
    t.row([
        "PIMnet".to_string(),
        us(pim_alone),
        us(pim_shared),
        format!("{:.2}x", pim_shared.ratio(pim_alone)),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Multi-tenant serving soak
// ---------------------------------------------------------------------------

/// Simulated horizon of one serving cell: arrivals are sampled on
/// 1 ms; queued work drains past it.
pub const SERVE_HORIZON_PS: u64 = 1_000_000_000;

/// DLRM-flavored tenants for the serving sweeps: each tenant issues the
/// embedding-exchange collective of one of the paper's RM stand-ins
/// (fig 10), cycled across the tenant list. Elements per node are one
/// step's pooled-partial exchange (`dim x tables`); heavier models
/// request less often and carry higher priority — they are the
/// latency-critical recommenders the co-tenancy experiment protects.
#[must_use]
pub fn serve_tenants_dlrm(n: usize) -> Vec<pimnet::serve::TenantConfig> {
    use pim_workloads::emb::Emb;
    let flavors = [Emb::rm1(), Emb::rm2(), Emb::rm3()];
    (0..n)
        .map(|i| {
            let f = &flavors[i % flavors.len()];
            let mut t =
                pimnet::serve::TenantConfig::new(&format!("{}-{i}", f.name().to_lowercase()));
            t.elems_per_node = (f.dim * f.tables) as usize;
            t.priority = 1 + (i % flavors.len()) as u8;
            t.mean_gap_ps = 50_000_000 * (1 + (i % flavors.len()) as u64);
            t
        })
        .collect()
}

/// The serving config of one soak cell — DLRM tenants under the
/// priority policy; `storm` additionally samples a seeded fault
/// timeline over the horizon, routing faulted dispatches through the
/// runtime recovery manager.
#[must_use]
pub fn serve_soak_config(tenants: usize, seed: u64, storm: bool) -> pimnet::serve::ServeConfig {
    let mut cfg = pimnet::serve::ServeConfig::uniform(tenants, seed);
    cfg.tenants = serve_tenants_dlrm(tenants);
    cfg.policy = pimnet::serve::QueuePolicy::Priority;
    cfg.horizon_ps = SERVE_HORIZON_PS;
    if storm {
        let g = &cfg.tenants[0].geometry;
        let timeline = FaultTimeline::sample(
            seed,
            g.ranks_per_channel,
            g.chips_per_rank,
            g.banks_per_chip,
            SERVE_HORIZON_PS,
            &recovery_rates(),
        );
        cfg.faults = FaultConfig {
            timeline,
            max_retries: 8,
            ..FaultConfig::none()
        }
        .with_seed(seed);
    }
    cfg
}

/// What one serving cell (one seed, clean or storm) did.
struct ServeCell {
    seed: u64,
    storm: bool,
    requests: usize,
    served: usize,
    host_fallback: usize,
    shed: usize,
    quarantined: usize,
    peak: u8,
    end_ps: u64,
    /// Latencies of the served requests, for cross-cell percentiles.
    latencies_ps: Vec<u64>,
    /// The rendered request log — the byte-identity artifact.
    log: String,
    /// First soundness violation; any `Some` fails the soak.
    unsound: Option<String>,
}

/// Runs one serving cell and re-verifies the soundness contract from
/// the outside (exactly-one-outcome arity, monotone ladder, monotone
/// quarantine epochs).
fn serve_cell(tenants: usize, seed: u64, storm: bool) -> ServeCell {
    let cfg = serve_soak_config(tenants, seed, storm);
    let report = match pimnet::serve::serve(&cfg) {
        Ok(r) => r,
        Err(e) => {
            return ServeCell {
                seed,
                storm,
                requests: 0,
                served: 0,
                host_fallback: 0,
                shed: 0,
                quarantined: 0,
                peak: 0,
                end_ps: 0,
                latencies_ps: Vec::new(),
                log: String::new(),
                unsound: Some(format!("serve returned a config error: {e}")),
            }
        }
    };
    let mut unsound = None;
    let arrivals = pimnet::serve::sample_arrivals(&cfg);
    if report.log.len() != arrivals.len() {
        unsound = Some(format!(
            "{} log entries for {} arrivals",
            report.log.len(),
            arrivals.len()
        ));
    }
    let mut level = 0u8;
    for s in &report.ladder {
        if s.level < level && unsound.is_none() {
            unsound = Some(format!("ladder dropped to {} at {} ps", s.level, s.at_ps));
        }
        level = level.max(s.level);
    }
    let mut epochs = vec![0u64; cfg.tenants.len()];
    for q in &report.quarantines {
        let e = &mut epochs[q.tenant as usize];
        if q.epoch < *e && unsound.is_none() {
            unsound = Some(format!(
                "tenant {} epoch regressed to {}",
                q.tenant, q.epoch
            ));
        }
        *e = q.epoch;
    }
    ServeCell {
        seed,
        storm,
        requests: report.log.len(),
        served: report.count("served"),
        host_fallback: report.count("host-fallback"),
        shed: report.count("shed"),
        quarantined: report.count("quarantined"),
        peak: report.peak_level(),
        end_ps: report.end_ps,
        latencies_ps: report.latencies_ps(),
        log: report.render_log(&cfg),
        unsound,
    }
}

/// Aggregates of a serving soak — the table, the concatenated request
/// logs (byte-identical at any worker count), and the pinned serving
/// metrics the perf gate tracks.
pub struct ServeSummary {
    /// One row per cell.
    pub table: Table,
    /// Every cell's request log, concatenated in cell order.
    pub log: String,
    /// Requests across every cell.
    pub total: u64,
    /// Outcome totals across every cell.
    pub served: u64,
    /// Host-fallback outcomes across every cell.
    pub host_fallback: u64,
    /// Shed outcomes across every cell.
    pub shed: u64,
    /// Quarantine-shed outcomes across every cell.
    pub quarantined: u64,
    /// Median served latency across the clean cells, microseconds.
    pub p50_us: f64,
    /// Tail served latency across the clean cells, microseconds.
    pub p99_us: f64,
    /// Served collectives per simulated second across the clean cells.
    pub collectives_per_sec: f64,
    /// Soundness violations (any nonzero fails the caller).
    pub unsound: u64,
}

/// Nearest-rank percentile of a sorted slice, in microseconds.
fn percentile_us(sorted_ps: &[u64], p: f64) -> f64 {
    if sorted_ps.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted_ps.len() as f64).ceil() as usize).clamp(1, sorted_ps.len());
    sorted_ps[rank - 1] as f64 / 1e6
}

/// The serving soak: `per_mode` clean seeds plus `per_mode` storm seeds
/// over `tenants` DLRM tenants, fanned out over `workers` threads with
/// ordered collection — the table and the concatenated logs are
/// byte-identical at any worker count.
#[must_use]
pub fn serve_soak(tenants: usize, per_mode: u64, base: u64, workers: usize) -> ServeSummary {
    let cells: Vec<(u64, bool)> = (0..per_mode)
        .map(|i| (base + i, false))
        .chain((0..per_mode).map(|i| (base + i, true)))
        .collect();
    let rows = par::map_ordered_with(workers, cells, |(seed, storm)| {
        serve_cell(tenants, seed, storm)
    });

    let mut table = Table::new(
        &format!("serving soak: {tenants} DLRM tenants, {per_mode} seed(s) per mode"),
        &[
            "seed",
            "mode",
            "requests",
            "served",
            "host-fb",
            "shed",
            "quarantined",
            "p50 (us)",
            "p99 (us)",
            "coll/s",
            "peak",
            "end (us)",
            "verdict",
        ],
    );
    let mut summary = ServeSummary {
        table: Table::new("", &[]),
        log: String::new(),
        total: 0,
        served: 0,
        host_fallback: 0,
        shed: 0,
        quarantined: 0,
        p50_us: 0.0,
        p99_us: 0.0,
        collectives_per_sec: 0.0,
        unsound: 0,
    };
    let mut clean_lat: Vec<u64> = Vec::new();
    let mut clean_served = 0u64;
    let mut clean_end_ps = 0u64;
    for c in &rows {
        let mut lat = c.latencies_ps.clone();
        lat.sort_unstable();
        table.row([
            c.seed.to_string(),
            if c.storm { "storm" } else { "clean" }.to_string(),
            c.requests.to_string(),
            c.served.to_string(),
            c.host_fallback.to_string(),
            c.shed.to_string(),
            c.quarantined.to_string(),
            format!("{:.3}", percentile_us(&lat, 50.0)),
            format!("{:.3}", percentile_us(&lat, 99.0)),
            format!(
                "{:.1}",
                if c.end_ps == 0 {
                    0.0
                } else {
                    c.served as f64 / (c.end_ps as f64 / 1e12)
                }
            ),
            c.peak.to_string(),
            format!("{:.1}", c.end_ps as f64 / 1e6),
            c.unsound.clone().unwrap_or_else(|| "ok".to_string()),
        ]);
        summary.log.push_str(&c.log);
        summary.total += c.requests as u64;
        summary.served += c.served as u64;
        summary.host_fallback += c.host_fallback as u64;
        summary.shed += c.shed as u64;
        summary.quarantined += c.quarantined as u64;
        summary.unsound += u64::from(c.unsound.is_some());
        if !c.storm {
            clean_lat.extend_from_slice(&c.latencies_ps);
            clean_served += c.served as u64;
            clean_end_ps += c.end_ps;
        }
    }
    clean_lat.sort_unstable();
    summary.p50_us = percentile_us(&clean_lat, 50.0);
    summary.p99_us = percentile_us(&clean_lat, 99.0);
    if clean_end_ps > 0 {
        summary.collectives_per_sec = clean_served as f64 / (clean_end_ps as f64 / 1e12);
    }
    summary.table = table;
    summary
}

/// Geometries the boost-mode scaling sweep prices.
pub const SCALING_GEOMETRIES: [u32; 3] = [8, 64, 256];
/// Elements per node of every scaling cell — divisible everywhere, so
/// the boosted reconstruction must be bit-exact in every cell.
pub const SCALING_ELEMS: usize = 1024;

/// One cell of the boost-mode scaling sweep: repeated warm-cache pricing
/// (timeline + timing breakdown) of one collective at one geometry, full
/// schedule vs boost plan.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Collective priced.
    pub kind: CollectiveKind,
    /// Total DPUs.
    pub dpus: u32,
    /// Min wall time of one full pricing pass (ms).
    pub full_ms: f64,
    /// Min wall time of one boosted pricing pass (ms).
    pub boost_ms: f64,
    /// `full_ms / boost_ms`.
    pub speedup: f64,
    /// Transfer-count reduction of the thin slice.
    pub reduction: f64,
    /// The boosted breakdown equalled the full walk bit-for-bit.
    pub exact: bool,
}

/// Prices every Table V collective at [`SCALING_GEOMETRIES`] through the
/// full path (`Timeline::build` + `time_schedule`) and the boosted path
/// ([`pimnet::schedule::boost`] timeline + breakdown), `reps` times each,
/// keeping the per-cell minimum wall time.
///
/// Schedules and plans are prewarmed through the cache on `workers`
/// threads (the fan-out idiom of the other sweeps); the timed passes run
/// sequentially so the two paths see identical, uncontended conditions —
/// the speedup is a same-machine ratio, not an absolute.
#[must_use]
pub fn scaling_cells(reps: u32, workers: usize) -> Vec<ScalingCell> {
    use std::time::Instant;

    let items: Vec<(CollectiveKind, u32)> = CollectiveKind::ALL
        .iter()
        .flat_map(|&kind| SCALING_GEOMETRIES.iter().map(move |&d| (kind, d)))
        .collect();
    // Warm the schedule + plan caches in parallel; measurement below then
    // never builds.
    par::map_ordered_with(workers, items.clone(), |(kind, dpus)| {
        let g = PimGeometry::paper_scaled(dpus);
        cache::boost_cached(kind, &g, SCALING_ELEMS, 4).expect("boost plan builds");
    });

    let timing = TimingModel::paper();
    items
        .into_iter()
        .map(|(kind, dpus)| {
            let g = PimGeometry::paper_scaled(dpus);
            let s = cache::build_cached(kind, &g, SCALING_ELEMS, 4).expect("schedule builds");
            let plan = cache::boost_cached(kind, &g, SCALING_ELEMS, 4).expect("plan builds");

            let full_bd = timing.time_schedule(s.as_ref(), SimTime::ZERO);
            let boost_bd = plan.breakdown(&timing, SimTime::ZERO);
            let exact = full_bd == boost_bd;

            let mut full_s = f64::INFINITY;
            let mut boost_s = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let tl = pimnet::timeline::Timeline::build(s.as_ref(), &timing);
                let bd = timing.time_schedule(s.as_ref(), SimTime::ZERO);
                std::hint::black_box((tl.end, bd));
                full_s = full_s.min(t0.elapsed().as_secs_f64());

                let t1 = Instant::now();
                let tl = plan.timeline(&timing);
                let bd = plan.breakdown(&timing, SimTime::ZERO);
                std::hint::black_box((tl.end, bd));
                boost_s = boost_s.min(t1.elapsed().as_secs_f64());
            }
            ScalingCell {
                kind,
                dpus,
                full_ms: full_s * 1e3,
                boost_ms: boost_s * 1e3,
                speedup: full_s / boost_s.max(1e-12),
                reduction: plan.reduction(),
                exact,
            }
        })
        .collect()
}

/// Renders [`scaling_cells`] as the scaling-gate table.
#[must_use]
pub fn scaling_table(cells: &[ScalingCell]) -> Table {
    let mut t = Table::new(
        "Boost-mode scaling: full vs boosted pricing (warm cache, min wall time)",
        &[
            "collective",
            "DPUs",
            "full_ms",
            "boost_ms",
            "speedup",
            "reduction",
            "exact",
        ],
    );
    for c in cells {
        t.row([
            c.kind.to_string(),
            c.dpus.to_string(),
            format!("{:.4}", c.full_ms),
            format!("{:.4}", c.boost_ms),
            x(c.speedup),
            x(c.reduction),
            if c.exact { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_soak_is_worker_count_invariant() {
        let seq = chaos_soak(2, 0xC40, 1);
        let par2 = chaos_soak(2, 0xC40, 2);
        assert_eq!(seq.table.to_csv(), par2.table.to_csv());
        assert_eq!(seq.total, par2.total);
        assert_eq!(seq.verified, par2.verified);
    }

    #[test]
    fn fig11_metrics_columns_match_the_hand_rolled_formula() {
        // The pre-metrics fig11 computed every column straight off the
        // ExecutionReport's CommBreakdown; the refactored table sources
        // them from the MetricsReport. Pin byte-equivalence of the two on
        // a cheap sub-suite (the full suite's graph workloads are
        // needlessly slow for a formula-equivalence check).
        let suite: Vec<Box<dyn Workload>> = vec![
            Box::new(pim_workloads::mlp::Mlp::new(1024)),
            Box::new(pim_workloads::gemv::Gemv::new(1024, 64)),
            Box::new(pim_workloads::join::HashJoin::paper()),
        ];
        let refactored = fig11_table_for(&suite).to_csv();

        let sys = SystemConfig::paper();
        let fabric = FabricConfig::paper();
        let pim = PimnetBackend::new(sys, fabric);
        let dimm = DimmLinkBackend::new(sys, fabric);
        let ndp = NdpBridgeBackend::new(sys);
        let mut t = Table::new(
            "Fig 11: PIMnet communication-time breakdown and speedup vs D (or N for A2A)",
            &[
                "workload",
                "inter-bank",
                "inter-chip",
                "inter-rank",
                "sync",
                "mem",
                "vs",
                "comm-speedup",
            ],
        );
        for w in &suite {
            let program = w.program(&sys);
            let p = run_program(&program, &sys, &pim).unwrap();
            let total = p.comm.total();
            let frac = |part: SimTime| pct(part.ratio(total));
            let uses_a2a = program
                .collective_kinds()
                .contains(&CollectiveKind::AllToAll);
            let (ref_name, reference): (&str, &dyn CollectiveBackend) =
                if uses_a2a { ("N", &ndp) } else { ("D", &dimm) };
            let r = run_program(&program, &sys, reference).unwrap();
            t.row([
                w.name().to_string(),
                frac(p.comm.inter_bank),
                frac(p.comm.inter_chip),
                frac(p.comm.inter_rank),
                frac(p.comm.sync),
                frac(p.comm.mem),
                ref_name.to_string(),
                x(r.comm.total().ratio(p.comm.total())),
            ]);
        }
        assert_eq!(refactored, t.to_csv(), "fig11 refactor changed the CSV");
    }

    #[test]
    fn fig13_metrics_columns_match_the_plain_simulators() {
        // Same pin for fig13: wall_ps-sourced completion columns must
        // reproduce the NocReport-sourced table byte-for-byte.
        use pim_noc::{simulate_credit, simulate_scheduled, NocConfig};
        use pim_sim::rng::SimRng;

        let refactored = fig13_table(1).to_csv();

        fn ready_times(n: u32, mean_us: f64, jitter: f64, seed: u64) -> Vec<SimTime> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..n)
                .map(|_| {
                    let f = 1.0 + rng.gen_range(-jitter..=jitter);
                    SimTime::from_secs_f64(mean_us * 1e-6 * f)
                })
                .collect()
        }
        let configs = vec![
            (CollectiveKind::AllReduce, 64u32, 2048usize),
            (CollectiveKind::AllReduce, 64, 8192),
            (CollectiveKind::AllToAll, 64, 2048),
            (CollectiveKind::AllToAll, 64, 8192),
        ];
        let mut t = Table::new(
            "Fig 13: credit-based vs PIM-controlled completion time (us)",
            &[
                "collective",
                "DPUs",
                "KB/DPU",
                "credit",
                "scheduled",
                "PIM-control gain",
            ],
        );
        for (kind, n, elems) in configs {
            let cfg = NocConfig::paper();
            let g = PimGeometry::paper_scaled(n);
            let s = cache::build_cached(kind, &g, elems, 4).unwrap();
            let ready = ready_times(n, 50.0, 0.10, 0x000F_1613);
            let credit = simulate_credit(&s, &ready, &cfg);
            let sched = simulate_scheduled(&s, &ready, &cfg);
            let gain = 1.0 - sched.completion.as_secs_f64() / credit.completion.as_secs_f64();
            t.row([
                kind.to_string(),
                n.to_string(),
                (elems * 4 / 1024).to_string(),
                us(credit.completion),
                us(sched.completion),
                format!("{:+.1}%", gain * 100.0),
            ]);
        }
        assert_eq!(refactored, t.to_csv(), "fig13 refactor changed the CSV");
    }

    #[test]
    fn fig17_csv_is_pinned_to_the_committed_artifact() {
        // Fig 17 is now sourced through the serving engine; this pin
        // proves the re-sourcing is byte-identical to the committed
        // artifact of the original direct-backend figure.
        let committed = include_str!("../../../results/fig17_multitenancy.csv");
        assert_eq!(
            fig17_table().to_csv(),
            committed,
            "fig17 through pimnet::serve diverged from the committed CSV"
        );
    }

    #[test]
    fn serve_soak_is_worker_count_invariant_and_sound() {
        let a = serve_soak(3, 1, 0xD1, 1);
        let b = serve_soak(3, 1, 0xD1, 2);
        assert_eq!(a.table.to_csv(), b.table.to_csv());
        assert_eq!(a.log, b.log, "request logs must not depend on workers");
        assert_eq!(a.unsound, 0, "soundness contract violated");
        assert!(a.total > 0 && a.served > 0);
        assert!(a.p50_us > 0.0 && a.p99_us >= a.p50_us);
        assert!(a.collectives_per_sec > 0.0);
    }

    #[test]
    fn fig_tables_are_worker_count_invariant() {
        assert_eq!(
            fig12_table(CollectiveKind::AllReduce, 1).to_csv(),
            fig12_table(CollectiveKind::AllReduce, 3).to_csv()
        );
        assert_eq!(fig13_table(1).to_csv(), fig13_table(4).to_csv());
        let (a1, b1) = fig14_tables(1);
        let (a2, b2) = fig14_tables(2);
        assert_eq!(a1.to_csv(), a2.to_csv());
        assert_eq!(b1.to_csv(), b2.to_csv());
    }
}
