//! Shared sweep computations behind the figure and soak binaries.
//!
//! Each function here produces exactly the [`Table`] its binary prints,
//! as a pure function of its arguments — the binaries are thin argument
//! parsers around this module, and the `perf_gate` harness re-runs the
//! same sweeps at different worker counts to assert the output is
//! byte-identical however it is scheduled.
//!
//! Independent cells (one fault scenario, one figure row) fan out over
//! [`pim_sim::par`], whose ordered result collection is what keeps the
//! tables deterministic under parallel execution.

use pim_arch::geometry::{DpuId, PimGeometry};
use pim_arch::SystemConfig;
use pim_faults::{FaultConfig, FaultInjector, FaultTimeline, PermanentFaultRates, TimelineRates};
use pim_sim::{par, Bandwidth, Bytes, Probe, SimTime};
use pim_workloads::{run_program, run_program_probed, Workload};
use pimnet::backends::{
    BaselineHostBackend, CollectiveBackend, DimmLinkBackend, NdpBridgeBackend, PimnetBackend,
    SoftwareIdealBackend,
};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::exec::{ExecMachine, ReduceOp};
use pimnet::recovery::{run_recovered, RecoveryConfig, RecoveryRequest, RecoveryStats};
use pimnet::resilience::{plan_degraded, DegradedPlan};
use pimnet::schedule::{cache, validate};
use pimnet::timing::TimingModel;
use pimnet::FabricConfig;

use crate::{pct, us, x, Table};

/// Elements per node every chaos scenario communicates.
pub const CHAOS_ELEMS: usize = 64;
/// Collectives the chaos soak sweeps.
pub const CHAOS_KINDS: [CollectiveKind; 4] = [
    CollectiveKind::AllReduce,
    CollectiveKind::AllGather,
    CollectiveKind::AllToAll,
    CollectiveKind::Broadcast,
];
/// Geometries the chaos soak sweeps.
pub const CHAOS_GEOMETRIES: [u32; 3] = [8, 64, 256];

/// The seeded fault storm every chaos scenario samples from.
#[must_use]
pub fn chaos_config(seed: u64) -> FaultConfig {
    FaultConfig {
        transient_ber: 0.02,
        straggler_prob: 0.1,
        straggler_max_ns: 5_000,
        max_retries: 8,
        perm_rates: PermanentFaultRates {
            segment_prob: 0.02,
            port_prob: 0.02,
            rank_prob: 0.03,
        },
        ..FaultConfig::none()
    }
    .with_seed(seed)
}

/// What one chaos scenario (one seed of one cell) did.
struct ScenarioOutcome {
    /// Ladder tier the planner landed on, `None` when nothing was
    /// plannable (every rank sampled dead).
    tier: Option<usize>,
    rerouted: usize,
    remapped: usize,
    extra_steps: usize,
    /// Repaired-over-clean completion-time stretch (0 unless Repaired).
    stretch: f64,
    /// The plan executed bit-identically under transient faults.
    verified: bool,
}

/// Accumulated outcomes of one geometry × collective cell.
#[derive(Default)]
struct CellStats {
    tiers: [u32; 4],
    unplannable: u32,
    rerouted: usize,
    remapped: usize,
    extra_steps: usize,
    worst_stretch: f64,
    verified: u32,
}

impl CellStats {
    fn fold(&mut self, s: &ScenarioOutcome) {
        match s.tier {
            Some(t) => self.tiers[t] += 1,
            None => self.unplannable += 1,
        }
        self.rerouted += s.rerouted;
        self.remapped += s.remapped;
        self.extra_steps += s.extra_steps;
        self.worst_stretch = self.worst_stretch.max(s.stretch);
        self.verified += u32::from(s.verified);
    }
}

/// Drives one seeded scenario through the full plan → repair → validate
/// → execute → verify pipeline. Pure function of its arguments.
fn soak_scenario(kind: CollectiveKind, dpus: u32, seed: u64) -> ScenarioOutcome {
    let g = PimGeometry::paper_scaled(dpus);
    let sys = SystemConfig::paper_scaled(dpus);
    let timing = TimingModel::paper();
    let mut out = ScenarioOutcome {
        tier: None,
        rerouted: 0,
        remapped: 0,
        extra_steps: 0,
        stretch: 0.0,
        verified: false,
    };
    let inj = FaultInjector::new(chaos_config(seed));
    let plan = match plan_degraded(kind, &g, CHAOS_ELEMS, 4, &inj, &sys) {
        Ok(p) => p,
        // Every rank sampled dead: nothing left to plan, which the
        // planner reports as a typed error rather than a panic.
        Err(_) => return out,
    };
    out.tier = Some(plan.tier() as usize);
    let Some(s) = plan.schedule() else {
        return out; // host fallback: no PIM-side schedule to verify
    };
    validate::validate(s).expect("planned schedule failed validation");
    if let DegradedPlan::Repaired { report, .. } = &plan {
        out.rerouted = report.rerouted_transfers;
        out.remapped = report.remapped_transfers;
        out.extra_steps = report.extra_steps;
        let clean = cache::build_cached(kind, &g, CHAOS_ELEMS, 4).unwrap();
        out.stretch = timing.time_schedule(s, SimTime::ZERO).total().as_secs_f64()
            / timing
                .time_schedule(&clean, SimTime::ZERO)
                .total()
                .as_secs_f64();
    }
    // Execute under transient faults and check bit-identity against the
    // same schedule's clean run (for Full/Repaired that clean run is by
    // construction identical to the fault-free reference plan).
    let init = |id: pim_arch::geometry::DpuId| vec![u64::from(id.0) + 1; CHAOS_ELEMS];
    let mut clean_m = ExecMachine::init(s, init);
    clean_m.run(s, ReduceOp::Sum);
    let mut faulty_m = ExecMachine::init(s, init);
    faulty_m
        .run_with_faults(s, ReduceOp::Sum, &inj)
        .expect("retry budget exhausted");
    assert_eq!(clean_m, faulty_m, "faulty run diverged");
    out.verified = true;
    out
}

/// The chaos-soak table plus its scenario totals.
pub struct ChaosSummary {
    /// The table the `chaos_soak` binary prints and emits as CSV.
    pub table: Table,
    /// Scenarios swept (cells × seeds per cell).
    pub total: u32,
    /// Scenarios whose PIM-side plan executed bit-identically.
    pub verified: u32,
}

/// Runs the full chaos-soak sweep (`per_cell` seeds from `base` for
/// every geometry × collective cell) on `workers` threads.
///
/// Scenarios are independent, so they fan out at seed granularity; the
/// ordered fold below reproduces the sequential table byte-for-byte at
/// any worker count.
#[must_use]
pub fn chaos_soak(per_cell: u64, base: u64, workers: usize) -> ChaosSummary {
    let mut scenarios = Vec::new();
    for &dpus in &CHAOS_GEOMETRIES {
        for kind in CHAOS_KINDS {
            for seed in base..base + per_cell {
                scenarios.push((kind, dpus, seed));
            }
        }
    }
    let outcomes = par::map_ordered_with(workers, scenarios, |(kind, dpus, seed)| {
        soak_scenario(kind, dpus, seed)
    });

    let mut t = Table::new(
        "chaos soak: ladder tiers and repair cost per scenario cell",
        &[
            "dpus",
            "collective",
            "full",
            "repaired",
            "shrunk",
            "host",
            "no-plan",
            "rerouted",
            "remapped",
            "+steps",
            "worst-stretch",
            "verified",
        ],
    );
    let mut total = 0u32;
    let mut verified = 0u32;
    let mut chunks = outcomes.chunks(per_cell.max(1) as usize);
    for &dpus in &CHAOS_GEOMETRIES {
        for kind in CHAOS_KINDS {
            let mut s = CellStats::default();
            if per_cell > 0 {
                for outcome in chunks.next().expect("scenario chunk per cell") {
                    s.fold(outcome);
                }
            }
            total += per_cell as u32;
            verified += s.verified;
            t.row([
                dpus.to_string(),
                kind.to_string(),
                s.tiers[0].to_string(),
                s.tiers[1].to_string(),
                s.tiers[2].to_string(),
                s.tiers[3].to_string(),
                s.unplannable.to_string(),
                s.rerouted.to_string(),
                s.remapped.to_string(),
                s.extra_steps.to_string(),
                format!("{:.2}x", s.worst_stretch.max(1.0)),
                s.verified.to_string(),
            ]);
        }
    }
    ChaosSummary {
        table: t,
        total,
        verified,
    }
}

/// Elements per node every recovery scenario communicates (small: each
/// scenario single-steps the executor on the recovery clock).
pub const RECOVERY_ELEMS: usize = 32;
/// Geometries the recovery soak sweeps (smaller than the chaos matrix —
/// recovery runs the functional executor step-by-step, not just the
/// planner).
pub const RECOVERY_GEOMETRIES: [u32; 2] = [8, 16];
/// Simulated horizon every scenario's storm is sampled over.
pub const RECOVERY_HORIZON_PS: u64 = 50_000_000;

/// Per-component storm probabilities each recovery scenario samples its
/// time-varying [`FaultTimeline`] from: mid-run permanent arrivals, link
/// flaps and BER bursts, on top of [`recovery_config`]'s background
/// transients. Rank deaths are kept rarer so the matrix exercises the
/// upper ladder tiers, not just host fallback.
#[must_use]
pub fn recovery_rates() -> TimelineRates {
    TimelineRates {
        segment_arrival_prob: 0.06,
        port_arrival_prob: 0.04,
        rank_arrival_prob: 0.02,
        flap_prob: 0.10,
        burst_prob: 0.12,
        burst_ber: 0.8,
    }
}

/// The background (non-timeline) fault configuration of a recovery
/// scenario: mild always-on corruption and stragglers, a real retry
/// budget for the backoff ladder to spend.
#[must_use]
pub fn recovery_config(seed: u64) -> FaultConfig {
    FaultConfig {
        transient_ber: 0.002,
        straggler_prob: 0.05,
        straggler_max_ns: 500,
        max_retries: 8,
        ..FaultConfig::none()
    }
    .with_seed(seed)
}

/// What one recovery scenario (one seed of one cell) did.
struct RecoveryOutcome {
    /// Ladder tier the run ended on; `None` when the storm left nothing
    /// plannable at all (a typed error, counted separately).
    tier: Option<u8>,
    stats: RecoveryStats,
    /// The tier <= 1 result was checked bit-identical to the fault-free
    /// run of the same cell.
    verified: bool,
    /// The end state honored the soundness contract (tier <= 1 implies
    /// bit-identity, machines exactly where the tier promises one, host
    /// fallback carries a typed trail).
    sound: bool,
}

/// Accumulated recovery outcomes of one geometry × collective cell.
#[derive(Default)]
struct RecoveryCellStats {
    tiers: [u32; 4],
    unplannable: u32,
    retries: u64,
    replans: u64,
    quarantines: u64,
    arrivals: u64,
    verified: u32,
    unsound: u32,
}

impl RecoveryCellStats {
    fn fold(&mut self, s: &RecoveryOutcome) {
        match s.tier {
            Some(t) => self.tiers[usize::from(t.min(3))] += 1,
            None => self.unplannable += 1,
        }
        self.retries += s.stats.step_retries;
        self.replans += s.stats.replans;
        self.quarantines += s.stats.quarantines;
        self.arrivals += s.stats.arrivals_applied;
        self.verified += u32::from(s.verified);
        self.unsound += u32::from(!s.sound);
    }
}

/// Drives one seeded time-varying scenario through the runtime recovery
/// manager and verdicts its end state. Pure function of its arguments.
fn recovery_scenario(kind: CollectiveKind, dpus: u32, seed: u64) -> RecoveryOutcome {
    let g = PimGeometry::paper_scaled(dpus);
    let sys = SystemConfig::paper_scaled(dpus);
    let timing = TimingModel::paper();
    let mut cfg = recovery_config(seed);
    cfg.timeline = FaultTimeline::sample(
        seed,
        g.ranks_per_channel,
        g.chips_per_rank,
        g.banks_per_chip,
        RECOVERY_HORIZON_PS,
        &recovery_rates(),
    );
    let injector = FaultInjector::new(cfg);
    let req = RecoveryRequest {
        kind,
        geometry: &g,
        elems_per_node: RECOVERY_ELEMS,
        elem_bytes: 8,
        op: ReduceOp::Sum,
        injector: &injector,
        system: &sys,
        timing: &timing,
        config: RecoveryConfig::default(),
    };
    let init = |id: DpuId| vec![u64::from(id.0) + 1; RECOVERY_ELEMS];
    let out = match run_recovered::<u64>(&req, init) {
        Ok(out) => out,
        // The storm left nothing plannable (e.g. every rank sampled
        // dead): a typed end state of its own, not a ladder tier.
        Err(_) => {
            return RecoveryOutcome {
                tier: None,
                stats: RecoveryStats::default(),
                verified: false,
                sound: true,
            }
        }
    };
    let (verified, sound) = match (out.plan_tier, out.machine.as_ref()) {
        (0 | 1, Some(m)) => {
            // Full/Repaired keep the fault-free buffer layout, so the
            // recovered result must be bit-identical to the clean run.
            let s = cache::build_cached(kind, &g, RECOVERY_ELEMS, 8).expect("reference schedule");
            let mut clean = ExecMachine::init(&s, init);
            clean.run(&s, ReduceOp::Sum);
            let ok = s
                .participants()
                .all(|id| m.result(&s, id) == clean.result(&s, id));
            (ok, ok)
        }
        (2, Some(_)) => (false, true),
        (3, None) => (false, !out.error_trail.is_empty()),
        // Anything else breaks the machine-iff-tier-promises-one rule.
        _ => (false, false),
    };
    RecoveryOutcome {
        tier: Some(out.plan_tier),
        stats: out.stats,
        verified,
        sound,
    }
}

/// The recovery-soak table plus its scenario totals.
pub struct RecoverySummary {
    /// The table the `recovery_soak` binary prints and emits as CSV.
    pub table: Table,
    /// Scenarios swept (cells × seeds per cell).
    pub total: u32,
    /// Scenarios whose tier <= 1 result was checked bit-identical.
    pub verified: u32,
    /// Scenarios that violated the soundness contract (must stay 0).
    pub unsound: u32,
}

/// Runs the full recovery soak (`per_cell` seeds from `base` for every
/// geometry × collective cell) on `workers` threads: every scenario
/// executes step-by-step under a sampled time-varying storm, with
/// checkpointed resume, health quarantine and ladder replans.
///
/// Scenarios are independent, so they fan out at seed granularity; the
/// ordered fold below reproduces the sequential table byte-for-byte at
/// any worker count.
#[must_use]
pub fn recovery_soak(per_cell: u64, base: u64, workers: usize) -> RecoverySummary {
    let mut scenarios = Vec::new();
    for &dpus in &RECOVERY_GEOMETRIES {
        for kind in CHAOS_KINDS {
            for seed in base..base + per_cell {
                scenarios.push((kind, dpus, seed));
            }
        }
    }
    let outcomes = par::map_ordered_with(workers, scenarios, |(kind, dpus, seed)| {
        recovery_scenario(kind, dpus, seed)
    });

    let mut t = Table::new(
        "recovery soak: runtime arrivals, quarantines and replans per scenario cell",
        &[
            "dpus",
            "collective",
            "full",
            "repaired",
            "shrunk",
            "host",
            "no-plan",
            "retries",
            "replans",
            "quarantines",
            "arrivals",
            "verified",
            "unsound",
        ],
    );
    let mut total = 0u32;
    let mut verified = 0u32;
    let mut unsound = 0u32;
    let mut chunks = outcomes.chunks(per_cell.max(1) as usize);
    for &dpus in &RECOVERY_GEOMETRIES {
        for kind in CHAOS_KINDS {
            let mut s = RecoveryCellStats::default();
            if per_cell > 0 {
                for outcome in chunks.next().expect("scenario chunk per cell") {
                    s.fold(outcome);
                }
            }
            total += per_cell as u32;
            verified += s.verified;
            unsound += s.unsound;
            t.row([
                dpus.to_string(),
                kind.to_string(),
                s.tiers[0].to_string(),
                s.tiers[1].to_string(),
                s.tiers[2].to_string(),
                s.tiers[3].to_string(),
                s.unplannable.to_string(),
                s.retries.to_string(),
                s.replans.to_string(),
                s.quarantines.to_string(),
                s.arrivals.to_string(),
                s.verified.to_string(),
                s.unsound.to_string(),
            ]);
        }
    }
    RecoverySummary {
        table: t,
        total,
        verified,
        unsound,
    }
}

/// Fig 12 weak-scaling row sizes.
pub const FIG12_SIZES: [u32; 6] = [8, 16, 32, 64, 128, 256];

/// One Fig 12 table: `kind`'s speedup over the host baseline at every
/// system size, rows computed on `workers` threads.
#[must_use]
pub fn fig12_table(kind: CollectiveKind, workers: usize) -> Table {
    let spec = CollectiveSpec::new(kind, Bytes::kib(32));
    let rows = par::map_ordered_with(workers, FIG12_SIZES.to_vec(), move |n| {
        let sys = SystemConfig::paper_scaled(n);
        let fabric = FabricConfig::paper();
        let base = BaselineHostBackend::new(sys)
            .collective(&spec)
            .unwrap()
            .total();
        let cell = |b: &dyn CollectiveBackend| match b.collective(&spec) {
            Ok(r) => format!("{:.2}", base.ratio(r.total())),
            Err(_) => "n/a".to_string(),
        };
        [
            n.to_string(),
            cell(&SoftwareIdealBackend::new(sys)),
            cell(&NdpBridgeBackend::new(sys)),
            cell(&DimmLinkBackend::new(sys, fabric)),
            cell(&PimnetBackend::new(sys, fabric)),
        ]
    });
    let mut t = Table::new(
        &format!("Fig 12: {kind} speedup over baseline (weak scaling, 32 KB/DPU)"),
        &["DPUs", "S", "N", "D", "P"],
    );
    for row in rows {
        t.row(row);
    }
    t
}

/// One Fig 11 row set over an explicit workload list: the PIMnet
/// communication-time breakdown plus the speedup over the reference
/// backend (DIMM-Link, or NDPBridge for All-to-All workloads).
///
/// The breakdown columns are sourced from the [`pim_sim::MetricsReport`]
/// that [`run_program_probed`] fills — per-tier communication time plus
/// the sync/mem buckets — rather than from hand-rolled accumulation over
/// [`pimnet::timing::CommBreakdown`] fields; the metrics sink counts in
/// exact integer picoseconds, so the output is byte-identical to the
/// pre-metrics formula (`tests` below pin this).
#[must_use]
pub fn fig11_table_for(suite: &[Box<dyn Workload>]) -> Table {
    let sys = SystemConfig::paper();
    let fabric = FabricConfig::paper();
    let pim = PimnetBackend::new(sys, fabric);
    let dimm = DimmLinkBackend::new(sys, fabric);
    let ndp = NdpBridgeBackend::new(sys);

    let mut t = Table::new(
        "Fig 11: PIMnet communication-time breakdown and speedup vs D (or N for A2A)",
        &[
            "workload",
            "inter-bank",
            "inter-chip",
            "inter-rank",
            "sync",
            "mem",
            "vs",
            "comm-speedup",
        ],
    );
    for w in suite {
        let program = w.program(&sys);
        let probe = Probe::metrics_only();
        run_program_probed(&program, &sys, &pim, &probe).expect("pimnet run");
        let r = probe.metrics.snapshot();
        let comm_total = SimTime::from_ps(
            r.comm_time_ps_by_tier.iter().sum::<u64>()
                + r.sync_time_ps
                + r.mem_time_ps
                + r.host_time_ps,
        );
        let frac = |ps: u64| pct(SimTime::from_ps(ps).ratio(comm_total));

        // Reference system: DIMM-Link, except for A2A workloads where the
        // paper normalizes to NDPBridge.
        let uses_a2a = program
            .collective_kinds()
            .contains(&CollectiveKind::AllToAll);
        let (ref_name, reference): (&str, &dyn CollectiveBackend) =
            if uses_a2a { ("N", &ndp) } else { ("D", &dimm) };
        let reference = run_program(&program, &sys, reference).expect("reference run");

        t.row([
            w.name().to_string(),
            frac(r.comm_time_ps_by_tier[1]),
            frac(r.comm_time_ps_by_tier[2]),
            frac(r.comm_time_ps_by_tier[3]),
            frac(r.sync_time_ps),
            frac(r.mem_time_ps),
            ref_name.to_string(),
            x(reference.comm.total().ratio(comm_total)),
        ]);
    }
    t
}

/// The full-suite Fig 11 table (what the `fig11_comm_breakdown` binary
/// prints).
#[must_use]
pub fn fig11_table() -> Table {
    fig11_table_for(&pim_workloads::paper_suite())
}

/// The Fig 13 credit-vs-scheduled table, rows computed on `workers`
/// threads.
///
/// Completion columns are sourced from the `wall_ps` watermark of each
/// simulation's [`pim_sim::MetricsReport`] — both NoC simulators record
/// their completion time there in exact picoseconds, so the table is
/// byte-identical to reading `NocReport::completion` directly (`tests`
/// below pin this).
#[must_use]
pub fn fig13_table(workers: usize) -> Table {
    use pim_noc::{simulate_credit_probed, simulate_scheduled_probed, NocConfig};
    use pim_sim::rng::SimRng;

    fn ready_times(n: u32, mean_us: f64, jitter: f64, seed: u64) -> Vec<SimTime> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let f = 1.0 + rng.gen_range(-jitter..=jitter);
                SimTime::from_secs_f64(mean_us * 1e-6 * f)
            })
            .collect()
    }

    let configs = vec![
        (CollectiveKind::AllReduce, 64u32, 2048usize),
        (CollectiveKind::AllReduce, 64, 8192),
        (CollectiveKind::AllToAll, 64, 2048),
        (CollectiveKind::AllToAll, 64, 8192),
    ];
    let rows = par::map_ordered_with(workers, configs, |(kind, n, elems)| {
        let cfg = NocConfig::paper();
        let g = PimGeometry::paper_scaled(n);
        let s = cache::build_cached(kind, &g, elems, 4).expect("schedule");
        let ready = ready_times(n, 50.0, 0.10, 0x000F_1613);
        let credit_probe = Probe::metrics_only();
        let _ = simulate_credit_probed(&s, &ready, &cfg, &credit_probe);
        let sched_probe = Probe::metrics_only();
        let _ = simulate_scheduled_probed(&s, &ready, &cfg, &sched_probe);
        let credit = SimTime::from_ps(credit_probe.metrics.snapshot().wall_ps);
        let sched = SimTime::from_ps(sched_probe.metrics.snapshot().wall_ps);
        let gain = 1.0 - sched.as_secs_f64() / credit.as_secs_f64();
        [
            kind.to_string(),
            n.to_string(),
            (elems * 4 / 1024).to_string(),
            us(credit),
            us(sched),
            format!("{:+.1}%", gain * 100.0),
        ]
    });
    let mut t = Table::new(
        "Fig 13: credit-based vs PIM-controlled completion time (us)",
        &[
            "collective",
            "DPUs",
            "KB/DPU",
            "credit",
            "scheduled",
            "PIM-control gain",
        ],
    );
    for row in rows {
        t.row(row);
    }
    t
}

/// The two Fig 14 bandwidth-sweep tables, rows computed on `workers`
/// threads.
#[must_use]
pub fn fig14_tables(workers: usize) -> (Table, Table) {
    let sys = SystemConfig::paper();
    let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
    let dimm = DimmLinkBackend::new(sys, FabricConfig::paper())
        .collective(&spec)
        .expect("dimm-link")
        .total();

    let rows_a = par::map_ordered_with(workers, vec![1u32, 2, 3, 5, 7, 10], move |tenths| {
        let bw = Bandwidth::mbps(f64::from(tenths) * 100.0);
        let fabric = FabricConfig::paper().with_bank_channel_bw(bw);
        let p = PimnetBackend::new(sys, fabric)
            .collective(&spec)
            .unwrap()
            .total();
        [
            format!("{:.1}", f64::from(tenths) / 10.0),
            us(p),
            us(dimm),
            x(dimm.ratio(p)),
        ]
    });
    let mut a = Table::new(
        "Fig 14(a): AllReduce vs inter-bank channel bandwidth",
        &[
            "bank GB/s",
            "PIMnet (us)",
            "DIMM-Link (us)",
            "PIMnet advantage",
        ],
    );
    for row in rows_a {
        a.row(row);
    }

    let rows_b = par::map_ordered_with(workers, vec![1u32, 2, 4, 8], move |quarters| {
        let scale = f64::from(quarters) / 4.0;
        let fabric = FabricConfig::paper()
            .with_chip_channel_bw(Bandwidth::mbps(1050.0 * scale))
            .with_rank_bus_bw(Bandwidth::mbps(16_800.0 * scale));
        let p = PimnetBackend::new(sys, fabric)
            .collective(&spec)
            .unwrap()
            .total();
        [
            format!("{scale:.2}x"),
            format!("{:.2}", 1.05 * scale),
            format!("{:.1}", 16.8 * scale),
            us(p),
            x(dimm.ratio(p)),
        ]
    });
    let mut b = Table::new(
        "Fig 14(b): AllReduce vs inter-chip/inter-rank bandwidth (inter-bank fixed at 0.7)",
        &[
            "global scale",
            "chip GB/s",
            "rank GB/s",
            "PIMnet (us)",
            "PIMnet advantage",
        ],
    );
    for row in rows_b {
        b.row(row);
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_soak_is_worker_count_invariant() {
        let seq = chaos_soak(2, 0xC40, 1);
        let par2 = chaos_soak(2, 0xC40, 2);
        assert_eq!(seq.table.to_csv(), par2.table.to_csv());
        assert_eq!(seq.total, par2.total);
        assert_eq!(seq.verified, par2.verified);
    }

    #[test]
    fn fig11_metrics_columns_match_the_hand_rolled_formula() {
        // The pre-metrics fig11 computed every column straight off the
        // ExecutionReport's CommBreakdown; the refactored table sources
        // them from the MetricsReport. Pin byte-equivalence of the two on
        // a cheap sub-suite (the full suite's graph workloads are
        // needlessly slow for a formula-equivalence check).
        let suite: Vec<Box<dyn Workload>> = vec![
            Box::new(pim_workloads::mlp::Mlp::new(1024)),
            Box::new(pim_workloads::gemv::Gemv::new(1024, 64)),
            Box::new(pim_workloads::join::HashJoin::paper()),
        ];
        let refactored = fig11_table_for(&suite).to_csv();

        let sys = SystemConfig::paper();
        let fabric = FabricConfig::paper();
        let pim = PimnetBackend::new(sys, fabric);
        let dimm = DimmLinkBackend::new(sys, fabric);
        let ndp = NdpBridgeBackend::new(sys);
        let mut t = Table::new(
            "Fig 11: PIMnet communication-time breakdown and speedup vs D (or N for A2A)",
            &[
                "workload",
                "inter-bank",
                "inter-chip",
                "inter-rank",
                "sync",
                "mem",
                "vs",
                "comm-speedup",
            ],
        );
        for w in &suite {
            let program = w.program(&sys);
            let p = run_program(&program, &sys, &pim).unwrap();
            let total = p.comm.total();
            let frac = |part: SimTime| pct(part.ratio(total));
            let uses_a2a = program
                .collective_kinds()
                .contains(&CollectiveKind::AllToAll);
            let (ref_name, reference): (&str, &dyn CollectiveBackend) =
                if uses_a2a { ("N", &ndp) } else { ("D", &dimm) };
            let r = run_program(&program, &sys, reference).unwrap();
            t.row([
                w.name().to_string(),
                frac(p.comm.inter_bank),
                frac(p.comm.inter_chip),
                frac(p.comm.inter_rank),
                frac(p.comm.sync),
                frac(p.comm.mem),
                ref_name.to_string(),
                x(r.comm.total().ratio(p.comm.total())),
            ]);
        }
        assert_eq!(refactored, t.to_csv(), "fig11 refactor changed the CSV");
    }

    #[test]
    fn fig13_metrics_columns_match_the_plain_simulators() {
        // Same pin for fig13: wall_ps-sourced completion columns must
        // reproduce the NocReport-sourced table byte-for-byte.
        use pim_noc::{simulate_credit, simulate_scheduled, NocConfig};
        use pim_sim::rng::SimRng;

        let refactored = fig13_table(1).to_csv();

        fn ready_times(n: u32, mean_us: f64, jitter: f64, seed: u64) -> Vec<SimTime> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..n)
                .map(|_| {
                    let f = 1.0 + rng.gen_range(-jitter..=jitter);
                    SimTime::from_secs_f64(mean_us * 1e-6 * f)
                })
                .collect()
        }
        let configs = vec![
            (CollectiveKind::AllReduce, 64u32, 2048usize),
            (CollectiveKind::AllReduce, 64, 8192),
            (CollectiveKind::AllToAll, 64, 2048),
            (CollectiveKind::AllToAll, 64, 8192),
        ];
        let mut t = Table::new(
            "Fig 13: credit-based vs PIM-controlled completion time (us)",
            &[
                "collective",
                "DPUs",
                "KB/DPU",
                "credit",
                "scheduled",
                "PIM-control gain",
            ],
        );
        for (kind, n, elems) in configs {
            let cfg = NocConfig::paper();
            let g = PimGeometry::paper_scaled(n);
            let s = cache::build_cached(kind, &g, elems, 4).unwrap();
            let ready = ready_times(n, 50.0, 0.10, 0x000F_1613);
            let credit = simulate_credit(&s, &ready, &cfg);
            let sched = simulate_scheduled(&s, &ready, &cfg);
            let gain = 1.0 - sched.completion.as_secs_f64() / credit.completion.as_secs_f64();
            t.row([
                kind.to_string(),
                n.to_string(),
                (elems * 4 / 1024).to_string(),
                us(credit.completion),
                us(sched.completion),
                format!("{:+.1}%", gain * 100.0),
            ]);
        }
        assert_eq!(refactored, t.to_csv(), "fig13 refactor changed the CSV");
    }

    #[test]
    fn fig_tables_are_worker_count_invariant() {
        assert_eq!(
            fig12_table(CollectiveKind::AllReduce, 1).to_csv(),
            fig12_table(CollectiveKind::AllReduce, 3).to_csv()
        );
        assert_eq!(fig13_table(1).to_csv(), fig13_table(4).to_csv());
        let (a1, b1) = fig14_tables(1);
        let (a2, b2) = fig14_tables(2);
        assert_eq!(a1.to_csv(), a2.to_csv());
        assert_eq!(b1.to_csv(), b2.to_csv());
    }
}
