//! Table V: how each collective maps onto the PIMnet tiers — derived from
//! the actual compiled schedules, not hard-coded strings.

use pim_arch::PimGeometry;
use pim_sim::SimTime;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::{CommSchedule, PhaseLabel};
use pimnet::timing::TimingModel;
use pimnet_bench::{us, Table};

fn tier_word(kind: CollectiveKind, label: PhaseLabel) -> &'static str {
    match (label, kind) {
        (PhaseLabel::Local, _) => "Local",
        (PhaseLabel::InterBank, _) => "Ring(inter-bank)",
        (PhaseLabel::InterChip, CollectiveKind::AllToAll) => "Permutation(inter-chip)",
        (PhaseLabel::InterChip, _) => "Ring(inter-chip)",
        (PhaseLabel::InterRank, CollectiveKind::AllToAll) => "Unicast(inter-rank)",
        (PhaseLabel::InterRank, _) => "Broadcast(inter-rank)",
    }
}

fn main() {
    let g = PimGeometry::paper();
    let timing = TimingModel::paper();
    let mut t = Table::new(
        "Table V: collective primitives on PIMnet (from compiled schedules)",
        &[
            "collective",
            "tier sequence",
            "steps",
            "wire bytes",
            "time @32KB/DPU",
        ],
    );
    for kind in CollectiveKind::ALL {
        let s = CommSchedule::build(kind, &g, 8192, 4).expect("schedule");
        let seq: Vec<&str> = s
            .phases
            .iter()
            .filter(|p| p.label != PhaseLabel::Local)
            .map(|p| tier_word(kind, p.label))
            .collect();
        t.row([
            kind.to_string(),
            seq.join(" -> "),
            s.step_count().to_string(),
            s.total_wire_bytes().to_string(),
            us(timing.time_schedule(&s, SimTime::ZERO).total()),
        ]);
    }
    t.emit("table05_collectives");
}
