//! Fig 16: embedding-table lookup with memory-channel scaling.
//!
//! PIMnet connects banks within one channel; cross-channel data still goes
//! through the host — but after a channel-wise reduction, so the host sees
//! one partial per channel instead of one per DPU. The baseline's host CPU
//! work grows with total DPUs, so PIMnet's speedup *increases* with the
//! channel count.

use pim_arch::SystemConfig;
use pim_workloads::emb::Emb;
use pim_workloads::program::Phase;
use pim_workloads::Workload;
use pimnet::backends::{
    multi_channel_collective, BaselineHostBackend, CollectiveBackend, PimnetBackend,
};
use pimnet::collective::CollectiveSpec;
use pimnet::FabricConfig;
use pimnet_bench::{us, x, Table};

/// Runs a program with every collective composed across `channels`.
fn run_multichannel(
    program: &pim_workloads::Program,
    sys: &SystemConfig,
    backend: &dyn CollectiveBackend,
    channels: u32,
) -> pim_sim::SimTime {
    let mut compute = pim_sim::SimTime::ZERO;
    let mut comm = pim_sim::SimTime::ZERO;
    let mut skew = pim_sim::SimTime::ZERO;
    for phase in &program.phases {
        match phase {
            Phase::Compute { per_dpu, imbalance } => {
                let t = sys.dpu.compute_time(per_dpu);
                compute += t;
                skew = pim_sim::SimTime::from_secs_f64(t.as_secs_f64() * imbalance);
            }
            Phase::Collective {
                kind,
                bytes_per_dpu,
                elem_bytes,
            } => {
                let spec = CollectiveSpec::new(*kind, *bytes_per_dpu)
                    .with_elem_bytes(*elem_bytes)
                    .with_skew(skew);
                comm += multi_channel_collective(backend, &sys.host, channels, &spec)
                    .expect("collective")
                    .total();
                skew = pim_sim::SimTime::ZERO;
            }
        }
    }
    compute + comm
}

fn main() {
    let sys = SystemConfig::paper();
    let program = Emb::synth().program(&sys);
    let base = BaselineHostBackend::new(sys);
    let pim = PimnetBackend::new(sys, FabricConfig::paper());

    let mut t = Table::new(
        "Fig 16: EMB_Synth with memory-channel scaling (weak scaling by channel)",
        &["channels", "Baseline (us)", "PIMnet (us)", "PIMnet speedup"],
    );
    for channels in [1u32, 2, 4, 8] {
        let tb = run_multichannel(&program, &sys, &base, channels);
        let tp = run_multichannel(&program, &sys, &pim, channels);
        t.row([channels.to_string(), us(tb), us(tp), x(tb.ratio(tp))]);
    }
    t.emit("fig16_multichannel");
    println!("Paper: speedup over the baseline grows with the channel count.");
}
