//! Fig 3: weak-scaling of AllReduce and All-to-All across PIM
//! implementations (8 → 256 DPUs, 32 KB per DPU), normalized to the
//! baseline system at 8 PIM banks.
//!
//! Normalized performance = (n / 8) × t_baseline(8) / t(n): with weak
//! scaling the delivered work grows with n, so a flat line means perfect
//! scalability.

use pim_arch::SystemConfig;
use pim_sim::Bytes;
use pimnet::backends::{
    BaselineHostBackend, CollectiveBackend, PimnetBackend, SoftwareIdealBackend,
};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::FabricConfig;
use pimnet_bench::Table;

fn main() {
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let spec = CollectiveSpec::new(kind, Bytes::kib(32));
        let base8 = BaselineHostBackend::new(SystemConfig::paper_scaled(8))
            .collective(&spec)
            .expect("baseline@8")
            .total();

        let mut t = Table::new(
            &format!("Fig 3: {kind} weak scaling (normalized to Baseline @ 8 DPUs)"),
            &["DPUs", "Baseline", "Software (Ideal)", "PIMnet"],
        );
        for n in [8u32, 16, 32, 64, 128, 256] {
            let sys = SystemConfig::paper_scaled(n);
            let norm = |total: pim_sim::SimTime| {
                format!(
                    "{:.2}",
                    (f64::from(n) / 8.0) * base8.as_secs_f64() / total.as_secs_f64()
                )
            };
            let b = BaselineHostBackend::new(sys)
                .collective(&spec)
                .unwrap()
                .total();
            let s = SoftwareIdealBackend::new(sys)
                .collective(&spec)
                .unwrap()
                .total();
            let p = PimnetBackend::new(sys, FabricConfig::paper())
                .collective(&spec)
                .unwrap()
                .total();
            t.row([n.to_string(), norm(b), norm(s), norm(p)]);
        }
        t.emit(&format!("fig03_{}", kind.abbrev().to_lowercase()));
    }

    // The headline number: PIMnet vs baseline on collectives at 256 DPUs.
    let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
    let sys = SystemConfig::paper();
    let b = BaselineHostBackend::new(sys)
        .collective(&spec)
        .unwrap()
        .total();
    let p = PimnetBackend::new(sys, FabricConfig::paper())
        .collective(&spec)
        .unwrap()
        .total();
    println!(
        "AllReduce @ 256 DPUs: baseline {b}, PIMnet {p} -> {:.1}x (paper: up to 85x)",
        b.ratio(p)
    );
}
