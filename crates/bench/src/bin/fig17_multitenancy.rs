//! Fig 17: multi-tenancy with spatial mapping.
//!
//! Two tenants each own two ranks of the channel. With host-based
//! communication both tenants' collectives share the one host↔PIM path, so
//! each sees roughly half the bandwidth. With PIMnet the inter-bank and
//! inter-chip tiers are physically private to each tenant's ranks — only
//! the inter-rank bus is shared — so tenants barely slow each other down:
//! bandwidth isolation, the property the paper highlights.
//!
//! Every cell is sourced through `pimnet::serve`, the multi-tenant
//! serving engine: the PIM rows are its analytic fast path (which prices
//! service exactly like `PimnetBackend::collective`), the host-based
//! rows pin the overload ladder at the host-fallback tier (exactly
//! `BaselineHostBackend`). The committed CSV is byte-identical to the
//! figure's original direct-backend sourcing, and a pin test in
//! `sweeps` keeps it that way.

use pimnet_bench::sweeps;

fn main() {
    sweeps::fig17_table().emit("fig17_multitenancy");
    println!(
        "PIMnet isolates tenant bandwidth: its slowdown under co-tenancy is \
         near 1x, while host-based communication degrades towards 2x."
    );
}
