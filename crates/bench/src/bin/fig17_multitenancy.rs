//! Fig 17: multi-tenancy with spatial mapping.
//!
//! Two tenants each own two ranks of the channel. With host-based
//! communication both tenants' collectives share the one host↔PIM path, so
//! each sees roughly half the bandwidth. With PIMnet the inter-bank and
//! inter-chip tiers are physically private to each tenant's ranks — only
//! the inter-rank bus is shared — so tenants barely slow each other down:
//! bandwidth isolation, the property the paper highlights.

use pim_arch::{HostLink, PimGeometry, SystemConfig};
use pim_sim::{Bandwidth, Bytes};
use pimnet::backends::{BaselineHostBackend, CollectiveBackend, PimnetBackend};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::FabricConfig;
use pimnet_bench::{us, Table};

fn main() {
    // Each tenant: 2 ranks x 8 chips x 8 banks = 128 DPUs.
    let tenant_geo = PimGeometry::new(8, 8, 2, 1);
    let sys = SystemConfig::paper().with_geometry(tenant_geo);
    let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));

    // --- Alone: the tenant has the machine to itself. ---
    let base_alone = BaselineHostBackend::new(sys)
        .collective(&spec)
        .unwrap()
        .total();
    let pim_alone = PimnetBackend::new(sys, FabricConfig::paper())
        .collective(&spec)
        .unwrap()
        .total();

    // --- Shared: the co-tenant runs the same collective concurrently. ---
    // Baseline: the host link and the host CPU are time-shared (half
    // bandwidth each).
    let halved_host = HostLink {
        pim_to_cpu: sys.host.pim_to_cpu.split(2),
        cpu_to_pim: sys.host.cpu_to_pim.split(2),
        cpu_broadcast: sys.host.cpu_broadcast.split(2),
        host_reduce_bw: sys.host.host_reduce_bw.split(2),
        marshal_bw: sys.host.marshal_bw.split(2),
        ..sys.host
    };
    let base_shared = BaselineHostBackend::new(sys.with_host(halved_host))
        .collective(&spec)
        .unwrap()
        .total();
    // PIMnet: rings and crossbars are private; only the inter-rank bus is
    // time-shared between the tenants.
    let shared_fabric = FabricConfig::paper().with_rank_bus_bw(Bandwidth::gbps(16.8).split(2));
    let pim_shared = PimnetBackend::new(sys, shared_fabric)
        .collective(&spec)
        .unwrap()
        .total();

    let mut t = Table::new(
        "Fig 17: per-tenant AllReduce (128-DPU tenant, 32 KB/DPU)",
        &["system", "alone (us)", "co-tenant (us)", "slowdown"],
    );
    t.row([
        "host-based".to_string(),
        us(base_alone),
        us(base_shared),
        format!("{:.2}x", base_shared.ratio(base_alone)),
    ]);
    t.row([
        "PIMnet".to_string(),
        us(pim_alone),
        us(pim_shared),
        format!("{:.2}x", pim_shared.ratio(pim_alone)),
    ]);
    t.emit("fig17_multitenancy");
    println!(
        "PIMnet isolates tenant bandwidth: its slowdown under co-tenancy is \
         near 1x, while host-based communication degrades towards 2x."
    );
}
