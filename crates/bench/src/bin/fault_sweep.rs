//! Timing under faults (Fig 13 companion): how much completion time do
//! transient CRC retries, compute stragglers, and dead-DPU degradation
//! cost, on both timing models?
//!
//! * the analytic PIMnet timeline ([`pimnet::timeline::Timeline`]), where
//!   retries serialize inside their step and stragglers stretch the
//!   READY/START barrier for *everyone* (static scheduling pays the
//!   barrier tax);
//! * the cycle-level credit-based network ([`pim_noc`]), where a
//!   straggler delays only its own packets' injection and retries consume
//!   wire time behind real back-pressure.
//!
//! The sweep is fully deterministic: same seed, same numbers, every run.
//! A final scenario kills DPUs outright and shows the typed degradation
//! trail (shrunk power-of-two plan or host fallback).

use pim_arch::geometry::PimGeometry;
use pim_arch::SystemConfig;
use pim_faults::{FaultConfig, FaultInjector};
use pim_noc::{simulate_credit, simulate_credit_faulty, NocConfig};
use pim_sim::SimTime;
use pimnet::collective::CollectiveKind;
use pimnet::resilience::{plan_degraded, DegradedPlan};
use pimnet::schedule::CommSchedule;
use pimnet::timeline::Timeline;
use pimnet::timing::TimingModel;
use pimnet_bench::{pct, us, Table};

const DPUS: u32 = 64;
const ELEMS: usize = 2048;
const SEED: u64 = 0xFA_0175;

fn scenario(ber: f64, straggler_prob: f64) -> FaultInjector {
    FaultInjector::new(
        FaultConfig {
            transient_ber: ber,
            straggler_prob,
            straggler_max_ns: 50_000,
            max_retries: 24,
            ..FaultConfig::none()
        }
        .with_seed(SEED),
    )
}

fn main() {
    let timing = TimingModel::paper();
    let noc_cfg = NocConfig::paper();

    let mut t = Table::new(
        "Timing under faults: completion vs fault-free (64 DPUs, 8 KB/DPU)",
        &[
            "collective",
            "BER",
            "straggler p",
            "timeline",
            "timeline overhead",
            "credit NoC",
            "NoC overhead",
        ],
    );

    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let g = PimGeometry::paper_scaled(DPUS);
        let s = CommSchedule::build(kind, &g, ELEMS, 4).expect("schedule");
        let ready = vec![SimTime::ZERO; DPUS as usize];
        let clean_tl = Timeline::build(&s, &timing);
        let clean_noc = simulate_credit(&s, &ready, &noc_cfg);

        for (ber, straggler) in [
            (0.0, 0.0),
            (0.01, 0.0),
            (0.10, 0.0),
            (0.0, 0.25),
            (0.10, 0.25),
        ] {
            let inj = scenario(ber, straggler);
            let tl = Timeline::build_with_faults(&s, &timing, &inj).expect("retry budget");
            let noc = simulate_credit_faulty(&s, &ready, &noc_cfg, &inj).expect("retry budget");
            t.row([
                kind.to_string(),
                format!("{ber}"),
                format!("{straggler}"),
                us(tl.end),
                pct(tl.end.as_secs_f64() / clean_tl.end.as_secs_f64() - 1.0),
                us(noc.completion),
                pct(noc.completion.as_secs_f64() / clean_noc.completion.as_secs_f64() - 1.0),
            ]);
        }
    }
    t.emit("fault_sweep");

    // Dead-DPU degradation: the typed error trail in action.
    let mut d = Table::new(
        "Dead-DPU degradation (AllReduce, 64 DPUs)",
        &["dead DPUs", "plan", "participants", "errors in trail"],
    );
    for dead in [0usize, 3, 40, 63] {
        let inj = FaultInjector::new(FaultConfig {
            dead_dpus: (0..dead as u32)
                .map(|i| i * 64 / dead.max(1) as u32)
                .collect(),
            ..FaultConfig::none()
        });
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &PimGeometry::paper_scaled(DPUS),
            ELEMS,
            4,
            &inj,
            &SystemConfig::paper_scaled(DPUS),
        )
        .expect("at least one DPU alive");
        let (tier, participants) = match &plan {
            DegradedPlan::Full(s) => ("full", s.geometry.total_dpus()),
            DegradedPlan::Repaired { schedule, .. } => ("repaired", schedule.geometry.total_dpus()),
            DegradedPlan::Shrunk { schedule, .. } => ("shrunk", schedule.geometry.total_dpus()),
            DegradedPlan::HostFallback { .. } => ("host fallback", 0),
        };
        d.row([
            dead.to_string(),
            tier.to_string(),
            participants.to_string(),
            plan.error_trail().len().to_string(),
        ]);
    }
    d.emit("fault_degradation");
    println!(
        "Static scheduling pays stragglers at the global barrier; the dynamic \
         network localizes them. CRC retries cost both roughly linearly in BER."
    );
}
