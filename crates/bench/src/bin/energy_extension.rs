//! Extension beyond the paper: communication *energy* of PIMnet vs the
//! host path, from the per-byte data-movement model in `pimnet::energy`.
//! (The paper reports hardware power only; this answers the obvious
//! follow-up question.)

use pim_arch::PimGeometry;
use pim_sim::Bytes;
use pimnet::collective::CollectiveKind;
use pimnet::energy::EnergyModel;
use pimnet::schedule::CommSchedule;
use pimnet_bench::Table;

fn main() {
    let g = PimGeometry::paper();
    let e = EnergyModel::default_45nm();
    let mut t = Table::new(
        "Extension: collective communication energy, PIMnet vs host path (256 DPUs)",
        &[
            "collective",
            "KB/DPU",
            "PIMnet (uJ)",
            "bank/chip/rank (uJ)",
            "host path (uJ)",
            "saving",
        ],
    );
    for kind in [
        CollectiveKind::AllReduce,
        CollectiveKind::ReduceScatter,
        CollectiveKind::AllToAll,
    ] {
        for kb in [8u64, 32, 128] {
            let elems = (kb * 1024 / 4) as usize;
            let s = CommSchedule::build(kind, &g, elems, 4).unwrap();
            let pim = e.schedule_energy_uj(&s);
            let (b, c, r) = e.breakdown_uj(&s);
            let up = Bytes::kib(kb) * 256;
            let down = match kind {
                CollectiveKind::AllReduce => Bytes::kib(kb),
                CollectiveKind::ReduceScatter => Bytes::kib(kb),
                _ => up,
            };
            let host = e.host_energy_uj(up, down);
            t.row([
                kind.abbrev().to_string(),
                kb.to_string(),
                format!("{pim:.1}"),
                format!("{b:.1}/{c:.1}/{r:.1}"),
                format!("{host:.1}"),
                format!("{:.1}x", host / pim),
            ]);
        }
    }
    t.emit("energy_extension");
}
