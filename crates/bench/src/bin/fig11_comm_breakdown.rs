//! Fig 11: breakdown of PIM communication time for each workload
//! (inter-bank / inter-chip / inter-rank / Sync / Mem) plus the PIM
//! communication speedup of PIMnet over DIMM-Link (or NDPBridge for the
//! All-to-All workloads, which DIMM-Link's reduction-centric buffer chip
//! and NDPBridge both can serve).
//!
//! The breakdown columns come from the `pim_sim::MetricsReport` filled by
//! the probed program runner (see `pimnet_bench::sweeps::fig11_table`).

fn main() {
    pimnet_bench::sweeps::fig11_table().emit("fig11_comm_breakdown");
}
