//! Fig 11: breakdown of PIM communication time for each workload
//! (inter-bank / inter-chip / inter-rank / Sync / Mem) plus the PIM
//! communication speedup of PIMnet over DIMM-Link (or NDPBridge for the
//! All-to-All workloads, which DIMM-Link's reduction-centric buffer chip
//! and NDPBridge both can serve).

use pim_arch::SystemConfig;
use pim_workloads::{paper_suite, program::run_program};
use pimnet::backends::{CollectiveBackend, DimmLinkBackend, NdpBridgeBackend, PimnetBackend};
use pimnet::collective::CollectiveKind;
use pimnet::FabricConfig;
use pimnet_bench::{pct, x, Table};

fn main() {
    let sys = SystemConfig::paper();
    let fabric = FabricConfig::paper();
    let pim = PimnetBackend::new(sys, fabric);
    let dimm = DimmLinkBackend::new(sys, fabric);
    let ndp = NdpBridgeBackend::new(sys);

    let mut t = Table::new(
        "Fig 11: PIMnet communication-time breakdown and speedup vs D (or N for A2A)",
        &[
            "workload",
            "inter-bank",
            "inter-chip",
            "inter-rank",
            "sync",
            "mem",
            "vs",
            "comm-speedup",
        ],
    );

    for w in paper_suite() {
        let program = w.program(&sys);
        let p = run_program(&program, &sys, &pim).expect("pimnet run");
        let total = p.comm.total();
        let frac = |part: pim_sim::SimTime| pct(part.ratio(total));

        // Reference system: DIMM-Link, except for A2A workloads where the
        // paper normalizes to NDPBridge.
        let uses_a2a = program
            .collective_kinds()
            .contains(&CollectiveKind::AllToAll);
        let (ref_name, reference): (&str, &dyn CollectiveBackend) =
            if uses_a2a { ("N", &ndp) } else { ("D", &dimm) };
        let r = run_program(&program, &sys, reference).expect("reference run");

        t.row([
            w.name().to_string(),
            frac(p.comm.inter_bank),
            frac(p.comm.inter_chip),
            frac(p.comm.inter_rank),
            frac(p.comm.sync),
            frac(p.comm.mem),
            ref_name.to_string(),
            x(r.comm.total().ratio(p.comm.total())),
        ]);
    }
    t.emit("fig11_comm_breakdown");
}
