//! Chaos soak harness: seeded fault storms against the planner.
//!
//! Sweeps geometry × collective × seed, sampling permanent fabric faults
//! (dead ring segments, dead crossbar ports, dead ranks) plus transient
//! CRC corruption and stragglers from each seed, and drives every
//! scenario through the full plan → repair → validate → execute → verify
//! pipeline. For each scenario it records the degradation-ladder tier the
//! planner landed on, the repair's price, and whether the executed result
//! stayed bit-identical to the fault-free reference.
//!
//! Everything is a pure function of the seed: re-running with the same
//! arguments reproduces the same table byte-for-byte — at any worker
//! count, since scenarios fan out over `pim_sim::par` with ordered
//! collection (`PIMNET_THREADS` pins the pool size). CI runs this with
//! the default arguments as a smoke test, twice, and diffs the CSVs.
//!
//! Usage: `chaos_soak [seeds-per-cell] [base-seed]` (defaults: 8, 0xC40).

use pim_sim::par;
use pimnet_bench::sweeps;

fn main() {
    // User-supplied arguments get typed errors, not panics.
    let mut args = std::env::args().skip(1);
    let parse_u64 = |arg: Option<String>, name: &str, default: u64| -> Result<u64, String> {
        match arg {
            None => Ok(default),
            Some(a) => a
                .parse()
                .map_err(|_| format!("{name} must be a number, got '{a}'")),
        }
    };
    let (per_cell, base) = match (|| -> Result<(u64, u64), String> {
        let per_cell = parse_u64(args.next(), "seeds-per-cell", 8)?;
        let base = parse_u64(args.next(), "base-seed", 0xC40)?;
        Ok((per_cell, base))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("chaos_soak: {e}\nusage: chaos_soak [seeds-per-cell] [base-seed]");
            std::process::exit(2);
        }
    };

    println!(
        "chaos soak: {} geometries x {} collectives x {per_cell} seeds (base {base:#x})\n",
        sweeps::CHAOS_GEOMETRIES.len(),
        sweeps::CHAOS_KINDS.len()
    );
    let summary = sweeps::chaos_soak(per_cell, base, par::thread_count());
    summary.table.emit("chaos_soak");
    println!(
        "\n{} scenarios; {} PIM-side plans executed bit-identically \
         under transient faults; every planned schedule passed validation.",
        summary.total, summary.verified
    );
}
