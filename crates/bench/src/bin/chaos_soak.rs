//! Chaos soak harness: seeded fault storms against the planner.
//!
//! Sweeps geometry × collective × seed, sampling permanent fabric faults
//! (dead ring segments, dead crossbar ports, dead ranks) plus transient
//! CRC corruption and stragglers from each seed, and drives every
//! scenario through the full plan → repair → validate → execute → verify
//! pipeline. For each scenario it records the degradation-ladder tier the
//! planner landed on, the repair's price, and whether the executed result
//! stayed bit-identical to the fault-free reference.
//!
//! Everything is a pure function of the seed: re-running with the same
//! arguments reproduces the same table byte-for-byte. CI runs this with
//! the default arguments as a smoke test.
//!
//! Usage: `chaos_soak [seeds-per-cell] [base-seed]` (defaults: 8, 0xC40).

use pim_arch::geometry::PimGeometry;
use pim_arch::SystemConfig;
use pim_faults::{FaultConfig, FaultInjector, PermanentFaultRates};
use pim_sim::SimTime;
use pimnet::collective::CollectiveKind;
use pimnet::exec::{ExecMachine, ReduceOp};
use pimnet::resilience::{plan_degraded, DegradedPlan};
use pimnet::schedule::{validate, CommSchedule};
use pimnet::timing::TimingModel;
use pimnet_bench::Table;

const ELEMS: usize = 64;
const KINDS: [CollectiveKind; 4] = [
    CollectiveKind::AllReduce,
    CollectiveKind::AllGather,
    CollectiveKind::AllToAll,
    CollectiveKind::Broadcast,
];
const GEOMETRIES: [u32; 3] = [8, 64, 256];

fn chaos_config(seed: u64) -> FaultConfig {
    FaultConfig {
        transient_ber: 0.02,
        straggler_prob: 0.1,
        straggler_max_ns: 5_000,
        max_retries: 8,
        perm_rates: PermanentFaultRates {
            segment_prob: 0.02,
            port_prob: 0.02,
            rank_prob: 0.03,
        },
        ..FaultConfig::none()
    }
    .with_seed(seed)
}

#[derive(Default)]
struct CellStats {
    tiers: [u32; 4],
    unplannable: u32,
    rerouted: usize,
    remapped: usize,
    extra_steps: usize,
    worst_stretch: f64,
    verified: u32,
}

fn soak_cell(kind: CollectiveKind, dpus: u32, seeds: std::ops::Range<u64>) -> CellStats {
    let g = PimGeometry::paper_scaled(dpus);
    let sys = SystemConfig::paper_scaled(dpus);
    let timing = TimingModel::paper();
    let mut stats = CellStats::default();
    for seed in seeds {
        let inj = FaultInjector::new(chaos_config(seed));
        let plan = match plan_degraded(kind, &g, ELEMS, 4, &inj, &sys) {
            Ok(p) => p,
            // Every rank sampled dead: nothing left to plan, which the
            // planner reports as a typed error rather than a panic.
            Err(_) => {
                stats.unplannable += 1;
                continue;
            }
        };
        stats.tiers[plan.tier() as usize] += 1;
        let Some(s) = plan.schedule() else {
            continue; // host fallback: no PIM-side schedule to verify
        };
        validate::validate(s).expect("planned schedule failed validation");
        if let DegradedPlan::Repaired { report, .. } = &plan {
            stats.rerouted += report.rerouted_transfers;
            stats.remapped += report.remapped_transfers;
            stats.extra_steps += report.extra_steps;
            let clean = CommSchedule::build(kind, &g, ELEMS, 4).unwrap();
            let stretch = timing.time_schedule(s, SimTime::ZERO).total().as_secs_f64()
                / timing
                    .time_schedule(&clean, SimTime::ZERO)
                    .total()
                    .as_secs_f64();
            stats.worst_stretch = stats.worst_stretch.max(stretch);
        }
        // Execute under transient faults and check bit-identity against the
        // same schedule's clean run (for Full/Repaired that clean run is by
        // construction identical to the fault-free reference plan).
        let init = |id: pim_arch::geometry::DpuId| vec![u64::from(id.0) + 1; ELEMS];
        let mut clean_m = ExecMachine::init(s, init);
        clean_m.run(s, ReduceOp::Sum);
        let mut faulty_m = ExecMachine::init(s, init);
        faulty_m
            .run_with_faults(s, ReduceOp::Sum, &inj)
            .expect("retry budget exhausted");
        assert_eq!(clean_m, faulty_m, "faulty run diverged");
        stats.verified += 1;
    }
    stats
}

fn main() {
    // User-supplied arguments get typed errors, not panics.
    let mut args = std::env::args().skip(1);
    let parse_u64 = |arg: Option<String>, name: &str, default: u64| -> Result<u64, String> {
        match arg {
            None => Ok(default),
            Some(a) => a
                .parse()
                .map_err(|_| format!("{name} must be a number, got '{a}'")),
        }
    };
    let (per_cell, base) = match (|| -> Result<(u64, u64), String> {
        let per_cell = parse_u64(args.next(), "seeds-per-cell", 8)?;
        let base = parse_u64(args.next(), "base-seed", 0xC40)?;
        Ok((per_cell, base))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("chaos_soak: {e}\nusage: chaos_soak [seeds-per-cell] [base-seed]");
            std::process::exit(2);
        }
    };

    println!(
        "chaos soak: {} geometries x {} collectives x {per_cell} seeds (base {base:#x})\n",
        GEOMETRIES.len(),
        KINDS.len()
    );
    let mut t = Table::new(
        "chaos soak: ladder tiers and repair cost per scenario cell",
        &[
            "dpus", "collective", "full", "repaired", "shrunk", "host", "no-plan",
            "rerouted", "remapped", "+steps", "worst-stretch", "verified",
        ],
    );
    let mut total = 0u32;
    let mut verified = 0u32;
    for &dpus in &GEOMETRIES {
        for kind in KINDS {
            let s = soak_cell(kind, dpus, base..base + per_cell);
            total += per_cell as u32;
            verified += s.verified;
            t.row([
                dpus.to_string(),
                kind.to_string(),
                s.tiers[0].to_string(),
                s.tiers[1].to_string(),
                s.tiers[2].to_string(),
                s.tiers[3].to_string(),
                s.unplannable.to_string(),
                s.rerouted.to_string(),
                s.remapped.to_string(),
                s.extra_steps.to_string(),
                format!("{:.2}x", s.worst_stretch.max(1.0)),
                s.verified.to_string(),
            ]);
        }
    }
    t.emit("chaos_soak");
    println!(
        "\n{total} scenarios; {verified} PIM-side plans executed bit-identically \
         under transient faults; every planned schedule passed validation."
    );
}
