//! Analyzer cost sweep: wall-time of `analysis::run_all` per geometry,
//! next to the cost of building the schedule it proves — plus the cost of
//! an *incremental* single-step re-lint via `analysis::reverify_delta`.
//!
//! The static analyzer is meant to run on every schedule the planner
//! emits (the resilience ladder re-proves every repaired schedule), so it
//! has to stay cheap relative to schedule construction. This sweep times
//! both across the paper's preset geometries and payload sizes and
//! reports the ratio; the CSV lands in `results/lint_sweep.csv`.
//!
//! The incremental column mutates one step of each schedule the way a
//! repair does — it rewrites one transfer's resource path, leaving the
//! payload spans alone — re-verifies it by delta against the
//! already-proven base summary, and checks the delta report is
//! byte-identical to a batch re-run over the mutated schedule before
//! reporting the speedup. Because the payload is untouched, the dataflow
//! state reconverges right after the dirtied step and the delta cost is
//! one step, not the suffix.
//!
//! Usage: `lint_sweep [reps]` (default 5 timing repetitions per cell,
//! minimum taken).

use std::sync::Arc;
use std::time::Instant;

use pim_arch::geometry::PimGeometry;
use pimnet::analysis;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::CommSchedule;
use pimnet_bench::Table;

const GEOMETRIES: [u32; 3] = [8, 64, 256];
const ELEMS: [usize; 2] = [256, 4096];

/// Rewrites one transfer's resource path in the middle step — the shape
/// of edit a repair makes (route changes, payload spans untouched).
/// Duplicating an existing resource changes the step's content without
/// tripping any structural rule, so the schedule stays clean and the
/// dataflow state reconverges immediately after the dirtied step.
fn mutate_middle_step(s: &CommSchedule) -> Option<CommSchedule> {
    let sites: Vec<(usize, usize, usize)> = s
        .phases
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            p.steps.iter().enumerate().flat_map(move |(si, st)| {
                st.transfers
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.resources.is_empty())
                    .map(move |(ti, _)| (pi, si, ti))
            })
        })
        .collect();
    let &(pi, si, ti) = sites.get(sites.len() / 2)?;
    let mut m = s.clone();
    let t = &mut m.phases[pi].steps[si].transfers[ti];
    let r = *t.resources.last().expect("site has resources");
    t.resources.push(r);
    Some(m)
}

fn main() {
    // User-supplied arguments get typed errors, not panics.
    let reps: u32 = match std::env::args().nth(1) {
        None => 5,
        Some(a) => match a.parse() {
            Ok(r) if r > 0 => r,
            _ => {
                eprintln!("lint_sweep: reps must be a positive number, got '{a}'");
                eprintln!("usage: lint_sweep [reps]");
                std::process::exit(2);
            }
        },
    };

    let mut t = Table::new(
        "static analyzer cost vs schedule build (min over reps)",
        &[
            "dpus",
            "collective",
            "elems",
            "transfers",
            "build-us",
            "analyze-us",
            "analyze/build",
            "diags",
            "delta-us",
            "delta-relint",
            "batch/delta",
        ],
    );
    for &dpus in &GEOMETRIES {
        let g = PimGeometry::paper_scaled(dpus);
        for kind in CollectiveKind::ALL {
            for &elems in &ELEMS {
                let mut build_us = f64::INFINITY;
                let mut analyze_us = f64::INFINITY;
                let mut schedule = None;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let s = match CommSchedule::build(kind, &g, elems, 4) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("lint_sweep: {kind} x{dpus} e{elems} failed to build: {e}");
                            std::process::exit(1);
                        }
                    };
                    build_us = build_us.min(t0.elapsed().as_secs_f64() * 1e6);
                    schedule = Some(s);
                }
                let s = schedule.expect("reps >= 1 built at least one schedule");
                let mut diags = 0usize;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let report = analysis::run_all(&s);
                    analyze_us = analyze_us.min(t0.elapsed().as_secs_f64() * 1e6);
                    diags = report.diagnostics.len();
                    if report.has_errors() {
                        eprintln!(
                            "lint_sweep: {kind} x{dpus} e{elems} unexpectedly dirty:\n{report}"
                        );
                        std::process::exit(1);
                    }
                }

                // Incremental single-step re-lint vs batch on the mutated
                // schedule (amortized case: the base is already proven).
                let base = analysis::verify_full(&s);
                let mutated = Arc::new(
                    mutate_middle_step(&s).expect("preset schedules have routed transfers"),
                );
                let mut mutated_batch_us = f64::INFINITY;
                let mut mutated_report = None;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let report = analysis::run_all(&mutated);
                    mutated_batch_us = mutated_batch_us.min(t0.elapsed().as_secs_f64() * 1e6);
                    mutated_report = Some(report);
                }
                let mut delta_us = f64::INFINITY;
                let mut relinted = 0usize;
                let mut delta_report = None;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let (summary, stats) = analysis::reverify_delta(&base, mutated.clone());
                    delta_us = delta_us.min(t0.elapsed().as_secs_f64() * 1e6);
                    relinted = stats.relinted;
                    delta_report = Some(summary.report.clone());
                }
                let batch = mutated_report.expect("reps >= 1").to_string();
                let delta = delta_report.expect("reps >= 1").to_string();
                if batch != delta {
                    eprintln!(
                        "lint_sweep: {kind} x{dpus} e{elems} delta report diverged from batch\n\
                         --- batch ---\n{batch}\n--- delta ---\n{delta}"
                    );
                    std::process::exit(1);
                }

                t.row([
                    dpus.to_string(),
                    kind.to_string(),
                    elems.to_string(),
                    s.transfer_count().to_string(),
                    format!("{build_us:.1}"),
                    format!("{analyze_us:.1}"),
                    format!("{:.2}", analyze_us / build_us.max(1e-9)),
                    diags.to_string(),
                    format!("{delta_us:.1}"),
                    relinted.to_string(),
                    format!("{:.2}", mutated_batch_us / delta_us.max(1e-9)),
                ]);
            }
        }
    }
    t.emit("lint_sweep");
}
