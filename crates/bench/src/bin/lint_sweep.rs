//! Analyzer cost sweep: wall-time of `analysis::run_all` per geometry,
//! next to the cost of building the schedule it proves.
//!
//! The static analyzer is meant to run on every schedule the planner
//! emits (the resilience ladder re-proves every repaired schedule), so it
//! has to stay cheap relative to schedule construction. This sweep times
//! both across the paper's preset geometries and payload sizes and
//! reports the ratio; the CSV lands in `results/lint_sweep.csv`.
//!
//! Usage: `lint_sweep [reps]` (default 5 timing repetitions per cell,
//! minimum taken).

use std::time::Instant;

use pim_arch::geometry::PimGeometry;
use pimnet::analysis;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::CommSchedule;
use pimnet_bench::Table;

const GEOMETRIES: [u32; 3] = [8, 64, 256];
const ELEMS: [usize; 2] = [256, 4096];

fn main() {
    // User-supplied arguments get typed errors, not panics.
    let reps: u32 = match std::env::args().nth(1) {
        None => 5,
        Some(a) => match a.parse() {
            Ok(r) if r > 0 => r,
            _ => {
                eprintln!("lint_sweep: reps must be a positive number, got '{a}'");
                eprintln!("usage: lint_sweep [reps]");
                std::process::exit(2);
            }
        },
    };

    let mut t = Table::new(
        "static analyzer cost vs schedule build (min over reps)",
        &[
            "dpus",
            "collective",
            "elems",
            "transfers",
            "build-us",
            "analyze-us",
            "analyze/build",
            "diags",
        ],
    );
    for &dpus in &GEOMETRIES {
        let g = PimGeometry::paper_scaled(dpus);
        for kind in CollectiveKind::ALL {
            for &elems in &ELEMS {
                let mut build_us = f64::INFINITY;
                let mut analyze_us = f64::INFINITY;
                let mut schedule = None;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let s = match CommSchedule::build(kind, &g, elems, 4) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("lint_sweep: {kind} x{dpus} e{elems} failed to build: {e}");
                            std::process::exit(1);
                        }
                    };
                    build_us = build_us.min(t0.elapsed().as_secs_f64() * 1e6);
                    schedule = Some(s);
                }
                let s = schedule.expect("reps >= 1 built at least one schedule");
                let mut diags = 0usize;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let report = analysis::run_all(&s);
                    analyze_us = analyze_us.min(t0.elapsed().as_secs_f64() * 1e6);
                    diags = report.diagnostics.len();
                    if report.has_errors() {
                        eprintln!(
                            "lint_sweep: {kind} x{dpus} e{elems} unexpectedly dirty:\n{report}"
                        );
                        std::process::exit(1);
                    }
                }
                t.row([
                    dpus.to_string(),
                    kind.to_string(),
                    elems.to_string(),
                    s.transfer_count().to_string(),
                    format!("{build_us:.1}"),
                    format!("{analyze_us:.1}"),
                    format!("{:.2}", analyze_us / build_us.max(1e-9)),
                    diags.to_string(),
                ]);
            }
        }
    }
    t.emit("lint_sweep");
}
