//! Fig 13: credit-based flow control vs PIM-controlled traffic scheduling,
//! on the cycle-level network simulator.
//!
//! As in the paper's Booksim experiment, per-DPU compute-finish times are
//! jittered (the paper fed real UPMEM measurements; we draw from a seeded
//! ±10 % distribution): under credit-based flow control each DPU injects
//! the moment it finishes, under PIM control everything waits for the
//! READY/START barrier after the last DPU. Expectation (paper): AllReduce
//! within ~1 %, All-to-All ~18.7 % *faster* under PIM control because the
//! dynamic network contends at the inter-chip crossbar.
//!
//! Rows fan out over `pim_sim::par`.

use pim_sim::par;
use pimnet_bench::sweeps;

fn main() {
    let t = sweeps::fig13_table(par::thread_count());
    t.emit("fig13_flow_control");
    println!(
        "Paper: AllReduce within ~1% of each other; All-to-All 18.7% faster \
         under PIM control (crossbar contention under credit-based wormhole)."
    );
}
