//! Fig 13: credit-based flow control vs PIM-controlled traffic scheduling,
//! on the cycle-level network simulator.
//!
//! As in the paper's Booksim experiment, per-DPU compute-finish times are
//! jittered (the paper fed real UPMEM measurements; we draw from a seeded
//! ±10 % distribution): under credit-based flow control each DPU injects
//! the moment it finishes, under PIM control everything waits for the
//! READY/START barrier after the last DPU. Expectation (paper): AllReduce
//! within ~1 %, All-to-All ~18.7 % *faster* under PIM control because the
//! dynamic network contends at the inter-chip crossbar.

use pim_arch::geometry::PimGeometry;
use pim_noc::{simulate_credit, simulate_scheduled, NocConfig};
use pim_sim::SimTime;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::CommSchedule;
use pimnet_bench::{us, Table};
use pim_sim::rng::SimRng;

fn ready_times(n: u32, mean_us: f64, jitter: f64, seed: u64) -> Vec<SimTime> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let f = 1.0 + rng.gen_range(-jitter..=jitter);
            SimTime::from_secs_f64(mean_us * 1e-6 * f)
        })
        .collect()
}

fn main() {
    let cfg = NocConfig::paper();
    let mut t = Table::new(
        "Fig 13: credit-based vs PIM-controlled completion time (us)",
        &[
            "collective", "DPUs", "KB/DPU", "credit", "scheduled", "PIM-control gain",
        ],
    );

    for (kind, n, elems) in [
        (CollectiveKind::AllReduce, 64u32, 2048usize),
        (CollectiveKind::AllReduce, 64, 8192),
        (CollectiveKind::AllToAll, 64, 2048),
        (CollectiveKind::AllToAll, 64, 8192),
    ] {
        let g = PimGeometry::paper_scaled(n);
        let s = CommSchedule::build(kind, &g, elems, 4).expect("schedule");
        let ready = ready_times(n, 50.0, 0.10, 0x000F_1613);
        let credit = simulate_credit(&s, &ready, &cfg);
        let sched = simulate_scheduled(&s, &ready, &cfg);
        let gain = 1.0 - sched.completion.as_secs_f64() / credit.completion.as_secs_f64();
        t.row([
            kind.to_string(),
            n.to_string(),
            (elems * 4 / 1024).to_string(),
            us(credit.completion),
            us(sched.completion),
            format!("{:+.1}%", gain * 100.0),
        ]);
    }
    t.emit("fig13_flow_control");
    println!(
        "Paper: AllReduce within ~1% of each other; All-to-All 18.7% faster \
         under PIM control (crossbar contention under credit-based wormhole)."
    );
}
