//! Fig 14: PIMnet AllReduce performance vs fabric bandwidth.
//!
//! (a) inter-bank channel bandwidth swept 0.1 → 1.0 GB/s (paper default
//! 0.7); (b) inter-chip/inter-rank bandwidth scaled 0.25× → 2×. Both
//! compare against DIMM-Link at the paper's fixed configuration — the
//! point being that bank-level bandwidth parallelism keeps PIMnet ahead
//! even with far slower rings.

use pim_arch::SystemConfig;
use pim_sim::{Bandwidth, Bytes};
use pimnet::backends::{CollectiveBackend, DimmLinkBackend, PimnetBackend};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::FabricConfig;
use pimnet_bench::{us, x, Table};

fn main() {
    let sys = SystemConfig::paper();
    let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
    let dimm = DimmLinkBackend::new(sys, FabricConfig::paper())
        .collective(&spec)
        .expect("dimm-link")
        .total();

    let mut a = Table::new(
        "Fig 14(a): AllReduce vs inter-bank channel bandwidth",
        &["bank GB/s", "PIMnet (us)", "DIMM-Link (us)", "PIMnet advantage"],
    );
    for tenths in [1u32, 2, 3, 5, 7, 10] {
        let bw = Bandwidth::mbps(f64::from(tenths) * 100.0);
        let fabric = FabricConfig::paper().with_bank_channel_bw(bw);
        let p = PimnetBackend::new(sys, fabric)
            .collective(&spec)
            .unwrap()
            .total();
        a.row([
            format!("{:.1}", f64::from(tenths) / 10.0),
            us(p),
            us(dimm),
            x(dimm.ratio(p)),
        ]);
    }
    a.emit("fig14a_bank_bw");

    let mut b = Table::new(
        "Fig 14(b): AllReduce vs inter-chip/inter-rank bandwidth (inter-bank fixed at 0.7)",
        &["global scale", "chip GB/s", "rank GB/s", "PIMnet (us)", "PIMnet advantage"],
    );
    for quarters in [1u32, 2, 4, 8] {
        let scale = f64::from(quarters) / 4.0;
        let fabric = FabricConfig::paper()
            .with_chip_channel_bw(Bandwidth::mbps(1050.0 * scale))
            .with_rank_bus_bw(Bandwidth::mbps(16_800.0 * scale));
        let p = PimnetBackend::new(sys, fabric)
            .collective(&spec)
            .unwrap()
            .total();
        b.row([
            format!("{scale:.2}x"),
            format!("{:.2}", 1.05 * scale),
            format!("{:.1}", 16.8 * scale),
            us(p),
            x(dimm.ratio(p)),
        ]);
    }
    b.emit("fig14b_global_bw");
}
