//! Fig 14: PIMnet AllReduce performance vs fabric bandwidth.
//!
//! (a) inter-bank channel bandwidth swept 0.1 → 1.0 GB/s (paper default
//! 0.7); (b) inter-chip/inter-rank bandwidth scaled 0.25× → 2×. Both
//! compare against DIMM-Link at the paper's fixed configuration — the
//! point being that bank-level bandwidth parallelism keeps PIMnet ahead
//! even with far slower rings.
//!
//! Rows fan out over `pim_sim::par`.

use pim_sim::par;
use pimnet_bench::sweeps;

fn main() {
    let (a, b) = sweeps::fig14_tables(par::thread_count());
    a.emit("fig14a_bank_bw");
    b.emit("fig14b_global_bw");
}
