//! Recovery soak harness: time-varying fault storms against the runtime
//! recovery manager.
//!
//! Sweeps geometry × collective × seed, sampling a [`pim_faults::FaultTimeline`]
//! per seed — permanent faults that *arrive mid-run*, link flaps, BER
//! bursts — on top of background transients and stragglers, and drives
//! every scenario step-by-step through `pimnet::recovery::run_recovered`:
//! failure detection at step boundaries, deterministic backoff, health
//! quarantine, checkpointed resume and ladder replans. Each scenario is
//! then verdicted against the soundness contract: a tier ≤ 1 end state
//! must be bit-identical to the fault-free run, machines appear exactly
//! where the tier promises one, and host fallback always carries a typed
//! error trail. Any violation fails the binary.
//!
//! Everything is a pure function of the seed: re-running with the same
//! arguments reproduces the same table byte-for-byte — at any worker
//! count, since scenarios fan out over `pim_sim::par` with ordered
//! collection (`PIMNET_THREADS` pins the pool size). CI runs this twice
//! (1 vs 4 workers) and diffs the CSVs.
//!
//! Usage: `recovery_soak [seeds-per-cell] [base-seed]` (defaults: 8, 0xEC0).

use pim_sim::par;
use pimnet_bench::sweeps;

fn main() {
    // User-supplied arguments get typed errors, not panics.
    let mut args = std::env::args().skip(1);
    let parse_u64 = |arg: Option<String>, name: &str, default: u64| -> Result<u64, String> {
        match arg {
            None => Ok(default),
            Some(a) => a
                .parse()
                .map_err(|_| format!("{name} must be a number, got '{a}'")),
        }
    };
    let (per_cell, base) = match (|| -> Result<(u64, u64), String> {
        let per_cell = parse_u64(args.next(), "seeds-per-cell", 8)?;
        let base = parse_u64(args.next(), "base-seed", 0xEC0)?;
        Ok((per_cell, base))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("recovery_soak: {e}\nusage: recovery_soak [seeds-per-cell] [base-seed]");
            std::process::exit(2);
        }
    };

    println!(
        "recovery soak: {} geometries x {} collectives x {per_cell} seeds (base {base:#x})\n",
        sweeps::RECOVERY_GEOMETRIES.len(),
        sweeps::CHAOS_KINDS.len()
    );
    let summary = sweeps::recovery_soak(per_cell, base, par::thread_count());
    summary.table.emit("recovery_soak");
    println!(
        "\n{} scenarios; {} tier <= 1 end states verified bit-identical to \
         the fault-free run; {} soundness violation(s).",
        summary.total, summary.verified, summary.unsound
    );
    if summary.unsound > 0 {
        eprintln!(
            "FAIL: {} scenario(s) violated the recovery contract",
            summary.unsound
        );
        std::process::exit(1);
    }
}
