//! §II-C / §III characterization at the real UPMEM server's scale
//! (Table II: 2560 DPUs, 20 ranks, modeled as 10 channels × 256 DPUs):
//! what collective communication costs on the full machine, with and
//! without PIMnet, composed across channels through the host.

use pim_arch::{PimGeometry, SystemConfig};
use pim_sim::Bytes;
use pimnet::backends::{
    multi_channel_collective, BaselineHostBackend, PimnetBackend, SoftwareIdealBackend,
};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::FabricConfig;
use pimnet_bench::{us, x, Table};

fn main() {
    // One channel of the server: 256 DPUs (8 banks x 16 chips x 2 ranks).
    let channel_geo = PimGeometry::new(8, 16, 2, 1);
    let sys = SystemConfig::paper().with_geometry(channel_geo);
    let channels = 10u32; // 2560 DPUs total
    println!(
        "Table II server: {} DPUs/channel x {channels} channels = {} DPUs\n",
        channel_geo.total_dpus(),
        channel_geo.total_dpus() * channels
    );

    let base = BaselineHostBackend::new(sys);
    let ideal = SoftwareIdealBackend::new(sys);
    let pim = PimnetBackend::new(sys, FabricConfig::paper());

    let mut t = Table::new(
        "Server-scale collectives (all 2560 DPUs, per-DPU payload varied)",
        &[
            "collective",
            "KB/DPU",
            "Baseline (us)",
            "Ideal SW (us)",
            "PIMnet (us)",
            "P vs B",
        ],
    );
    for kind in [CollectiveKind::AllReduce, CollectiveKind::ReduceScatter] {
        for kb in [4u64, 32, 256] {
            let spec = CollectiveSpec::new(kind, Bytes::kib(kb));
            let tb = multi_channel_collective(&base, &sys.host, channels, &spec)
                .unwrap()
                .total();
            let ts = multi_channel_collective(&ideal, &sys.host, channels, &spec)
                .unwrap()
                .total();
            let tp = multi_channel_collective(&pim, &sys.host, channels, &spec)
                .unwrap()
                .total();
            t.row([
                kind.abbrev().to_string(),
                kb.to_string(),
                us(tb),
                us(ts),
                us(tp),
                x(tb.ratio(tp)),
            ]);
        }
    }
    t.emit("characterize_upmem");
    println!(
        "Even at full-server scale, cross-channel traffic is only one partial \
         per channel for PIMnet; the baseline's host CPU must marshal every \
         one of the 2560 DPU buffers."
    );
}
