//! CI perf-regression gate for the parallel sweeps and the schedule cache.
//!
//! Runs a pinned workload matrix — the chaos soak, the lint preset
//! matrix, the fig 12/13/14 sweeps, and the multi-tenant serving soak
//! (whose request logs join the byte-identity check and whose clean
//! p50/p99 latency and collectives/sec land in the JSON as
//! `serve_*` keys, gated against the baseline) — three times:
//!
//! 1. **sequential, cold cache** (1 worker) — the reference output;
//! 2. **parallel, cold cache** (`workers` threads) — must be
//!    *byte-identical* to the reference, and is the wall time the gate
//!    tracks;
//! 3. **parallel, warm cache** — same again without clearing the
//!    schedule cache, to measure and count cache hits.
//!
//! Any byte difference between the runs is a hard failure: determinism
//! under parallel execution is the contract `pim_sim::par` sells.
//! The gate also measures the disabled-sink overhead of the
//! observability layer (plain vs `_probed`-with-disabled-probe pipeline,
//! interleaved min-of-k) and the fault-free overhead of the runtime
//! recovery manager (plain executor vs `run_recovered` with an inactive
//! injector), failing when either exceeds 1 % (override with
//! `PIMNET_TRACE_TOLERANCE`, floored at 0.01), and the incremental
//! re-lint speedup on a pinned single-step edit (delta re-verify vs
//! batch analyzer, byte-identical reports required), failing below 5x
//! (override with `PIMNET_DELTA_SPEEDUP_FLOOR`).
//! Results land in `results/BENCH_perf.json`; when a committed baseline
//! (`results/perf_baseline.json`) exists, the gate fails on a wall-time
//! regression beyond the tolerance (default 25 %, override with
//! `PIMNET_PERF_TOLERANCE=0.40`-style fractions).
//!
//! On hosts with fewer than two available cores the sequential/parallel
//! wall-time ratio is scheduler noise, not a speedup — the JSON then
//! carries a `note` instead of the `speedup`/`warm_speedup` keys and the
//! byte-identity checks still run in full.
//!
//! Usage: `perf_gate [workers] [--update-baseline]` (default workers:
//! `PIMNET_THREADS` or the machine's available parallelism).

use std::fmt::Write as _;
use std::time::Instant;

use pim_sim::par;
use pimnet::analysis::presets;
use pimnet::collective::CollectiveKind;
use pimnet::schedule::cache;
use pimnet_bench::{results_dir, sweeps};

/// Seeds per chaos-soak cell — small enough to keep the gate fast, large
/// enough that the parallel fan-out dominates the fixed costs.
const CHAOS_PER_CELL: u64 = 4;
const CHAOS_BASE_SEED: u64 = 0xC40;

/// Interleaved min-of-k comparison of `plain` vs `variant`, sampled in
/// rounds until the measured overhead drops to `budget` or the rounds
/// run out.
///
/// The overhead gates are one-sided: they only need evidence that the
/// variant *can* run as fast as the plain path, so once the running
/// minima meet the budget there is nothing left to prove and sampling
/// stops. Noise can only delay that verdict — a preempted iteration
/// inflates itself, never the floor — while a real regression stays
/// over budget no matter how long the sampler runs. Rounds are spaced
/// by a short sleep so a single noisy scheduling burst cannot cover
/// every sample; negative deltas clamp to zero (the minimum of either
/// variant can land on a quiet slice of the machine).
fn measured_overhead(budget: f64, mut plain: impl FnMut(), mut variant: impl FnMut()) -> f64 {
    const ROUND: u32 = 20;
    const MAX_ROUNDS: u32 = 15;
    let mut best_plain = f64::INFINITY;
    let mut best_variant = f64::INFINITY;
    let mut overhead = f64::INFINITY;
    for round in 0..MAX_ROUNDS {
        if round > 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for _ in 0..ROUND {
            let t0 = Instant::now();
            plain();
            best_plain = best_plain.min(t0.elapsed().as_secs_f64());
            let t1 = Instant::now();
            variant();
            best_variant = best_variant.min(t1.elapsed().as_secs_f64());
        }
        overhead = ((best_variant - best_plain) / best_plain).max(0.0);
        if overhead <= budget {
            break;
        }
    }
    overhead
}

/// Measures the disabled-sink overhead of the observability layer: the
/// timeline-build + functional-execution pipeline run through the plain
/// entry points vs the `_probed` twins holding the disabled probe.
///
/// The probed functions short-circuit to their plain bodies when the
/// probe is inactive, so the true cost is one branch per entry — this
/// check pins that the "zero-cost when disabled" guarantee stays true as
/// instrumentation accretes.
fn trace_overhead(budget: f64) -> f64 {
    use pim_arch::geometry::PimGeometry;
    use pim_sim::Probe;
    use pimnet::exec::{ExecMachine, ReduceOp};
    use pimnet::timeline::Timeline;
    use pimnet::timing::TimingModel;

    const ELEMS: usize = 1024;
    let g = PimGeometry::paper_scaled(64);
    let s = cache::build_cached(CollectiveKind::AllReduce, &g, ELEMS, 4)
        .expect("schedule")
        .as_ref()
        .clone();
    let timing = TimingModel::paper();
    let off = Probe::disabled();

    let plain = || {
        let t = Timeline::build(&s, &timing);
        let mut m = ExecMachine::init(&s, |id| vec![u64::from(id.0) + 1; ELEMS]);
        m.run(&s, ReduceOp::Sum);
        std::hint::black_box((t.end, m));
    };
    let probed = || {
        let t = Timeline::build_probed(&s, &timing, off);
        let mut m = ExecMachine::init(&s, |id| vec![u64::from(id.0) + 1; ELEMS]);
        m.run_probed(&s, ReduceOp::Sum, off);
        std::hint::black_box((t.end, m));
    };

    plain();
    probed();
    measured_overhead(budget, plain, probed)
}

/// Measures the fault-free cost of routing execution through the runtime
/// recovery manager: the plain cached-plan + executor pipeline vs
/// `run_recovered` holding an inactive injector.
///
/// The manager's fast path is one `is_active()` branch plus a planning
/// call the schedule cache absorbs, so recovery must stay free until
/// faults actually arrive — this check pins that guarantee as the
/// manager accretes machinery. Same interleaved min-of-k discipline as
/// [`trace_overhead`].
fn recovery_overhead(budget: f64) -> f64 {
    use pim_arch::geometry::{DpuId, PimGeometry};
    use pim_faults::FaultInjector;
    use pimnet::exec::{ExecMachine, ReduceOp};
    use pimnet::recovery::{run_recovered, RecoveryConfig, RecoveryRequest};
    use pimnet::timing::TimingModel;

    const ELEMS: usize = 1024;
    let g = PimGeometry::paper_scaled(64);
    let sys = pim_arch::SystemConfig::paper_scaled(64);
    let timing = TimingModel::paper();
    let injector = FaultInjector::none();
    let s = cache::build_cached(CollectiveKind::AllReduce, &g, ELEMS, 8)
        .expect("schedule")
        .as_ref()
        .clone();
    let init = |id: DpuId| vec![u64::from(id.0) + 1; ELEMS];

    let plain = || {
        let mut m = ExecMachine::init(&s, init);
        m.run(&s, ReduceOp::Sum);
        std::hint::black_box(m);
    };
    let recovered = || {
        let req = RecoveryRequest {
            kind: CollectiveKind::AllReduce,
            geometry: &g,
            elems_per_node: ELEMS,
            elem_bytes: 8,
            op: ReduceOp::Sum,
            injector: &injector,
            system: &sys,
            timing: &timing,
            config: RecoveryConfig::default(),
        };
        let out = run_recovered::<u64>(&req, init).expect("fault-free recovery");
        std::hint::black_box(out);
    };

    // Warmup also warms the schedule cache, so both variants plan for
    // free inside the timed region.
    plain();
    recovered();
    measured_overhead(budget, plain, recovered)
}

/// Measures the incremental re-lint speedup on a pinned cell: one
/// repair-shaped edit (a rewritten resource path, payload spans
/// untouched) to the 256-DPU AllReduce schedule, re-proven by
/// `analysis::reverify_delta` against the already-verified base vs a
/// batch `analysis::run_all` over the whole mutated schedule. Min over
/// `reps` for both sides; the delta report must be byte-identical to the
/// batch report or the gate fails outright.
fn delta_lint_speedup(reps: u32) -> (f64, usize) {
    use std::sync::Arc;

    use pim_arch::geometry::PimGeometry;
    use pimnet::analysis;
    use pimnet::schedule::CommSchedule;

    const DPUS: u32 = 256;
    const ELEMS: usize = 256;
    let g = PimGeometry::paper_scaled(DPUS);
    let s = CommSchedule::build(CollectiveKind::AllReduce, &g, ELEMS, 4).expect("schedule");
    let base = analysis::verify_full(&s);

    // The same edit shape `lint_sweep` times: dirty exactly one step by
    // duplicating a resource on its middle routed transfer.
    let sites: Vec<(usize, usize, usize)> = s
        .phases
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            p.steps.iter().enumerate().flat_map(move |(si, st)| {
                st.transfers
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.resources.is_empty())
                    .map(move |(ti, _)| (pi, si, ti))
            })
        })
        .collect();
    let (pi, si, ti) = sites[sites.len() / 2];
    let mut m = s.clone();
    let t = &mut m.phases[pi].steps[si].transfers[ti];
    t.resources
        .push(*t.resources.last().expect("routed transfer"));
    let mutated = Arc::new(m);

    let mut batch_s = f64::INFINITY;
    let mut batch_report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = analysis::run_all(&mutated);
        batch_s = batch_s.min(t0.elapsed().as_secs_f64());
        batch_report = Some(report);
    }
    let mut delta_s = f64::INFINITY;
    let mut relinted = 0usize;
    let mut delta_report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (summary, stats) = analysis::reverify_delta(&base, mutated.clone());
        delta_s = delta_s.min(t0.elapsed().as_secs_f64());
        relinted = stats.relinted;
        delta_report = Some(summary.report.clone());
    }
    let batch = batch_report.expect("reps >= 1");
    let delta = delta_report.expect("reps >= 1");
    if batch.to_string() != delta.to_string() || batch.to_json() != delta.to_json() {
        eprintln!("FAIL: incremental re-lint report diverged from the batch analyzer");
        std::process::exit(1);
    }
    (batch_s / delta_s.max(1e-12), relinted)
}

/// Tenants and seeds-per-mode of the pinned serving workload.
const SERVE_TENANTS: usize = 3;
const SERVE_PER_MODE: u64 = 1;
const SERVE_BASE_SEED: u64 = 0xD1;

/// Runs the pinned workload matrix on `workers` threads and returns its
/// entire output as one string (concatenated CSVs, the lint matrix
/// verdict lines, and the serving soak's table plus request logs) —
/// byte-identical across worker counts by construction — together with
/// the serving summary whose latency metrics the gate reports.
fn workload(workers: usize) -> (String, sweeps::ServeSummary) {
    let mut out = String::new();
    let chaos = sweeps::chaos_soak(CHAOS_PER_CELL, CHAOS_BASE_SEED, workers);
    out.push_str(&chaos.table.to_csv());
    let verdicts = par::map_ordered_with(workers, presets::cases(), |case| {
        let verdict = match case.run() {
            Ok(r) if r.is_clean() => "clean".to_string(),
            Ok(r) => format!("errors:{}", r.error_count()),
            Err(_) => "skip".to_string(),
        };
        format!("{},{verdict}\n", case.label())
    });
    out.extend(verdicts);
    out.push_str(&sweeps::fig12_table(CollectiveKind::AllReduce, workers).to_csv());
    out.push_str(&sweeps::fig12_table(CollectiveKind::AllToAll, workers).to_csv());
    out.push_str(&sweeps::fig13_table(workers).to_csv());
    let (a, b) = sweeps::fig14_tables(workers);
    out.push_str(&a.to_csv());
    out.push_str(&b.to_csv());
    let serve = sweeps::serve_soak(SERVE_TENANTS, SERVE_PER_MODE, SERVE_BASE_SEED, workers);
    out.push_str(&serve.table.to_csv());
    out.push_str(&serve.log);
    (out, serve)
}

fn timed(workers: usize) -> (String, sweeps::ServeSummary, f64) {
    let start = Instant::now();
    let (csv, serve) = workload(workers);
    (csv, serve, start.elapsed().as_secs_f64() * 1e3)
}

/// Extracts `"key": <number>` from a flat JSON object (the only shape
/// this tool reads or writes — no external parser needed).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let mut workers: Option<usize> = None;
    let mut update_baseline = false;
    for arg in std::env::args().skip(1) {
        if arg == "--update-baseline" {
            update_baseline = true;
        } else if let Ok(n) = arg.parse::<usize>() {
            workers = Some(n.max(1));
        } else {
            eprintln!("perf_gate: unknown argument '{arg}'");
            eprintln!("usage: perf_gate [workers] [--update-baseline]");
            std::process::exit(2);
        }
    }
    let workers = workers.unwrap_or_else(par::thread_count);

    println!("perf gate: pinned workload matrix, 1 vs {workers} worker(s), cold vs warm cache");

    cache::clear();
    cache::reset_stats();
    let (seq_csv, _, seq_ms) = timed(1);
    println!("  sequential cold : {seq_ms:>9.1} ms");

    cache::clear();
    cache::reset_stats();
    let (par_csv, serve, par_ms) = timed(workers);
    let cold = cache::stats();
    println!(
        "  parallel cold   : {par_ms:>9.1} ms  ({} schedules built)",
        cold.schedules_built
    );

    cache::reset_stats();
    let (warm_csv, _, warm_ms) = timed(workers);
    let warm = cache::stats();
    println!(
        "  parallel warm   : {warm_ms:>9.1} ms  ({} cache hits, {} misses)",
        warm.hits, warm.misses
    );

    if par_csv != seq_csv {
        eprintln!("FAIL: parallel output differs from sequential output");
        std::process::exit(1);
    }
    if warm_csv != seq_csv {
        eprintln!("FAIL: warm-cache output differs from cold-cache output");
        std::process::exit(1);
    }
    if warm.hits == 0 {
        eprintln!("FAIL: warm run recorded no schedule-cache hits");
        std::process::exit(1);
    }
    // On 1–2 core hosts the "parallel" run cannot beat the sequential
    // one — the workers time-slice the same core(s) and the measured
    // ratio is scheduler noise (historically reported as a spurious
    // `speedup: 0.667`). Report the ratio only where it means something.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let parallel_meaningful = cores >= 2 && workers >= 2;
    let speedup = seq_ms / par_ms.max(1e-9);
    let warm_speedup = seq_ms / warm_ms.max(1e-9);
    if parallel_meaningful {
        println!(
            "  byte-identical output at every worker count; speedup {speedup:.2}x \
             (warm {warm_speedup:.2}x)"
        );
    } else {
        println!(
            "  byte-identical output at every worker count; parallel speedup \
             not meaningful on {cores} core(s) with {workers} worker(s)"
        );
    }

    let trace_tolerance = std::env::var("PIMNET_TRACE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.01)
        .max(0.01);
    let overhead = trace_overhead(trace_tolerance);
    println!(
        "  disabled-sink overhead: {:.2}% (limit {:.0}%)",
        overhead * 100.0,
        trace_tolerance * 100.0
    );
    if overhead > trace_tolerance {
        eprintln!(
            "FAIL: disabled observability sink costs {:.2}% over the plain \
             path (limit {:.0}%; raise with PIMNET_TRACE_TOLERANCE on noisy \
             machines)",
            overhead * 100.0,
            trace_tolerance * 100.0
        );
        std::process::exit(1);
    }

    let recov_overhead = recovery_overhead(trace_tolerance);
    println!(
        "  fault-free recovery overhead: {:.2}% (limit {:.0}%)",
        recov_overhead * 100.0,
        trace_tolerance * 100.0
    );
    if recov_overhead > trace_tolerance {
        eprintln!(
            "FAIL: the recovery manager's fault-free fast path costs {:.2}% \
             over the plain executor (limit {:.0}%; raise with \
             PIMNET_TRACE_TOLERANCE on noisy machines)",
            recov_overhead * 100.0,
            trace_tolerance * 100.0
        );
        std::process::exit(1);
    }

    let delta_floor = std::env::var("PIMNET_DELTA_SPEEDUP_FLOOR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(5.0);
    let (delta_speedup, delta_relinted) = delta_lint_speedup(5);
    println!(
        "  incremental re-lint: {delta_speedup:.1}x batch ({delta_relinted} of the \
         schedule's steps re-linted; floor {delta_floor:.0}x)"
    );
    if delta_speedup < delta_floor {
        eprintln!(
            "FAIL: incremental single-step re-lint is only {delta_speedup:.1}x \
             faster than the batch analyzer (floor {delta_floor:.0}x; override \
             with PIMNET_DELTA_SPEEDUP_FLOOR on noisy machines)"
        );
        std::process::exit(1);
    }

    if serve.unsound > 0 {
        eprintln!(
            "FAIL: the pinned serving workload violated its soundness \
             contract in {} cell(s)",
            serve.unsound
        );
        std::process::exit(1);
    }
    println!(
        "  serving ({} requests): p50 {:.3} us  p99 {:.3} us  \
         {:.1} collectives/s",
        serve.total, serve.p50_us, serve.p99_us, serve.collectives_per_sec
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"wall_ms\": {par_ms:.1},");
    let _ = writeln!(json, "  \"wall_ms_sequential\": {seq_ms:.1},");
    let _ = writeln!(json, "  \"wall_ms_warm\": {warm_ms:.1},");
    let _ = writeln!(json, "  \"schedules_built\": {},", cold.schedules_built);
    let _ = writeln!(json, "  \"cache_hits\": {},", warm.hits);
    if parallel_meaningful {
        let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
        let _ = writeln!(json, "  \"warm_speedup\": {warm_speedup:.3},");
    } else {
        let _ = writeln!(
            json,
            "  \"note\": \"parallel speedup omitted: {cores} core(s), {workers} worker(s)\","
        );
    }
    let _ = writeln!(json, "  \"trace_overhead_frac\": {overhead:.4},");
    let _ = writeln!(json, "  \"recovery_overhead_frac\": {recov_overhead:.4},");
    let _ = writeln!(json, "  \"delta_lint_speedup\": {delta_speedup:.2},");
    let _ = writeln!(json, "  \"serve_requests\": {},", serve.total);
    let _ = writeln!(json, "  \"serve_p50_us\": {:.3},", serve.p50_us);
    let _ = writeln!(json, "  \"serve_p99_us\": {:.3},", serve.p99_us);
    let _ = writeln!(
        json,
        "  \"serve_collectives_per_sec\": {:.1},",
        serve.collectives_per_sec
    );
    let _ = writeln!(json, "  \"workers\": {workers}");
    json.push('}');
    json.push('\n');

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("perf_gate: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let out_path = dir.join("BENCH_perf.json");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf_gate: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("[json] {}", out_path.display());

    let baseline_path = dir.join("perf_baseline.json");
    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, &json) {
            eprintln!("perf_gate: cannot write {}: {e}", baseline_path.display());
            std::process::exit(1);
        }
        println!("[json] {} (baseline updated)", baseline_path.display());
        return;
    }
    let Ok(baseline) = std::fs::read_to_string(&baseline_path) else {
        println!(
            "no baseline at {} — run with --update-baseline to record one",
            baseline_path.display()
        );
        return;
    };
    let tolerance = std::env::var("PIMNET_PERF_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.25);
    let Some(base_ms) = json_number(&baseline, "wall_ms") else {
        eprintln!(
            "perf_gate: baseline has no wall_ms: {}",
            baseline_path.display()
        );
        std::process::exit(1);
    };
    let limit = base_ms * (1.0 + tolerance);
    if par_ms > limit {
        eprintln!(
            "FAIL: wall time {par_ms:.1} ms exceeds baseline {base_ms:.1} ms \
             by more than {:.0}% (limit {limit:.1} ms)",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    // The serving metrics are *simulated* time — deterministic, so any
    // drift is a model change, not machine noise. The wall-clock
    // tolerance still applies so an intentional re-pin stays a
    // one-line --update-baseline, but the gate catches silent tail
    // regressions in the serving engine itself.
    if let Some(base_p99) = json_number(&baseline, "serve_p99_us") {
        let p99_limit = base_p99 * (1.0 + tolerance);
        if serve.p99_us > p99_limit {
            eprintln!(
                "FAIL: serving p99 {:.3} us exceeds baseline {base_p99:.3} us \
                 by more than {:.0}% (limit {p99_limit:.3} us)",
                serve.p99_us,
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
    if let Some(base_cps) = json_number(&baseline, "serve_collectives_per_sec") {
        let cps_floor = base_cps * (1.0 - tolerance);
        if serve.collectives_per_sec < cps_floor {
            eprintln!(
                "FAIL: serving throughput {:.1} collectives/s fell below \
                 baseline {base_cps:.1} by more than {:.0}% (floor {cps_floor:.1})",
                serve.collectives_per_sec,
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
    println!(
        "within budget: {par_ms:.1} ms vs baseline {base_ms:.1} ms \
         (+{:.0}% tolerance)",
        tolerance * 100.0
    );
}
