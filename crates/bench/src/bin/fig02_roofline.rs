//! Fig 2: roofline models showing the potential of a dedicated PIM
//! interconnect.
//!
//! (a) classic roofline (identical memory slope for every implementation);
//! (b) communication roofline: attainable throughput vs *communication
//! arithmetic intensity*, with one slope per collective implementation.
//! The paper's headline: PIMnet reaches ≈8× the compute throughput of
//! Software (Ideal) in the communication-bound region.

use pim_arch::SystemConfig;
use pim_sim::Bytes;
use pimnet::backends::{BaselineHostBackend, PimnetBackend, SoftwareIdealBackend};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::roofline::{
    algorithmic_bytes, compute_roofline, effective_collective_bandwidth, Roofline,
};
use pimnet::FabricConfig;
use pimnet_bench::Table;

fn main() {
    let sys = SystemConfig::paper();
    let fabric = FabricConfig::paper();
    let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));

    let classic = compute_roofline(&sys);
    println!(
        "classic roofline: peak {:.1} GOPS, internal BW {:.1} GB/s, knee {:.2} ops/B\n",
        classic.peak_ops_per_sec / 1e9,
        classic.bandwidth / 1e9,
        classic.knee()
    );

    // Communication rooflines: Baseline, Max DRAM BW (19.2 GB/s ideal DDR),
    // Software (Ideal), PIMnet.
    let base_bw =
        effective_collective_bandwidth(&BaselineHostBackend::new(sys), &spec).expect("baseline");
    let ideal_bw = effective_collective_bandwidth(&SoftwareIdealBackend::new(sys), &spec)
        .expect("software-ideal");
    let pim_bw =
        effective_collective_bandwidth(&PimnetBackend::new(sys, fabric), &spec).expect("pimnet");
    // "Max DRAM BW" assumes the full DDR bandwidth moves collective data.
    let total = algorithmic_bytes(&spec, sys.geometry.dpus_per_channel());
    let max_dram_bw = total.as_u64() as f64 / sys.buffer_chip_bw.transfer_time(total).as_secs_f64();

    let models = [
        ("Baseline PIM", base_bw),
        ("Max DRAM BW", max_dram_bw),
        ("Software (Ideal)", ideal_bw),
        ("PIMnet", pim_bw),
    ];

    let mut t = Table::new(
        "Fig 2(b): communication roofline (attainable GOPS vs comm. arithmetic intensity)",
        &[
            "ops/byte",
            "Baseline PIM",
            "Max DRAM BW",
            "Software (Ideal)",
            "PIMnet",
        ],
    );
    let mut ai = 0.0625f64;
    while ai <= 16_384.0 {
        let mut row = vec![format!("{ai:.4}")];
        for (_, bw) in models {
            let r = Roofline {
                peak_ops_per_sec: classic.peak_ops_per_sec,
                bandwidth: bw,
            };
            row.push(format!("{:.3}", r.attainable(ai) / 1e9));
        }
        t.row(row);
        ai *= 4.0;
    }
    t.emit("fig02_roofline");

    let mut s = Table::new(
        "Fig 2(b): effective collective bandwidth (slopes)",
        &["model", "GB/s", "vs Software (Ideal)"],
    );
    for (name, bw) in models {
        s.row([
            name.to_string(),
            format!("{:.2}", bw / 1e9),
            format!("{:.2}x", bw / ideal_bw),
        ]);
    }
    s.emit("fig02_slopes");

    println!(
        "PIMnet vs Software (Ideal) compute-throughput gain in the \
         communication-bound region: {:.1}x (paper: ~8x)",
        pim_bw / ideal_bw
    );
}
