//! Table IV: the three PIMnet network tiers, their physical channels,
//! widths and bandwidths — printed from the live configuration with the
//! derived §IV-B aggregates self-checked.

use pim_arch::PimGeometry;
use pimnet::FabricConfig;
use pimnet_bench::Table;

fn main() {
    let f = FabricConfig::paper();
    let g = PimGeometry::paper();

    let mut t = Table::new(
        "Table IV: PIMnet network hierarchy",
        &[
            "tier",
            "physical channel",
            "#ch",
            "width",
            "GB/s per ch",
            "topology",
            "router",
        ],
    );
    t.row([
        "inter-bank",
        "bank I/O bus",
        "4",
        "16 b",
        &format!("{:.2}", f.bank_channel_bw.as_gbps()),
        "ring",
        "PIMnet stop",
    ]);
    t.row([
        "inter-chip",
        "DQ pins",
        "2",
        "4 b",
        &format!("{:.2}", f.chip_channel_bw.as_gbps()),
        "crossbar",
        "buffer chip",
    ]);
    t.row([
        "inter-rank",
        "DDR bus",
        "1 (half-duplex)",
        "64 b",
        &format!("{:.1}", f.rank_bus_bw.as_gbps()),
        "bus",
        "buffer chip",
    ]);
    t.emit("table04_tiers");

    // §IV-B derived aggregates, asserted as printed.
    let bisection = f.inter_bank_bisection_per_chip();
    assert_eq!(bisection.as_gbps(), 2.8);
    println!("inter-bank bisection per chip: {bisection} (paper: 2.8 GB/s)");
    let per_rank_chips = f.bank_channel_bw.aggregate(4).aggregate(8);
    assert_eq!(per_rank_chips.as_gbps(), 22.4);
    println!("inter-bank bisection per rank (8 chips): {per_rank_chips} (paper: 22.4 GB/s)");
    let rank_agg = f.aggregate_ring_bandwidth(&PimGeometry::new(8, 8, 1, 1));
    assert_eq!(rank_agg.as_gbps(), 179.2);
    println!(
        "aggregated send+receive ring bandwidth per 64-DPU rank: {rank_agg} (paper: 179.2 GB/s)"
    );
    println!("system: {g}");
}
