//! Fig 12: collective-communication scalability, 8 → 256 DPUs (weak
//! scaling, 32 KB per DPU), as speedup over the baseline at each size.
//! Compared systems: S (ideal software), N (NDPBridge, All-to-All only),
//! D (DIMM-Link), P (PIMnet). Rows fan out over `pim_sim::par`.

use pim_sim::par;
use pimnet::collective::CollectiveKind;
use pimnet_bench::sweeps;

fn main() {
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let t = sweeps::fig12_table(kind, par::thread_count());
        t.emit(&format!("fig12_{}", kind.abbrev().to_lowercase()));
    }
}
