//! Fig 12: collective-communication scalability, 8 → 256 DPUs (weak
//! scaling, 32 KB per DPU), as speedup over the baseline at each size.
//! Compared systems: S (ideal software), N (NDPBridge, All-to-All only),
//! D (DIMM-Link), P (PIMnet).

use pim_arch::SystemConfig;
use pim_sim::Bytes;
use pimnet::backends::{
    BaselineHostBackend, CollectiveBackend, DimmLinkBackend, NdpBridgeBackend, PimnetBackend,
    SoftwareIdealBackend,
};
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::FabricConfig;
use pimnet_bench::Table;

fn main() {
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let spec = CollectiveSpec::new(kind, Bytes::kib(32));
        let mut t = Table::new(
            &format!("Fig 12: {kind} speedup over baseline (weak scaling, 32 KB/DPU)"),
            &["DPUs", "S", "N", "D", "P"],
        );
        for n in [8u32, 16, 32, 64, 128, 256] {
            let sys = SystemConfig::paper_scaled(n);
            let fabric = FabricConfig::paper();
            let base = BaselineHostBackend::new(sys)
                .collective(&spec)
                .unwrap()
                .total();
            let cell = |b: &dyn CollectiveBackend| match b.collective(&spec) {
                Ok(r) => format!("{:.2}", base.ratio(r.total())),
                Err(_) => "n/a".to_string(),
            };
            t.row([
                n.to_string(),
                cell(&SoftwareIdealBackend::new(sys)),
                cell(&NdpBridgeBackend::new(sys)),
                cell(&DimmLinkBackend::new(sys, fabric)),
                cell(&PimnetBackend::new(sys, fabric)),
            ]);
        }
        t.emit(&format!("fig12_{}", kind.abbrev().to_lowercase()));
    }
}
