//! §VI-B "Hardware Overhead of PIMnet": the analytical substitute for the
//! paper's Verilog + OpenROAD (45 nm, 3 metal layers) synthesis.

use pim_sim::SimTime;
use pimnet::hwcost::HwCostModel;
use pimnet::sync::{SyncModel, SyncScope};
use pimnet_bench::Table;

fn main() {
    let m = HwCostModel::nangate45();
    let stop = m.pimnet_stop();
    let router = m.ring_router();
    let switch = m.interchip_switch();

    let mut t = Table::new(
        "Hardware overhead (45 nm analytical model)",
        &["block", "area (mm^2)", "power (mW)"],
    );
    t.row([
        "PIMnet stop".to_string(),
        format!("{:.5}", stop.area_mm2),
        format!("{:.3}", stop.power_mw),
    ]);
    t.row([
        "ring NoC router".to_string(),
        format!("{:.5}", router.area_mm2),
        format!("{:.3}", router.power_mw),
    ]);
    t.row([
        "inter-chip 8x8 switch".to_string(),
        format!("{:.5}", switch.area_mm2),
        format!("{:.3}", switch.power_mw),
    ]);
    t.emit("hw_overhead");

    println!(
        "PIMnet stop vs PIM bank: {:.3}% area (paper: 0.09%), {:.2}% power (paper: 1.6%)",
        m.stop_area_overhead() * 100.0,
        m.stop_power_overhead() * 100.0
    );
    println!(
        "PIMnet stop vs ring router: {:.0}x smaller (paper: >60x)",
        m.stop_vs_router_ratio()
    );
    println!(
        "inter-chip switch: {:.3} mm^2 / {:.0} mW (paper: 0.013 mm^2, 17 mW)",
        switch.area_mm2, switch.power_mw
    );

    let sync = SyncModel::default();
    let worst = sync.one_way(SyncScope::Channel);
    println!(
        "READY/START worst-case propagation: {worst} (~{} DPU cycles; paper: ~15 ns / ~6 cycles); \
         full barrier {}",
        worst.as_ns() / 2.857,
        sync.barrier(SyncScope::Channel, SimTime::ZERO)
    );
}
