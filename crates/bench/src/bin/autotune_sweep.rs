//! Autotuner sweep: the paper's Table V schedules vs per-geometry tuned
//! hierarchical compositions, over the pinned `fig12_best` cell matrix.
//!
//! Every cell runs `pimnet::schedule::autotune::tune` for one
//! `(collective, geometry, payload)` request: the tuner enumerates its
//! deterministic candidate compositions, re-proves each with the full
//! analysis suite (any diagnostic disqualifies), prices the survivors
//! and the paper incumbent through the boost-plan timing path, and keeps
//! the winner — the paper schedule keeps ties, so `tuned_us <= paper_us`
//! on every row by construction.
//!
//! The table is a pure function of the pinned matrix: cells fan out over
//! `pim_sim::par` with ordered collection and the schedule cache dedups
//! concurrent tuners, so re-running at any worker count (`PIMNET_THREADS`)
//! or cache warmth reproduces `results/fig12_best.csv` byte-for-byte. CI
//! runs this twice (1 vs 4 workers) and diffs the CSVs.
//!
//! Usage: `autotune_sweep` (no arguments; the matrix is pinned).

use pim_sim::par;
use pimnet_bench::sweeps;

fn main() {
    if std::env::args().len() > 1 {
        eprintln!("autotune_sweep: takes no arguments (the cell matrix is pinned)");
        std::process::exit(2);
    }
    println!(
        "autotune sweep: {} pinned (kind, dpus, elems) cells\n",
        sweeps::fig12_best_cells().len()
    );
    let table = sweeps::fig12_best(par::thread_count());
    table.emit("fig12_best");
    let tuned_rows = table.rows().iter().filter(|r| r[6] != "paper").count();
    println!(
        "\n{} of {} cells tuned away from the paper schedule.",
        tuned_rows,
        table.rows().len()
    );
}
