//! Fig 10: real-application performance across the five systems
//! (B: baseline, S: ideal software, N: NDPBridge, D: DIMM-Link, P: PIMnet),
//! with the execution-time breakdown into compute and communication.

use pim_arch::SystemConfig;
use pim_workloads::{paper_suite, program::run_program};
use pimnet::backends::{all_backends, BackendKind};
use pimnet::FabricConfig;
use pimnet_bench::{pct, us, x, Table};

fn main() {
    let sys = SystemConfig::paper();
    let backends = all_backends(sys, FabricConfig::paper());

    let mut t = Table::new(
        "Fig 10: application execution time (us) and speedup vs baseline",
        &[
            "workload",
            "B",
            "S",
            "N",
            "D",
            "P",
            "P-speedup",
            "B-comm%",
            "P-comm%",
        ],
    );

    for w in paper_suite() {
        let program = w.program(&sys);
        let mut cells = vec![w.name().to_string()];
        let mut base_total = None;
        let mut pim = None;
        let mut base_comm = None;
        for b in &backends {
            let supported = program.collective_kinds().iter().all(|&k| b.supports(k));
            if !supported {
                cells.push("n/a".into());
                continue;
            }
            let r = run_program(&program, &sys, b.as_ref()).expect("run");
            cells.push(us(r.total()));
            match b.kind() {
                BackendKind::Baseline => {
                    base_total = Some(r.total());
                    base_comm = Some(r.comm_fraction());
                }
                BackendKind::Pimnet => pim = Some(r),
                _ => {}
            }
        }
        let (bt, p) = (base_total.unwrap(), pim.unwrap());
        cells.push(x(bt.ratio(p.total())));
        cells.push(pct(base_comm.unwrap()));
        cells.push(pct(p.comm_fraction()));
        t.row(cells);
    }
    t.emit("fig10_applications");

    println!(
        "Paper reference points: CC 5.6x, SpMV 2.43x, Join 1.36x, MLP ~1.3x, \
         AllReduce up to 83% of baseline graph time."
    );
}
