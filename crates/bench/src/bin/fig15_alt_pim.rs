//! Fig 15: PIMnet's benefit when the PIM compute is much faster than an
//! UPMEM DPU (HBM-PIM, GDDR6-AiM, next-gen DPUs).
//!
//! The two most compute-intensive workloads (MLP, NTT) are re-timed with
//! each device's compute model; communication is unchanged. The paper:
//! MLP's PIMnet speedup grows from ~1.3× on UPMEM to ~40× with
//! GDDR6-AiM-class compute.

use pim_arch::{ComputePreset, SystemConfig};
use pim_workloads::program::run_program;
use pim_workloads::{mlp::Mlp, ntt::NttWorkload, Workload};
use pimnet::backends::{BaselineHostBackend, PimnetBackend};
use pimnet::FabricConfig;
use pimnet_bench::{x, Table};

fn main() {
    let presets = [
        ComputePreset::UpmemDpu,
        ComputePreset::HbmPim,
        ComputePreset::Gddr6Aim,
        ComputePreset::NextGenDpu,
    ];
    let workloads: Vec<Box<dyn Workload>> =
        vec![Box::new(Mlp::new(1024)), Box::new(NttWorkload::paper())];

    let mut t = Table::new(
        "Fig 15: PIMnet speedup over baseline with alternative PIM compute",
        &[
            "workload",
            "UPMEM DPU",
            "HBM-PIM",
            "GDDR6-AiM",
            "next-gen DPU",
        ],
    );
    for w in &workloads {
        let mut cells = vec![w.name().to_string()];
        for preset in presets {
            let sys = SystemConfig::paper().with_compute(preset);
            let program = w.program(&sys);
            let base = run_program(&program, &sys, &BaselineHostBackend::new(sys)).unwrap();
            let pim = run_program(
                &program,
                &sys,
                &PimnetBackend::new(sys, FabricConfig::paper()),
            )
            .unwrap();
            cells.push(x(base.total().ratio(pim.total())));
        }
        t.row(cells);
    }
    t.emit("fig15_alt_pim");
    println!("Paper: MLP ~1.3x on UPMEM -> ~40x with GDDR6-AiM-class compute.");
}
