//! Ablation study of PIMnet's AllReduce design choices (DESIGN.md):
//!
//! * **bidirectional bank ring** — uses all four Table IV channels; the
//!   ablated unidirectional ring halves inter-bank bandwidth;
//! * **broadcast-based inter-rank reduction** — one bus pass both reduces
//!   and redistributes; the ablated scatter+AllGather pays the bus twice.

use pim_arch::geometry::PimGeometry;
use pim_sim::SimTime;
use pimnet::schedule::{AllReduceOptions, CommSchedule};
use pimnet::timing::TimingModel;
use pimnet_bench::{us, Table};

fn main() {
    let g = PimGeometry::paper();
    let m = TimingModel::paper();
    let variants = [
        ("paper (bidir + broadcast)", AllReduceOptions::default()),
        (
            "unidirectional ring",
            AllReduceOptions {
                bidirectional_ring: false,
                ..AllReduceOptions::default()
            },
        ),
        (
            "scatter+AG inter-rank",
            AllReduceOptions {
                rank_broadcast: false,
                ..AllReduceOptions::default()
            },
        ),
        (
            "both ablated",
            AllReduceOptions {
                bidirectional_ring: false,
                rank_broadcast: false,
            },
        ),
    ];

    let mut t = Table::new(
        "AllReduce design ablations (32 KB/DPU, 256 DPUs)",
        &[
            "variant",
            "inter-bank",
            "inter-chip",
            "inter-rank",
            "total",
            "vs paper",
        ],
    );
    let baseline = {
        let s = CommSchedule::build_allreduce_with(&g, 8192, 4, variants[0].1).unwrap();
        m.time_schedule(&s, SimTime::ZERO).total()
    };
    for (name, opts) in variants {
        let s = CommSchedule::build_allreduce_with(&g, 8192, 4, opts).unwrap();
        pimnet::schedule::validate::validate(&s).expect("valid");
        let b = m.time_schedule(&s, SimTime::ZERO);
        t.row([
            name.to_string(),
            us(b.inter_bank),
            us(b.inter_chip),
            us(b.inter_rank),
            us(b.total()),
            format!("{:.2}x", b.total().ratio(baseline)),
        ]);
    }
    // A different *algorithm* entirely: textbook recursive halving-doubling
    // (2 log N steps) — fast on fat networks, wrong for this fabric.
    let hd = pimnet::schedule::halving::build_halving_doubling(&g, 8192, 4).unwrap();
    pimnet::schedule::validate::validate(&hd).expect("valid");
    let b = m.time_schedule(&hd, SimTime::ZERO);
    t.row([
        "halving-doubling (16 steps)".to_string(),
        us(b.inter_bank),
        us(b.inter_chip),
        us(b.inter_rank),
        us(b.total()),
        format!("{:.2}x", b.total().ratio(baseline)),
    ]);
    t.emit("ablation_allreduce");
}
