//! Multi-tenant serving soak: DLRM tenants through `pimnet::serve`.
//!
//! Sweeps seed × mode (clean, fault-storm) cells of the serving engine:
//! each cell samples per-tenant arrival streams for a mix of the
//! paper's RM1/RM2/RM3 embedding stand-ins (fig 10), admits them
//! through bounded token-bucket queues under the priority policy, and
//! services them as chunked collectives on fig 17's per-tenant shard —
//! degrading monotonically through the overload ladder and, in storm
//! mode, routing faulted dispatches through the runtime recovery
//! manager with health-tracked tenant quarantine. Every cell is
//! re-verdicted from the outside: one typed outcome per request, a
//! ladder that only climbs, quarantine epochs that never regress. Any
//! violation fails the binary.
//!
//! Everything is a pure function of the seed: the table *and* the
//! concatenated request logs are byte-identical at any worker count
//! (`PIMNET_THREADS` pins the pool). CI runs this twice (1 vs 4
//! workers) and diffs both artifacts; the latency CSV
//! (`serve_soak_latency.csv`) carries the clean-mode p50/p99 and
//! throughput the perf gate also tracks.
//!
//! Usage: `serve_soak [tenants] [seeds-per-mode] [base-seed]`
//! (defaults: 3, 4, 0xD1).

use pim_sim::par;
use pimnet_bench::{results_dir, sweeps};

fn main() {
    // User-supplied arguments get typed errors, not panics.
    let mut args = std::env::args().skip(1);
    let parse_u64 = |arg: Option<String>, name: &str, default: u64| -> Result<u64, String> {
        match arg {
            None => Ok(default),
            Some(a) => a
                .parse()
                .map_err(|_| format!("{name} must be a number, got '{a}'")),
        }
    };
    let (tenants, per_mode, base) = match (|| -> Result<(u64, u64, u64), String> {
        let tenants = parse_u64(args.next(), "tenants", 3)?;
        let per_mode = parse_u64(args.next(), "seeds-per-mode", 4)?;
        let base = parse_u64(args.next(), "base-seed", 0xD1)?;
        Ok((tenants, per_mode, base))
    })() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("serve_soak: {e}\nusage: serve_soak [tenants] [seeds-per-mode] [base-seed]");
            std::process::exit(2);
        }
    };

    println!(
        "serving soak: {tenants} DLRM tenants x {per_mode} seeds x 2 modes \
         (clean, storm; base {base:#x})\n"
    );
    let summary = sweeps::serve_soak(tenants as usize, per_mode, base, par::thread_count());
    summary.table.emit("serve_soak");

    // The request logs are the byte-identity artifact CI diffs across
    // worker counts; the latency CSV is the perf-gate-tracked headline.
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let log_path = dir.join("serve_soak_log.csv");
    match std::fs::write(&log_path, &summary.log) {
        Ok(()) => println!("\n[log] {}", log_path.display()),
        Err(e) => eprintln!("serve_soak: cannot write {}: {e}", log_path.display()),
    }
    let lat = format!(
        "metric,value\nserve_p50_us,{:.3}\nserve_p99_us,{:.3}\nserve_collectives_per_sec,{:.1}\n",
        summary.p50_us, summary.p99_us, summary.collectives_per_sec
    );
    let lat_path = dir.join("serve_soak_latency.csv");
    match std::fs::write(&lat_path, lat) {
        Ok(()) => println!("[csv] {}", lat_path.display()),
        Err(e) => eprintln!("serve_soak: cannot write {}: {e}", lat_path.display()),
    }

    println!(
        "\n{} requests: {} served, {} host-fallback, {} shed, {} quarantined; \
         clean p50 {:.3} us, p99 {:.3} us, {:.1} collectives/s; \
         {} soundness violation(s).",
        summary.total,
        summary.served,
        summary.host_fallback,
        summary.shed,
        summary.quarantined,
        summary.p50_us,
        summary.p99_us,
        summary.collectives_per_sec,
        summary.unsound
    );
    if summary.unsound > 0 {
        eprintln!(
            "FAIL: {} cell(s) violated the serving contract",
            summary.unsound
        );
        std::process::exit(1);
    }
}
