//! Characterization of the *dynamic* (credit-based) network under the
//! classic synthetic traffic patterns — context for Fig 13: this is the
//! network PIMnet's static scheduling replaces.

use pim_arch::PimGeometry;
use pim_noc::traffic::{synthetic_packets, Pattern};
use pim_noc::{simulate_credit_packets, NocConfig};
use pim_sim::SimTime;
use pimnet_bench::{us, Table};

fn main() {
    let g = PimGeometry::paper();
    let cfg = NocConfig::paper();
    let ready = vec![SimTime::ZERO; g.total_dpus() as usize];

    let mut t = Table::new(
        "Credit-based network under synthetic traffic (256 DPUs, 8 x 512 B packets/node)",
        &[
            "pattern",
            "completion (us)",
            "p50 latency (us)",
            "p99 latency (us)",
            "busiest link",
            "wait (pkt-cycles)",
        ],
    );
    for pattern in Pattern::ALL {
        let packets = synthetic_packets(&g, pattern, 8, 512, 2026);
        let r = simulate_credit_packets(&packets, &ready, &cfg);
        t.row([
            format!("{pattern:?}"),
            us(r.completion),
            us(r.p50_latency),
            us(r.p99_latency),
            format!("{:.1}%", r.max_link_utilization * 100.0),
            r.stall_cycles.to_string(),
        ]);
    }
    t.emit("noc_patterns");
    println!(
        "Neighbour traffic rides the rings; anything global funnels through \
         the 1.05 GB/s DQ channels and the shared bus — the fabric constraint \
         PIMnet's hierarchical collectives are shaped around."
    );
}
