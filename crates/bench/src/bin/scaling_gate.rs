//! CI scaling gate for boost mode.
//!
//! Prices every Table V collective at the paper's 8/64/256-DPU presets
//! through the full pricing path (`Timeline::build` + `time_schedule`)
//! and the boosted path (thin-slice timeline + analytic breakdown),
//! warm-cache, min-of-`reps` wall time per cell. The gate then enforces
//! boost mode's two contracts:
//!
//! 1. **Accuracy**: every cell uses a divisible payload, so the boosted
//!    breakdown must equal the full walk *bit-for-bit* — any inexact
//!    cell is a hard failure.
//! 2. **Raw speed**: at 256 DPUs the boosted path must price at least
//!    10x faster than the full path for every collective (override the
//!    floor with `PIMNET_BOOST_SPEEDUP_FLOOR`).
//!
//! Results land in `results/BENCH_scaling.json`. When a committed
//! baseline (`results/scaling_baseline.json`) exists, the gate also
//! fails if the minimum 256-DPU speedup fell below the baseline's by
//! more than `PIMNET_PERF_TOLERANCE` (default 25 %). The gated quantity
//! is a same-machine *ratio*, so the baseline transfers across hosts —
//! unlike wall-times, which the JSON reports but does not gate.
//!
//! Usage: `scaling_gate [workers] [--update-baseline]`.

use std::fmt::Write as _;

use pim_sim::par;
use pimnet_bench::{results_dir, sweeps};

/// Timed repetitions per cell: enough for a stable minimum, cheap enough
/// that the whole gate stays in single-digit seconds.
const REPS: u32 = 30;

/// Extracts `"key": <number>` from a flat JSON object (same shape and
/// reader as `perf_gate`).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let mut workers: Option<usize> = None;
    let mut update_baseline = false;
    for arg in std::env::args().skip(1) {
        if arg == "--update-baseline" {
            update_baseline = true;
        } else if let Ok(n) = arg.parse::<usize>() {
            workers = Some(n.max(1));
        } else {
            eprintln!("scaling_gate: unknown argument '{arg}'");
            eprintln!("usage: scaling_gate [workers] [--update-baseline]");
            std::process::exit(2);
        }
    }
    let workers = workers.unwrap_or_else(par::thread_count);

    println!(
        "scaling gate: boost vs full pricing, {} collectives x {:?} DPUs, \
         min of {REPS} reps",
        pimnet::collective::CollectiveKind::ALL.len(),
        sweeps::SCALING_GEOMETRIES,
    );
    let cells = sweeps::scaling_cells(REPS, workers);
    println!("{}", sweeps::scaling_table(&cells).render());

    let inexact: Vec<String> = cells
        .iter()
        .filter(|c| !c.exact)
        .map(|c| format!("{} x{}", c.kind, c.dpus))
        .collect();
    if !inexact.is_empty() {
        eprintln!(
            "FAIL: boosted reconstruction diverged from the full walk on \
             divisible payloads: {}",
            inexact.join(", ")
        );
        std::process::exit(1);
    }

    let floor = std::env::var("PIMNET_BOOST_SPEEDUP_FLOOR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(10.0);
    let at_256: Vec<&sweeps::ScalingCell> = cells.iter().filter(|c| c.dpus == 256).collect();
    let min_speedup = at_256
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    let min_reduction = at_256
        .iter()
        .map(|c| c.reduction)
        .fold(f64::INFINITY, f64::min);
    println!(
        "  x256: min speedup {min_speedup:.1}x, min transfer reduction \
         {min_reduction:.1}x (floor {floor:.0}x)"
    );
    if min_speedup < floor {
        let worst = at_256
            .iter()
            .min_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("256-DPU cells exist");
        eprintln!(
            "FAIL: {} x256 boosted pricing is only {:.1}x faster than the \
             full path (floor {floor:.0}x; override with \
             PIMNET_BOOST_SPEEDUP_FLOOR on noisy machines)",
            worst.kind, worst.speedup
        );
        std::process::exit(1);
    }

    let full_ms_256: f64 = at_256.iter().map(|c| c.full_ms).sum();
    let boost_ms_256: f64 = at_256.iter().map(|c| c.boost_ms).sum();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"min_speedup_x256\": {min_speedup:.3},");
    let _ = writeln!(json, "  \"min_reduction_x256\": {min_reduction:.3},");
    let _ = writeln!(json, "  \"full_ms_x256_total\": {full_ms_256:.4},");
    let _ = writeln!(json, "  \"boost_ms_x256_total\": {boost_ms_256:.4},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kind\": \"{}\", \"dpus\": {}, \"full_ms\": {:.4}, \
             \"boost_ms\": {:.4}, \"speedup\": {:.3}, \"reduction\": {:.3}, \
             \"exact\": {}}}",
            c.kind, c.dpus, c.full_ms, c.boost_ms, c.speedup, c.reduction, c.exact
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("scaling_gate: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let out_path = dir.join("BENCH_scaling.json");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("scaling_gate: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    }
    println!("[json] {}", out_path.display());

    let baseline_path = dir.join("scaling_baseline.json");
    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, &json) {
            eprintln!(
                "scaling_gate: cannot write {}: {e}",
                baseline_path.display()
            );
            std::process::exit(1);
        }
        println!("[json] {} (baseline updated)", baseline_path.display());
        return;
    }
    let Ok(baseline) = std::fs::read_to_string(&baseline_path) else {
        println!(
            "no baseline at {} — run with --update-baseline to record one",
            baseline_path.display()
        );
        return;
    };
    let tolerance = std::env::var("PIMNET_PERF_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.25);
    let Some(base_speedup) = json_number(&baseline, "min_speedup_x256") else {
        eprintln!(
            "scaling_gate: baseline has no min_speedup_x256: {}",
            baseline_path.display()
        );
        std::process::exit(1);
    };
    let speedup_floor = base_speedup * (1.0 - tolerance);
    if min_speedup < speedup_floor {
        eprintln!(
            "FAIL: min 256-DPU boost speedup {min_speedup:.1}x fell below \
             baseline {base_speedup:.1}x by more than {:.0}% (floor \
             {speedup_floor:.1}x; re-pin with --update-baseline after an \
             intentional change)",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "within budget: min 256-DPU speedup {min_speedup:.1}x vs baseline \
         {base_speedup:.1}x (-{:.0}% tolerance)",
        tolerance * 100.0
    );
}
