//! Subcommand implementations.

use pim_arch::SystemConfig;
use pim_sim::{Bytes, SimTime};
use pimnet::api::PimnetSystem;
use pimnet::backends::BackendKind;
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::schedule::CommSchedule;
use pimnet::FabricConfig;

use crate::args::Flags;

/// Top-level usage text.
pub const USAGE: &str = "\
pimnet-cli — PIMnet (HPCA 2025) simulator CLI

USAGE:
  pimnet-cli collective --kind <coll> --kb <n> [--dpus <n>] [--backend B|S|N|D|P|all]
  pimnet-cli workload   --name <BFS|CC|MLP|GEMV|EMB_Synth|EMB_RM1..3|NTT|SpMV|Join>
                    [--backend B|S|N|D|P|all]
  pimnet-cli suite
  pimnet-cli schedule   --kind <coll> [--dpus <n>] [--elems <n>] [--boost]
                    [--algo <bank_chip_rank>] [--autotune]
  pimnet-cli noc        --kind <coll> [--dpus <n>] [--elems <n>] [--jitter-us <f>]
                    [--fault-seed <n>] [--fault-config <path>]
  pimnet-cli faults     --kind <coll> [--dpus <n>] [--elems <n>]
                    [--fault-seed <n>] [--fault-config <path>]
                    [--ber <f>] [--straggler-prob <f>] [--dead <i,j,..>]
                    [--perm-faults <tok,..>]
  pimnet-cli repair     --kind <coll> [--dpus <n>] [--elems <n>]
                    [--perm-faults <tok,..>] [--fault-seed <n>]
                    [--fault-config <path>]
  pimnet-cli lint       [--kind <coll>] [--dpus <n>] [--elems <n>] [--json]
                    [--all-presets] [--incremental] [--perm-faults <tok,..>]
                    [--fault-seed <n>] [--fault-config <path>]
  pimnet-cli trace      [--kind <coll>[,<coll>..]|all] [--dpus <n>] [--elems <n>]
                    [--out <trace.json>] [--csv <trace.csv>]
                    [--fault-seed <n>] [--fault-config <path>] [--ber <f>]
                    [--straggler-prob <f>] [--perm-faults <tok,..>]
  pimnet-cli soak       [--kind <coll>] [--dpus <n>] [--elems <n>] [--seeds <n>]
                    [--timeline-rate <f>] [--horizon-ps <n>] [--csv <soak.csv>]
                    [--fault-seed <n>] [--fault-config <path>] [--ber <f>]
                    [--straggler-prob <f>] [--dead <i,j,..>] [--perm-faults <tok,..>]
                    [--arrivals <tok@t=Nps,..>] [--flaps <seg@t=Nps+Dps,..>]
                    [--bursts <ber=p@t=Nps+Dps,..>] [--watchdog-ps <n>]
                    [--retry-budget <n>] [--backoff-base-ps <n>]
  pimnet-cli serve      [--tenants <n>] [--seed <n>] [--horizon-us <n>]
                    [--policy fifo|lifo|priority] [--queue-cap <n>]
                    [--elems <n>] [--chunk-elems <n>] [--mean-gap-us <n>]
                    [--deadline-us <n>] [--priority-spread]
                    [--timeline-rate <f>] [--log <serve_log.csv>] [--metrics]
                    [fault flags as for soak]
  pimnet-cli replay     --log <serve_log.csv> [serving knobs as for serve]

  <coll> = allreduce | reducescatter | allgather | a2a | broadcast | reduce | gather

  trace runs each collective through the schedule cache, the timing engine,
  and the functional executor with the structured-event tracer attached,
  then exports one Chrome trace_event JSON (load it at chrome://tracing or
  https://ui.perfetto.dev) with one process per collective and one track
  per subsystem. Without --out the JSON goes to stdout (summaries go to
  stderr). Traces are deterministic: same seed + geometry => byte-identical
  output at any PIMNET_THREADS.

  schedule/noc/faults/repair also accept --metrics: run the same
  computation with the metrics sink attached and print the aggregated
  report (per-tier bytes, link-busy time, barrier waits, retries, ...).
  schedule --boost additionally thins the schedule to the representative
  slice used by boost mode and prints the kept/total transfer counts and
  the analytically reconstructed end-to-end time (exact on the builder's
  symmetric collectives).

  schedule --algo compiles a hierarchical composed schedule instead of the
  paper's Table V one: the spec names one per-tier algorithm per dimension,
  bank_chip_rank, each of ring|direct|dbtree|rabenseifner (e.g.
  --algo ring_direct_dbtree). schedule --autotune sweeps the composition
  candidates for the requested (kind, geometry, payload), re-proves each
  with the analysis passes, prices survivors via the boost path, and uses
  the winner (the paper schedule keeps ties).

  lint runs the static analyzer (structural, sync, hazard, dataflow passes)
  over a schedule without executing it, and exits non-zero on any
  error-severity diagnostic. With --perm-faults the schedule is first
  repaired and the *repaired* schedule is re-proven. --incremental routes
  the same proof through the streaming verifier: the base schedule is
  folded step-by-step, and a repaired schedule is re-proven by delta
  (only the steps the repair dirtied re-lint); the report is byte-identical
  to the batch analyzer. --json emits one machine-readable JSON report per
  line; --all-presets lints every collective on the paper's 8/64/256-DPU
  presets plus sampled permanent-fault storms, fanned out over
  PIMNET_THREADS workers.

  Fault configs are key=value files (see pim-faults); --fault-seed overrides
  the file's seed, and --ber/--straggler-prob/--dead override its rates.
  --perm-faults names permanent fabric faults inline: ring segments as
  r<rank>c<chip>b<bank><E|W>, crossbar ports as r<rank>c<chip><tx|rx>, and
  whole ranks as rank<N> (e.g. --perm-faults r0c1b3E,r0c2tx,rank1).

  Time-varying scenarios use the same component tokens stamped with a
  simulated arrival time: --arrivals r0c1b3E@t=500000ps lands a permanent
  fault mid-run, --flaps r0c1b3E@t=0ps+2000000ps downs a ring segment for
  a window, and --bursts ber=0.9@t=0ps+1000000ps elevates the transient
  BER for a window. --watchdog-ps / --retry-budget / --backoff-base-ps
  override the recovery budgets (barrier watchdog, per-step retry count,
  exponential backoff base).

  soak drives the runtime recovery manager (checkpointed resume, health
  quarantine, ladder replans) over a seed matrix: seeds --fault-seed ..
  +--seeds, each executed step-by-step under its fault timeline and then
  verified — tier <= 1 results must be bit-identical to the fault-free
  reference, and every run must end in a valid ladder tier with a typed
  error trail (no panics, no silent wrong answers). --timeline-rate
  additionally samples a per-seed storm of arrivals/flaps/bursts over
  --horizon-ps. --csv writes one row per seed (the CI chaos artifact).
  Seeds fan out over PIMNET_THREADS workers; the output (and the CSV) is
  byte-identical at any worker count.

  serve runs the deterministic multi-tenant serving engine: seeded
  per-tenant arrival streams, bounded queues with token-bucket admission,
  deadline-aware scheduling (--policy), chunked collectives interleaved
  across per-tenant channels, a monotone overload ladder (full service ->
  shrunk chunking -> shed low-priority -> per-tenant host fallback), and
  health-tracked tenant quarantine with probation hysteresis. Every
  request ends in exactly one typed outcome (served / host-fallback /
  shed / quarantined); the command re-verifies that plus ladder and
  quarantine monotonicity and exits non-zero on any violation.
  --priority-spread staggers tenant priorities 1..3 so the priority
  policy and the low-priority shed rung have something to act on.
  --timeline-rate samples a fault storm over the horizon (as in soak);
  faulted dispatches run through the runtime recovery manager.
  --log writes the request log as CSV — the byte-identity artifact.

  replay re-runs serve under the same knobs and byte-compares the fresh
  request log against --log, exiting non-zero on the first divergence:
  a pinned log file is a replayable contract for the whole engine.";

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "collective" => collective(&flags),
        "workload" => workload(&flags),
        "suite" => suite(),
        "schedule" => schedule(&flags),
        "noc" => noc(&flags),
        "faults" => faults(&flags),
        "repair" => repair(&flags),
        "lint" => lint(&flags),
        "trace" => trace(&flags),
        "soak" => soak(&flags),
        "serve" => serve(&flags),
        "replay" => replay(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn parse_kind(s: &str) -> Result<CollectiveKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "allreduce" | "ar" => CollectiveKind::AllReduce,
        "reducescatter" | "rs" => CollectiveKind::ReduceScatter,
        "allgather" | "ag" => CollectiveKind::AllGather,
        "a2a" | "alltoall" | "all-to-all" => CollectiveKind::AllToAll,
        "broadcast" | "bc" => CollectiveKind::Broadcast,
        "reduce" | "rd" => CollectiveKind::Reduce,
        "gather" | "ga" => CollectiveKind::Gather,
        other => return Err(format!("unknown collective '{other}'")),
    })
}

/// Parses `--kind` for the `trace` command: one collective, a comma list,
/// or `all` (the five golden-traced kinds).
fn parse_kinds(s: &str) -> Result<Vec<CollectiveKind>, String> {
    if s.eq_ignore_ascii_case("all") {
        return Ok(vec![
            CollectiveKind::AllReduce,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllGather,
            CollectiveKind::Broadcast,
            CollectiveKind::AllToAll,
        ]);
    }
    s.split(',').map(|k| parse_kind(k.trim())).collect()
}

fn parse_backends(s: &str) -> Result<Vec<BackendKind>, String> {
    if s.eq_ignore_ascii_case("all") {
        return Ok(BackendKind::ALL.to_vec());
    }
    s.chars()
        .map(|c| match c.to_ascii_uppercase() {
            'B' => Ok(BackendKind::Baseline),
            'S' => Ok(BackendKind::SoftwareIdeal),
            'N' => Ok(BackendKind::NdpBridge),
            'D' => Ok(BackendKind::DimmLink),
            'P' => Ok(BackendKind::Pimnet),
            other => Err(format!("unknown backend key '{other}' (use B/S/N/D/P)")),
        })
        .collect()
}

fn system_for(dpus: u32) -> Result<PimnetSystem, String> {
    if !(dpus.is_power_of_two() && (1..=256).contains(&dpus)) {
        return Err(format!(
            "--dpus must be a power of two in 1..=256, got {dpus}"
        ));
    }
    Ok(PimnetSystem::new(
        SystemConfig::paper_scaled(dpus),
        FabricConfig::paper(),
    ))
}

/// Builds the fault scenario shared by the `noc` and `faults` commands:
/// `--fault-config` loads a key=value file, `--fault-seed` overrides its
/// seed, and the remaining flags override individual rates. With none of
/// them given the injector is inactive (zero overhead everywhere).
fn fault_injector(flags: &Flags) -> Result<pim_faults::FaultInjector, String> {
    let mut cfg = match flags.require("fault-config") {
        Ok(path) => pim_faults::FaultConfig::from_file(std::path::Path::new(path))?,
        Err(_) => pim_faults::FaultConfig::none(),
    };
    if let Ok(seed) = flags.require("fault-seed") {
        cfg.seed = seed
            .parse()
            .map_err(|_| format!("flag --fault-seed: '{seed}' is not a valid u64"))?;
    }
    if let Ok(ber) = flags.require("ber") {
        cfg.transient_ber = ber
            .parse()
            .ok()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| format!("flag --ber: '{ber}' is not a probability"))?;
    }
    if let Ok(p) = flags.require("straggler-prob") {
        cfg.straggler_prob = p
            .parse()
            .ok()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| format!("flag --straggler-prob: '{p}' is not a probability"))?;
        if cfg.straggler_max_ns == 0 {
            cfg.straggler_max_ns = 50_000;
        }
    }
    if let Ok(list) = flags.require("dead") {
        cfg.dead_dpus = list
            .split(',')
            .map(|d| {
                d.trim()
                    .parse()
                    .map_err(|_| format!("flag --dead: '{d}' is not a DPU id"))
            })
            .collect::<Result<Vec<u32>, String>>()?;
        cfg.dead_dpus.sort_unstable();
        cfg.dead_dpus.dedup();
    }
    if let Ok(tokens) = flags.require("perm-faults") {
        let set = pim_faults::PermanentFaultSet::parse_tokens(tokens)
            .map_err(|e| format!("flag --perm-faults: {e}"))?;
        cfg.permanent.merge(&set);
    }
    if let Ok(text) = flags.require("arrivals") {
        cfg.timeline.arrivals = pim_faults::FaultTimeline::parse_arrivals(text)
            .map_err(|e| format!("flag --arrivals: {e}"))?;
    }
    if let Ok(text) = flags.require("flaps") {
        cfg.timeline.flaps = pim_faults::FaultTimeline::parse_flaps(text)
            .map_err(|e| format!("flag --flaps: {e}"))?;
    }
    if let Ok(text) = flags.require("bursts") {
        cfg.timeline.bursts = pim_faults::FaultTimeline::parse_bursts(text)
            .map_err(|e| format!("flag --bursts: {e}"))?;
    }
    cfg.timeline.normalize();
    if let Ok(v) = flags.require("watchdog-ps") {
        cfg.watchdog_ps = Some(
            v.parse()
                .map_err(|_| format!("flag --watchdog-ps: '{v}' is not a picosecond count"))?,
        );
    }
    if let Ok(v) = flags.require("retry-budget") {
        cfg.retry_budget = Some(
            v.parse()
                .map_err(|_| format!("flag --retry-budget: '{v}' is not a retry count"))?,
        );
    }
    if let Ok(v) = flags.require("backoff-base-ps") {
        cfg.backoff_base_ps = Some(
            v.parse()
                .map_err(|_| format!("flag --backoff-base-ps: '{v}' is not a picosecond count"))?,
        );
    }
    Ok(pim_faults::FaultInjector::new(cfg))
}

fn warn_unknown(flags: &Flags, known: &[&str]) {
    for k in flags.keys() {
        if !known.contains(&k) {
            eprintln!("warning: ignoring unknown flag --{k}");
        }
    }
}

fn collective(flags: &Flags) -> Result<(), String> {
    warn_unknown(flags, &["kind", "kb", "dpus", "backend"]);
    let kind = parse_kind(flags.require("kind")?)?;
    let kb: u64 = flags.num_or("kb", 32)?;
    let dpus: u32 = flags.num_or("dpus", 256)?;
    let backends = parse_backends(flags.get_or("backend", "all"))?;
    let sys = system_for(dpus)?;
    let spec = CollectiveSpec::new(kind, Bytes::kib(kb));

    println!("{kind}, {kb} KiB/DPU, {dpus} DPUs:");
    let mut baseline = None;
    for bk in backends {
        let backend = sys.backend(bk);
        match backend.collective(&spec) {
            Ok(r) => {
                if bk == BackendKind::Baseline {
                    baseline = Some(r.total());
                }
                let vs = baseline
                    .map(|b| format!("  ({:.2}x vs baseline)", b.ratio(r.total())))
                    .unwrap_or_default();
                println!("  {:<18} {}{vs}", bk.to_string(), r);
            }
            Err(e) => println!("  {:<18} unsupported: {e}", bk.to_string()),
        }
    }
    Ok(())
}

fn find_workload(name: &str) -> Option<Box<dyn pim_workloads::Workload>> {
    pim_workloads::paper_suite()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

fn workload(flags: &Flags) -> Result<(), String> {
    warn_unknown(flags, &["name", "backend"]);
    let name = flags.require("name")?;
    let w = find_workload(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let backends = parse_backends(flags.get_or("backend", "all"))?;
    let sys = SystemConfig::paper();
    let pimnet = PimnetSystem::paper();
    let program = w.program(&sys);
    println!(
        "{} ({} phases, {} of collective payload per DPU):",
        w.name(),
        program.phases.len(),
        program.total_collective_bytes()
    );
    for bk in backends {
        let backend = pimnet.backend(bk);
        if !program
            .collective_kinds()
            .iter()
            .all(|&k| backend.supports(k))
        {
            println!("  {:<18} unsupported collective", bk.to_string());
            continue;
        }
        let r = pim_workloads::program::run_program(&program, &sys, backend.as_ref())
            .map_err(|e| e.to_string())?;
        println!("  {:<18} {}", bk.to_string(), r);
    }
    Ok(())
}

fn suite() -> Result<(), String> {
    let sys = SystemConfig::paper();
    let pimnet = PimnetSystem::paper();
    let base = pimnet.backend(BackendKind::Baseline);
    let pim = pimnet.backend(BackendKind::Pimnet);
    println!("workload suite, PIMnet vs baseline (256 DPUs):");
    for w in pim_workloads::paper_suite() {
        let program = w.program(&sys);
        let b = pim_workloads::program::run_program(&program, &sys, base.as_ref())
            .map_err(|e| e.to_string())?;
        let p = pim_workloads::program::run_program(&program, &sys, pim.as_ref())
            .map_err(|e| e.to_string())?;
        println!(
            "  {:<10} baseline {:>12}  pimnet {:>12}  speedup {:>7.2}x",
            w.name(),
            b.total().to_string(),
            p.total().to_string(),
            b.total().ratio(p.total())
        );
    }
    Ok(())
}

/// Parses the bare `--metrics` switch shared by several commands into the
/// matching probe: a metrics-only sink when given, a no-op sink otherwise
/// (so the un-flagged path keeps its zero-overhead guarantee).
fn metrics_probe(flags: &Flags) -> pim_sim::Probe {
    if flags
        .get_or("metrics", "false")
        .eq_ignore_ascii_case("true")
    {
        pim_sim::Probe::metrics_only()
    } else {
        pim_sim::Probe {
            trace: pim_sim::Tracer::disabled(),
            metrics: pim_sim::Metrics::disabled(),
        }
    }
}

fn schedule(flags: &Flags) -> Result<(), String> {
    warn_unknown(
        flags,
        &[
            "kind", "dpus", "elems", "timeline", "metrics", "boost", "algo", "autotune",
        ],
    );
    let kind = parse_kind(flags.require("kind")?)?;
    let dpus: u32 = flags.num_or("dpus", 256)?;
    let elems: usize = flags.num_or("elems", 8192)?;
    let sys = system_for(dpus)?;
    let geometry = sys.system().geometry;
    let autotune = flags
        .get_or("autotune", "false")
        .eq_ignore_ascii_case("true");
    let algo_spec = flags.require("algo").ok();
    if autotune && algo_spec.is_some() {
        return Err("--algo and --autotune are mutually exclusive".to_string());
    }
    let s = if autotune {
        let choice = pimnet::schedule::autotune::tune(kind, &geometry, elems, 4)
            .map_err(|e| e.to_string())?;
        println!(
            "autotune: {} candidates swept, {} rejected; winner {} \
             (paper {}, tuned {}, speedup {:.2}x)",
            choice.candidates,
            choice.rejected,
            choice.spec(),
            choice.paper_time,
            choice.tuned_time,
            choice.speedup()
        );
        (*choice.schedule).clone()
    } else if let Some(spec) = algo_spec {
        let comp = pimnet::schedule::Composition::parse(spec)?;
        let built =
            pimnet::schedule::cache::build_composed_cached(kind, &geometry, elems, 4, comp, 1)
                .map_err(|e| e.to_string())?;
        println!("algo: composed schedule {comp} (bank_chip_rank)");
        (*built).clone()
    } else {
        CommSchedule::build(kind, &geometry, elems, 4).map_err(|e| e.to_string())?
    };
    let report = pimnet::schedule::validate::validate(&s).map_err(|e| e.to_string())?;
    println!(
        "{kind} on {dpus} DPUs, {elems} elements/DPU: {} phases, {} steps, \
         {} transfers, {} on the wire",
        s.phases.len(),
        s.step_count(),
        s.transfer_count(),
        s.total_wire_bytes()
    );
    for (i, phase) in s.phases.iter().enumerate() {
        println!(
            "  phase {i}: {:<11} {} steps{}",
            phase.label.to_string(),
            phase.steps.len(),
            if phase.multiplexed {
                "  (WAIT-multiplexed)"
            } else {
                ""
            }
        );
    }
    println!(
        "validation: max sharing ring={} chip={} bus={}",
        report.max_ring_sharing, report.max_chip_sharing, report.max_bus_sharing
    );
    let compiled = pimnet::isa::compile(&s).map_err(|e| e.to_string())?;
    println!(
        "offload: {} PIM instructions across {dpus} DPUs ({} per DPU)",
        compiled.instruction_count(),
        compiled.instruction_count() / dpus as usize
    );
    let energy = pimnet::energy::EnergyModel::default_45nm();
    println!(
        "energy: {:.2} uJ over PIMnet (per-tier {:?})",
        energy.schedule_energy_uj(&s),
        energy.breakdown_uj(&s)
    );
    if flags.get_or("boost", "false").eq_ignore_ascii_case("true") {
        let timing = pimnet::timing::TimingModel::paper();
        let plan = pimnet::schedule::boost::plan(&s);
        let boosted = plan.breakdown(&timing, pim_sim::SimTime::ZERO);
        println!(
            "boost: {} of {} transfers kept ({:.1}x reduction), \
             reconstructed total {}",
            plan.kept_transfers,
            plan.total_transfers,
            plan.reduction(),
            boosted.total()
        );
    }
    if let Ok(path) = flags.require("timeline") {
        let timeline = pimnet::timeline::Timeline::build(&s, &pimnet::timing::TimingModel::paper());
        std::fs::write(path, timeline.to_csv()).map_err(|e| e.to_string())?;
        println!(
            "timeline: {} transfer windows ending at {} -> {path}",
            timeline.windows.len(),
            timeline.end
        );
    }
    let probe = metrics_probe(flags);
    if probe.is_active() {
        let _ = pimnet::timeline::Timeline::build_probed(
            &s,
            &pimnet::timing::TimingModel::paper(),
            &probe,
        );
        println!("{}", probe.metrics.snapshot().render());
    }
    Ok(())
}

fn noc(flags: &Flags) -> Result<(), String> {
    warn_unknown(
        flags,
        &[
            "kind",
            "dpus",
            "elems",
            "jitter-us",
            "fault-seed",
            "fault-config",
            "metrics",
        ],
    );
    let kind = parse_kind(flags.get_or("kind", "a2a"))?;
    let dpus: u32 = flags.num_or("dpus", 64)?;
    let elems: usize = flags.num_or("elems", 2048)?;
    let jitter_us: f64 = flags.num_or("jitter-us", 40.0)?;
    let injector = fault_injector(flags)?;
    let sys = system_for(dpus)?;
    let s =
        CommSchedule::build(kind, &sys.system().geometry, elems, 4).map_err(|e| e.to_string())?;
    let cfg = pim_noc::NocConfig::paper();
    let ready: Vec<SimTime> = (0..u64::from(dpus))
        .map(|i| {
            let f = 0.9 + 0.2 * ((i.wrapping_mul(2_654_435_761) % 1_000) as f64 / 1_000.0);
            SimTime::from_secs_f64(jitter_us * 1e-6 * f)
        })
        .collect();
    let probe = metrics_probe(flags);
    let credit = pim_noc::simulate_credit_faulty_probed(&s, &ready, &cfg, &injector, &probe)
        .map_err(|e| e.to_string())?;
    let sched = pim_noc::simulate_scheduled(&s, &ready, &cfg);
    println!("{kind} on {dpus} DPUs, {elems} elements/DPU, ±10% jitter around {jitter_us} us:");
    println!("  credit-based : {credit}");
    println!(
        "                 p50 latency {}, p99 {}, busiest link {:.1}% utilized",
        credit.p50_latency,
        credit.p99_latency,
        credit.max_link_utilization * 100.0
    );
    println!("  PIM-control  : {sched}");
    let gain = 1.0 - sched.completion.as_secs_f64() / credit.completion.as_secs_f64();
    println!("  PIM control changes completion by {:+.1}%", gain * 100.0);
    if probe.is_active() {
        println!("{}", probe.metrics.snapshot().render());
    }
    Ok(())
}

fn faults(flags: &Flags) -> Result<(), String> {
    warn_unknown(
        flags,
        &[
            "kind",
            "dpus",
            "elems",
            "fault-seed",
            "fault-config",
            "ber",
            "straggler-prob",
            "dead",
            "perm-faults",
            "watchdog-ps",
            "retry-budget",
            "backoff-base-ps",
            "metrics",
        ],
    );
    let kind = parse_kind(flags.get_or("kind", "allreduce"))?;
    let dpus: u32 = flags.num_or("dpus", 64)?;
    let elems: usize = flags.num_or("elems", 1024)?;
    let injector = fault_injector(flags)?;
    let probe = metrics_probe(flags);
    let sys = system_for(dpus)?;
    let cfg = injector.config();
    println!(
        "{kind} on {dpus} DPUs, {elems} elements/DPU; faults: seed {}, BER {}, \
         straggler p={} (<= {} ns), {} dead DPU(s)",
        cfg.seed,
        cfg.transient_ber,
        cfg.straggler_prob,
        cfg.straggler_max_ns,
        cfg.dead_dpus.len()
    );

    // 1. Degrade the plan around hard-dead DPUs.
    let plan = pimnet::resilience::plan_degraded_probed(
        kind,
        &sys.system().geometry,
        elems,
        4,
        &injector,
        sys.system(),
        &probe,
    )
    .map_err(|e| e.to_string())?;
    for e in plan.error_trail() {
        println!("  degradation: {e}");
    }
    let schedule = match &plan {
        pimnet::resilience::DegradedPlan::Full(s) => {
            println!(
                "  plan: full ({} DPUs participate)",
                s.geometry.total_dpus()
            );
            s
        }
        pimnet::resilience::DegradedPlan::Repaired { schedule, report } => {
            println!(
                "  plan: repaired around permanent faults ({} rerouted, {} remapped, \
                 +{} hops, +{} steps)",
                report.rerouted_transfers,
                report.remapped_transfers,
                report.extra_hops,
                report.extra_steps
            );
            schedule
        }
        pimnet::resilience::DegradedPlan::Shrunk {
            schedule, excluded, ..
        } => {
            println!(
                "  plan: shrunk to {} alive DPUs ({} excluded: {excluded:?})",
                schedule.geometry.total_dpus(),
                excluded.len()
            );
            schedule
        }
        pimnet::resilience::DegradedPlan::HostFallback {
            breakdown,
            excluded,
            ..
        } => {
            println!(
                "  plan: host fallback ({} DPUs excluded), baseline collective takes {}",
                excluded.len(),
                breakdown.total()
            );
            if probe.is_active() {
                println!("{}", probe.metrics.snapshot().render());
            }
            return Ok(());
        }
    };

    // 2. Time the degraded schedule under transients and stragglers. The
    //    shrunk schedule speaks *logical* ids (all alive by construction),
    //    so the physical dead set no longer applies to it.
    let injector = pim_faults::FaultInjector::new(pim_faults::FaultConfig {
        dead_dpus: Vec::new(),
        ..injector.config().clone()
    });
    let timing = pimnet::timing::TimingModel::paper();
    let clean = pimnet::timeline::Timeline::build(schedule, &timing);
    let faulty =
        pimnet::timeline::Timeline::build_with_faults_probed(schedule, &timing, &injector, &probe)
            .map_err(|e| e.to_string())?;
    let stretch = faulty.end.as_secs_f64() / clean.end.as_secs_f64();
    println!(
        "  timing: fault-free {} -> under faults {}  ({:.2}x)",
        clean.end, faulty.end, stretch
    );

    // 3. Execute it functionally: CRC-detected corruption, retries, and a
    //    bit-identical check against the clean run.
    let init = |id: pim_arch::geometry::DpuId| vec![u64::from(id.0); elems];
    let mut clean_m = pimnet::exec::ExecMachine::init(schedule, init);
    clean_m.run(schedule, pimnet::exec::ReduceOp::Sum);
    let mut faulty_m = pimnet::exec::ExecMachine::init(schedule, init);
    let stats = faulty_m
        .run_with_faults_probed(schedule, pimnet::exec::ReduceOp::Sum, &injector, &probe)
        .map_err(|e| e.to_string())?;
    println!(
        "  exec: {} transfers, {} CRC checks, {} corrupted, {} retries; \
         result bit-identical to fault-free run: {}",
        stats.transfers,
        stats.crc_checks,
        stats.corrupted,
        stats.retries,
        clean_m == faulty_m
    );
    if clean_m != faulty_m {
        return Err("faulty run diverged from the clean run".into());
    }
    if probe.is_active() {
        println!("{}", probe.metrics.snapshot().render());
    }
    Ok(())
}

fn repair(flags: &Flags) -> Result<(), String> {
    warn_unknown(
        flags,
        &[
            "kind",
            "dpus",
            "elems",
            "perm-faults",
            "fault-seed",
            "fault-config",
            "metrics",
        ],
    );
    let kind = parse_kind(flags.get_or("kind", "allreduce"))?;
    let dpus: u32 = flags.num_or("dpus", 64)?;
    let elems: usize = flags.num_or("elems", 1024)?;
    let injector = fault_injector(flags)?;
    let probe = metrics_probe(flags);
    let sys = system_for(dpus)?;
    let g = sys.system().geometry;
    let faults = injector.permanent_faults(g.ranks_per_channel, g.chips_per_rank, g.banks_per_chip);
    println!("{kind} on {dpus} DPUs, {elems} elements/DPU");
    println!("permanent faults: {faults}");
    let unusable = pimnet::schedule::repair::unusable_dpus(&g, &faults);
    if !unusable.is_empty() {
        println!(
            "  {} DPU(s) unreachable even by repair: {unusable:?}",
            unusable.len()
        );
    }
    let s = CommSchedule::build(kind, &g, elems, 4).map_err(|e| e.to_string())?;
    let timing = pimnet::timing::TimingModel::paper();
    match pimnet::timeline::Timeline::build_repaired_probed(&s, &timing, &faults, &probe) {
        Ok((timeline, report)) => {
            println!(
                "  repair: {} rerouted (+{} hops), {} remapped to buddy ports, \
                 +{} serialization steps",
                report.rerouted_transfers,
                report.extra_hops,
                report.remapped_transfers,
                report.extra_steps
            );
            let clean = pimnet::timeline::Timeline::build(&s, &timing);
            println!(
                "  timing: fault-free {} -> repaired {}  ({:.2}x)",
                clean.end,
                timeline.end,
                timeline.end.as_secs_f64() / clean.end.as_secs_f64()
            );
            // Verify: the repaired schedule must produce bit-identical
            // results to the fault-free plan.
            let repaired = pimnet::schedule::repair::repair(&s, &faults)
                .map_err(|e| format!("repair succeeded in the timeline but not on re-run: {e}"))?;
            let init = |id: pim_arch::geometry::DpuId| vec![u64::from(id.0) + 1; elems];
            let mut clean_m = pimnet::exec::ExecMachine::init(&s, init);
            clean_m.run(&s, pimnet::exec::ReduceOp::Sum);
            let mut rep_m = pimnet::exec::ExecMachine::init(&repaired.schedule, init);
            rep_m.run(&repaired.schedule, pimnet::exec::ReduceOp::Sum);
            println!(
                "  exec: repaired result bit-identical to fault-free run: {}",
                clean_m == rep_m
            );
            if clean_m != rep_m {
                return Err("repaired run diverged from the clean run".into());
            }
        }
        Err(e) => {
            println!("  repair failed: {e}");
            // Show where the ladder lands instead.
            let plan =
                pimnet::resilience::plan_degraded(kind, &g, elems, 4, &injector, sys.system())
                    .map_err(|e| e.to_string())?;
            println!("  degradation ladder lands on: {}", plan.tier_name());
            for e in plan.error_trail() {
                println!("    trail: {e}");
            }
        }
    }
    if probe.is_active() {
        println!("{}", probe.metrics.snapshot().render());
    }
    Ok(())
}

/// Analyzes one schedule without executing it. Under permanent faults the
/// schedule is repaired first and the *repaired* schedule is proven, so
/// the rewrite is never trusted. Returns the report plus an optional
/// context note for the human output.
fn lint_one(
    kind: CollectiveKind,
    g: &pim_arch::geometry::PimGeometry,
    elems: usize,
    injector: &pim_faults::FaultInjector,
    incremental: bool,
) -> Result<(pimnet::analysis::AnalysisReport, Option<String>), String> {
    let s = CommSchedule::build(kind, g, elems, 4).map_err(|e| e.to_string())?;
    let batch = |s: &CommSchedule| -> pimnet::analysis::AnalysisReport {
        if incremental {
            // The streaming verifier's report is byte-identical to
            // `run_all` — the differential suite pins this.
            pimnet::analysis::verify_full(s).report
        } else {
            pimnet::analysis::run_all(s)
        }
    };
    if !injector.has_permanent_faults() {
        return Ok((batch(&s), None));
    }
    let faults = injector.permanent_faults(g.ranks_per_channel, g.chips_per_rank, g.banks_per_chip);
    if faults.is_empty() {
        return Ok((batch(&s), None));
    }
    let unusable = pimnet::schedule::repair::unusable_dpus(g, &faults);
    if !unusable.is_empty() {
        return Err(format!(
            "{} DPU(s) unreachable under these faults ({unusable:?}); repair cannot \
             keep every participant, so there is no full-size schedule to lint",
            unusable.len()
        ));
    }
    let r =
        pimnet::schedule::repair::repair(&s, &faults).map_err(|e| format!("repair failed: {e}"))?;
    let repair_note = format!(
        "linting repaired schedule ({} rerouted, {} remapped, +{} steps)",
        r.report.rerouted_transfers, r.report.remapped_transfers, r.report.extra_steps
    );
    if incremental {
        // Prove the base once, then re-prove the repair by delta: only
        // the dirtied steps and their state-dependent suffix re-lint.
        let base = pimnet::analysis::verify_full(&s);
        let (summary, delta) = pimnet::analysis::reverify_repair(&base, &r);
        let note = format!(
            "{repair_note}\nincremental: {} of {} step(s) reused, {} re-linted{}",
            delta.reused(),
            delta.steps_total,
            delta.relinted,
            if delta.reused_final {
                ", result check reused"
            } else {
                ""
            }
        );
        return Ok((summary.report.clone(), Some(note)));
    }
    Ok((pimnet::analysis::run_all(&r.schedule), Some(repair_note)))
}

fn lint(flags: &Flags) -> Result<(), String> {
    warn_unknown(
        flags,
        &[
            "kind",
            "dpus",
            "elems",
            "json",
            "all-presets",
            "incremental",
            "perm-faults",
            "fault-seed",
            "fault-config",
        ],
    );
    let json = flags.get_or("json", "false").eq_ignore_ascii_case("true");
    let incremental = flags
        .get_or("incremental", "false")
        .eq_ignore_ascii_case("true");
    if flags
        .get_or("all-presets", "false")
        .eq_ignore_ascii_case("true")
    {
        return lint_all_presets(json);
    }
    let kind = parse_kind(flags.get_or("kind", "allreduce"))?;
    let dpus: u32 = flags.num_or("dpus", 64)?;
    let elems: usize = flags.num_or("elems", 1024)?;
    let injector = fault_injector(flags)?;
    let sys = system_for(dpus)?;
    let (report, note) = lint_one(kind, &sys.system().geometry, elems, &injector, incremental)?;
    if json {
        println!("{}", report.to_json());
    } else {
        if let Some(n) = note {
            println!("{n}");
        }
        println!("{report}");
    }
    if report.has_errors() {
        Err(format!("lint failed: {} error(s)", report.error_count()))
    } else {
        Ok(())
    }
}

/// Lints every collective on the paper's preset geometries (Tables
/// II/IV/VI: 8/64/256 DPUs at two payload sizes), then re-proves repaired
/// schedules under sampled permanent-fault storms. Storm scenarios whose
/// faults make DPUs unreachable are skipped with a note — there repair
/// cannot keep every participant and the ladder shrinks instead.
///
/// The matrix itself lives in [`pimnet::analysis::presets`] (shared with
/// the `perf_gate` harness) and fans out over `pim_sim::par`
/// (`PIMNET_THREADS` workers); ordered result collection keeps the
/// output byte-identical to the sequential run.
fn lint_all_presets(json: bool) -> Result<(), String> {
    use pimnet::analysis::presets;
    let results = pim_sim::par::map_ordered(presets::cases(), |case| (case, case.run()));
    let mut failures = 0usize;
    let mut checked = 0usize;
    for (case, result) in results {
        match result {
            Ok(report) => {
                checked += 1;
                if report.has_errors() {
                    failures += 1;
                }
                if json {
                    println!("{}", report.to_json());
                } else if report.is_clean() {
                    println!("ok   {}", case.label());
                } else {
                    println!("FAIL {}\n{report}", case.label());
                }
            }
            // Unreachable DPUs: no full-size schedule exists for this
            // storm. A clean preset failing to build is a real error.
            Err(e) if case.storm_seed.is_some() => {
                if !json {
                    println!("skip {}: {e}", case.label());
                }
            }
            Err(e) => return Err(e),
        }
    }
    if failures > 0 {
        Err(format!("lint failed on {failures} of {checked} preset(s)"))
    } else {
        if !json {
            println!("all {checked} linted preset(s) clean");
        }
        Ok(())
    }
}

/// Runs one collective end-to-end (schedule cache, timing engine,
/// functional executor — plus fault handling when the injector is active)
/// with an enabled probe, and returns the drained trace and metrics.
fn trace_one(
    kind: CollectiveKind,
    geometry: &pim_arch::geometry::PimGeometry,
    elems: usize,
    injector: &pim_faults::FaultInjector,
) -> Result<(pim_sim::Trace, pim_sim::MetricsReport), String> {
    let probe = pim_sim::Probe::enabled();
    let timing = pimnet::timing::TimingModel::paper();
    let s = pimnet::schedule::cache::build_cached_probed(kind, geometry, elems, 4, &probe)
        .map_err(|e| e.to_string())?;
    let init = |id: pim_arch::geometry::DpuId| vec![u64::from(id.0) + 1; elems];
    let mut machine = pimnet::exec::ExecMachine::init(&s, init);
    if injector.is_active() {
        pimnet::timeline::Timeline::build_with_faults_probed(&s, &timing, injector, &probe)
            .map_err(|e| e.to_string())?;
        machine
            .run_with_faults_probed(&s, pimnet::exec::ReduceOp::Sum, injector, &probe)
            .map_err(|e| e.to_string())?;
    } else {
        let _ = pimnet::timeline::Timeline::build_probed(&s, &timing, &probe);
        machine.run_probed(&s, pimnet::exec::ReduceOp::Sum, &probe);
    }
    Ok((probe.trace.drain(), probe.metrics.snapshot()))
}

fn trace(flags: &Flags) -> Result<(), String> {
    warn_unknown(
        flags,
        &[
            "kind",
            "dpus",
            "elems",
            "out",
            "csv",
            "fault-seed",
            "fault-config",
            "ber",
            "straggler-prob",
            "dead",
            "perm-faults",
        ],
    );
    let kinds = parse_kinds(flags.get_or("kind", "all"))?;
    let dpus: u32 = flags.num_or("dpus", 8)?;
    let elems: usize = flags.num_or("elems", 64)?;
    let injector = fault_injector(flags)?;
    let sys = system_for(dpus)?;
    let g = sys.system().geometry;
    // Fan the kinds out over the deterministic pool; ordered collection
    // keeps the export byte-identical at any PIMNET_THREADS (CI diffs it).
    let results =
        pim_sim::par::map_ordered(kinds, |kind| (kind, trace_one(kind, &g, elems, &injector)));
    let mut parts: Vec<(String, pim_sim::Trace)> = Vec::new();
    let mut merged = pim_sim::MetricsReport::new();
    for (kind, result) in results {
        let (trace, report) = result?;
        merged.merge(&report);
        parts.push((format!("{kind}").to_ascii_lowercase(), trace));
    }
    let refs: Vec<(&str, &pim_sim::Trace)> = parts.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let json = pim_sim::trace::chrome_json(&refs);
    // Without --out, stdout carries the JSON and the summary moves to
    // stderr so the output stays pipeable.
    let to_file = flags.require("out").is_ok();
    let say = |line: String| {
        if to_file {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    };
    for (name, t) in &parts {
        say(format!(
            "  {name:<14} {:>5} events ({} dropped), fingerprint {:#018x}",
            t.events.len(),
            t.dropped,
            t.fingerprint()
        ));
    }
    say(format!("metrics:\n{}", merged.render()));
    if let Ok(path) = flags.require("csv") {
        let mut csv = String::new();
        for (name, t) in &parts {
            csv.push_str(&format!("# part {name}\n"));
            csv.push_str(&t.to_csv());
        }
        std::fs::write(path, csv).map_err(|e| e.to_string())?;
        say(format!("csv -> {path}"));
    }
    if let Ok(path) = flags.require("out") {
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        println!("chrome trace ({} part(s)) -> {path}", parts.len());
    } else {
        print!("{json}");
    }
    Ok(())
}

/// Per-DPU input every soak run (and its fault-free reference) starts
/// from — distinct per node and per element so divergence cannot cancel.
fn soak_input(id: pim_arch::geometry::DpuId, elems: usize) -> Vec<u64> {
    (0..elems)
        .map(|e| (u64::from(id.0) + 1) * 1_000 + e as u64)
        .collect()
}

/// Everything one soak seed needs, shared immutably across the worker
/// pool so a seed's outcome is a pure function of `(ctx, seed)`.
struct SoakCtx<'a> {
    kind: CollectiveKind,
    geometry: &'a pim_arch::geometry::PimGeometry,
    system: &'a SystemConfig,
    timing: &'a pimnet::timing::TimingModel,
    elems: usize,
    base: &'a pim_faults::FaultConfig,
    /// Per-component storm probability (0 disables sampling).
    rate: f64,
    horizon_ps: u64,
    /// Fault-free schedule + result that tier <= 1 runs must reproduce.
    reference: &'a (CommSchedule, pimnet::exec::ExecMachine<u64>),
}

/// What one soak seed did — the summary, the CSV artifact and the
/// soundness verdict all read these same numbers.
struct SoakRow {
    seed: u64,
    /// Ladder tier the recovery ended on; `None` when the scenario was
    /// unplannable outright (a typed error, counted separately).
    tier: Option<u8>,
    stats: pimnet::recovery::RecoveryStats,
    end_ps: u64,
    /// Result checked bit-identical to the fault-free reference (only
    /// ever claimed at tier <= 1; deeper tiers change the participant set).
    verified: bool,
    /// First soundness violation observed; any `Some` fails the command.
    unsound: Option<String>,
    /// Typed error trail, rendered.
    errors: Vec<String>,
}

/// Runs one seed of the recovery soak and verdicts its end state.
fn soak_seed(ctx: &SoakCtx<'_>, seed: u64) -> SoakRow {
    let mut cfg = ctx.base.clone();
    cfg.seed = seed;
    if ctx.rate > 0.0 {
        let rates = pim_faults::TimelineRates {
            segment_arrival_prob: ctx.rate,
            port_arrival_prob: ctx.rate,
            // Rank deaths take out whole swaths; keep them rarer so the
            // matrix exercises the upper tiers too, not just fallback.
            rank_arrival_prob: ctx.rate / 4.0,
            flap_prob: ctx.rate,
            burst_prob: ctx.rate,
            burst_ber: 0.8,
        };
        let g = ctx.geometry;
        let storm = pim_faults::FaultTimeline::sample(
            seed,
            g.ranks_per_channel,
            g.chips_per_rank,
            g.banks_per_chip,
            ctx.horizon_ps,
            &rates,
        );
        cfg.timeline.arrivals.extend(storm.arrivals);
        cfg.timeline.flaps.extend(storm.flaps);
        cfg.timeline.bursts.extend(storm.bursts);
        cfg.timeline.normalize();
    }
    let injector = pim_faults::FaultInjector::new(cfg);
    let req = pimnet::recovery::RecoveryRequest {
        kind: ctx.kind,
        geometry: ctx.geometry,
        elems_per_node: ctx.elems,
        elem_bytes: 8,
        op: pimnet::exec::ReduceOp::Sum,
        injector: &injector,
        system: ctx.system,
        timing: ctx.timing,
        config: pimnet::recovery::RecoveryConfig::default(),
    };
    let elems = ctx.elems;
    let out = match pimnet::recovery::run_recovered::<u64>(&req, |id| soak_input(id, elems)) {
        Ok(out) => out,
        // Unplannable outright (e.g. every rank already dead): a typed
        // end state of its own, not a ladder tier.
        Err(e) => {
            return SoakRow {
                seed,
                tier: None,
                stats: pimnet::recovery::RecoveryStats::default(),
                end_ps: 0,
                verified: false,
                unsound: None,
                errors: vec![e.to_string()],
            }
        }
    };
    let (ref_s, ref_m) = ctx.reference;
    let mut verified = false;
    let mut unsound = None;
    match (out.plan_tier, out.machine.as_ref()) {
        (0 | 1, Some(m)) => {
            if ref_s
                .participants()
                .all(|id| m.result(ref_s, id) == ref_m.result(ref_s, id))
            {
                verified = true;
            } else {
                unsound = Some("tier <= 1 result diverged from the fault-free reference".into());
            }
        }
        (0 | 1, None) => unsound = Some("tier <= 1 ended without a result".into()),
        (2, Some(_)) => {}
        (2, None) => unsound = Some("shrunk plan ended without a result".into()),
        (_, Some(_)) => unsound = Some("host fallback still returned a PIM-side result".into()),
        (_, None) => {
            if out.error_trail.is_empty() {
                unsound = Some("host fallback carried no typed error trail".into());
            }
        }
    }
    SoakRow {
        seed,
        tier: Some(out.plan_tier),
        stats: out.stats,
        end_ps: out.end_ps,
        verified,
        unsound,
        errors: out.error_trail.iter().map(ToString::to_string).collect(),
    }
}

fn soak(flags: &Flags) -> Result<(), String> {
    warn_unknown(
        flags,
        &[
            "kind",
            "dpus",
            "elems",
            "seeds",
            "timeline-rate",
            "horizon-ps",
            "csv",
            "fault-seed",
            "fault-config",
            "ber",
            "straggler-prob",
            "dead",
            "perm-faults",
            "arrivals",
            "flaps",
            "bursts",
            "watchdog-ps",
            "retry-budget",
            "backoff-base-ps",
        ],
    );
    let kind = parse_kind(flags.get_or("kind", "allreduce"))?;
    let dpus: u32 = flags.num_or("dpus", 16)?;
    let elems: usize = flags.num_or("elems", 64)?;
    let seeds: u64 = flags.num_or("seeds", 32)?;
    if seeds == 0 {
        return Err("flag --seeds: need at least one seed".into());
    }
    let rate: f64 = flags.num_or("timeline-rate", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!(
            "flag --timeline-rate: '{rate}' is not a probability"
        ));
    }
    let horizon_ps: u64 = flags.num_or("horizon-ps", 50_000_000)?;
    let base = fault_injector(flags)?.config().clone();
    let sys = system_for(dpus)?;
    let g = sys.system().geometry;
    let timing = pimnet::timing::TimingModel::paper();
    let ref_s = CommSchedule::build(kind, &g, elems, 8).map_err(|e| e.to_string())?;
    let ref_m = pimnet::exec::run_collective(&ref_s, pimnet::exec::ReduceOp::Sum, |id| {
        soak_input(id, elems)
    })
    .map_err(|e| e.to_string())?;
    let reference = (ref_s, ref_m);
    let ctx = SoakCtx {
        kind,
        geometry: &g,
        system: sys.system(),
        timing: &timing,
        elems,
        base: &base,
        rate,
        horizon_ps,
        reference: &reference,
    };
    let seed_list: Vec<u64> = (0..seeds).map(|i| base.seed.wrapping_add(i)).collect();
    // Fan the seeds out; ordered collection keeps the summary and the
    // CSV byte-identical at any PIMNET_THREADS (CI diffs 1 vs 4 workers).
    let rows = pim_sim::par::map_ordered(seed_list, |seed| soak_seed(&ctx, seed));

    let mut tiers = [0u64; 4];
    let mut unplannable = 0u64;
    let mut eligible = 0u64;
    let mut verified = 0u64;
    let mut totals = pimnet::recovery::RecoveryStats::default();
    let mut worst_end = 0u64;
    let mut violations: Vec<String> = Vec::new();
    for r in &rows {
        match r.tier {
            Some(t) => tiers[usize::from(t.min(3))] += 1,
            None => unplannable += 1,
        }
        if matches!(r.tier, Some(0 | 1)) {
            eligible += 1;
        }
        verified += u64::from(r.verified);
        totals.steps_executed += r.stats.steps_executed;
        totals.step_retries += r.stats.step_retries;
        totals.backoff_ps += r.stats.backoff_ps;
        totals.replans += r.stats.replans;
        totals.quarantines += r.stats.quarantines;
        totals.arrivals_applied += r.stats.arrivals_applied;
        totals.checkpoints += r.stats.checkpoints;
        worst_end = worst_end.max(r.end_ps);
        if let Some(why) = &r.unsound {
            violations.push(format!("seed {}: {why}", r.seed));
        }
    }
    println!(
        "recovery soak: {kind} on {dpus} DPUs, {elems} elements/DPU, {seeds} seed(s) from {}",
        base.seed
    );
    println!(
        "  tiers: full {}  repaired {}  shrunk {}  host-fallback {}  unplannable {}",
        tiers[0], tiers[1], tiers[2], tiers[3], unplannable
    );
    println!("  verified bit-identical at tier <= 1: {verified}/{eligible}");
    println!(
        "  totals: {} steps, {} retries ({} ps backing off), {} replans, \
         {} quarantines, {} arrivals applied, {} checkpoints",
        totals.steps_executed,
        totals.step_retries,
        totals.backoff_ps,
        totals.replans,
        totals.quarantines,
        totals.arrivals_applied,
        totals.checkpoints
    );
    println!("  worst recovered clock: {:.1} us", worst_end as f64 / 1e6);
    if let Ok(path) = flags.require("csv") {
        let mut csv = String::from(
            "seed,tier,steps,retries,backoff_ps,replans,quarantines,arrivals,\
             checkpoints,end_ps,verified,errors\n",
        );
        for r in &rows {
            let tier = r.tier.map_or_else(|| "-".to_string(), |t| t.to_string());
            csv.push_str(&format!(
                "{},{tier},{},{},{},{},{},{},{},{},{},{}\n",
                r.seed,
                r.stats.steps_executed,
                r.stats.step_retries,
                r.stats.backoff_ps,
                r.stats.replans,
                r.stats.quarantines,
                r.stats.arrivals_applied,
                r.stats.checkpoints,
                r.end_ps,
                r.verified,
                r.errors.join("; ").replace(',', ";")
            ));
        }
        std::fs::write(path, csv).map_err(|e| e.to_string())?;
        println!("csv -> {path}");
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "soak found {} unsound run(s): {}",
            violations.len(),
            violations.join("; ")
        ))
    }
}

/// Flags shared by `serve` and `replay` (fault flags ride along so a
/// storm scenario replays from the same command line).
const SERVE_FLAGS: &[&str] = &[
    "tenants",
    "seed",
    "horizon-us",
    "policy",
    "queue-cap",
    "elems",
    "chunk-elems",
    "mean-gap-us",
    "deadline-us",
    "priority-spread",
    "timeline-rate",
    "log",
    "metrics",
    "fault-seed",
    "fault-config",
    "ber",
    "straggler-prob",
    "dead",
    "perm-faults",
    "arrivals",
    "flaps",
    "bursts",
    "watchdog-ps",
    "retry-budget",
    "backoff-base-ps",
];

/// Builds a `ServeConfig` from the shared serve/replay flag set, so the
/// two commands cannot drift apart: a replay is the same construction.
fn serve_config(flags: &Flags) -> Result<pimnet::serve::ServeConfig, String> {
    let tenants: usize = flags.num_or("tenants", 4)?;
    let seed: u64 = flags.num_or("seed", 1)?;
    let mut cfg = pimnet::serve::ServeConfig::uniform(tenants, seed);
    cfg.horizon_ps = flags
        .num_or("horizon-us", 2_000u64)?
        .saturating_mul(1_000_000);
    cfg.policy = pimnet::serve::QueuePolicy::parse(flags.get_or("policy", "fifo"))?;
    cfg.chunk_elems = flags.num_or("chunk-elems", cfg.chunk_elems)?;
    let queue_cap: usize = flags.num_or("queue-cap", 8)?;
    let elems: usize = flags.num_or("elems", 256)?;
    let mean_gap_ps = flags
        .num_or("mean-gap-us", 100u64)?
        .saturating_mul(1_000_000);
    let deadline_ps = flags
        .num_or("deadline-us", 2_000u64)?
        .saturating_mul(1_000_000);
    let spread = flags
        .get_or("priority-spread", "false")
        .eq_ignore_ascii_case("true");
    for (i, t) in cfg.tenants.iter_mut().enumerate() {
        t.queue_capacity = queue_cap;
        t.elems_per_node = elems;
        t.mean_gap_ps = mean_gap_ps;
        t.deadline_ps = deadline_ps;
        if spread {
            t.priority = 1 + (i % 3) as u8;
        }
    }
    cfg.faults = fault_injector(flags)?.config().clone();
    let rate: f64 = flags.num_or("timeline-rate", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!(
            "flag --timeline-rate: '{rate}' is not a probability"
        ));
    }
    // An empty tenant list is serve's own typed config error; don't
    // index into it for the storm geometry here.
    if rate > 0.0 && !cfg.tenants.is_empty() {
        let rates = pim_faults::TimelineRates {
            segment_arrival_prob: rate,
            port_arrival_prob: rate,
            rank_arrival_prob: rate / 4.0,
            flap_prob: rate,
            burst_prob: rate,
            burst_ber: 0.8,
        };
        let g = &cfg.tenants[0].geometry;
        let storm = pim_faults::FaultTimeline::sample(
            seed,
            g.ranks_per_channel,
            g.chips_per_rank,
            g.banks_per_chip,
            cfg.horizon_ps,
            &rates,
        );
        cfg.faults.timeline.arrivals.extend(storm.arrivals);
        cfg.faults.timeline.flaps.extend(storm.flaps);
        cfg.faults.timeline.bursts.extend(storm.bursts);
        cfg.faults.timeline.normalize();
    }
    Ok(cfg)
}

/// Re-verifies the serving soundness contract on a finished report.
/// The engine guarantees these by construction; the CLI re-proves them
/// from the outside so a regression fails the command, not just a test.
fn serve_violations(
    cfg: &pimnet::serve::ServeConfig,
    report: &pimnet::serve::ServeReport,
) -> Vec<String> {
    let mut violations = Vec::new();
    let arrivals = pimnet::serve::sample_arrivals(cfg);
    if report.log.len() != arrivals.len() {
        violations.push(format!(
            "request log has {} entries for {} sampled arrivals",
            report.log.len(),
            arrivals.len()
        ));
    }
    for (i, r) in report.log.iter().enumerate() {
        if r.request.id != i as u64 {
            violations.push(format!("log entry {i} carries request id {}", r.request.id));
            break;
        }
    }
    let mut level = 0u8;
    for s in &report.ladder {
        if s.level < level {
            violations.push(format!(
                "overload ladder dropped from {level} to {} at {} ps",
                s.level, s.at_ps
            ));
        }
        level = level.max(s.level);
    }
    let mut epochs = vec![0u64; cfg.tenants.len()];
    for q in &report.quarantines {
        let e = &mut epochs[q.tenant as usize];
        if q.epoch < *e {
            violations.push(format!(
                "tenant {} quarantine epoch regressed from {} to {}",
                q.tenant, *e, q.epoch
            ));
        }
        *e = q.epoch;
    }
    violations
}

fn serve(flags: &Flags) -> Result<(), String> {
    warn_unknown(flags, SERVE_FLAGS);
    let cfg = serve_config(flags)?;
    let probe = metrics_probe(flags);
    let report = pimnet::serve::serve_probed(&cfg, &probe).map_err(|e| e.to_string())?;
    println!(
        "serving: {} tenant(s), policy {}, seed {}, horizon {:.0} us",
        cfg.tenants.len(),
        cfg.policy.name(),
        cfg.seed,
        cfg.horizon_ps as f64 / 1e6
    );
    println!(
        "  requests {}: served {}  host-fallback {}  shed {}  quarantined {}",
        report.log.len(),
        report.count("served"),
        report.count("host-fallback"),
        report.count("shed"),
        report.count("quarantined")
    );
    println!(
        "  latency: p50 {:.1} us  p99 {:.1} us  throughput {:.1} collectives/s",
        report.percentile_ps(50.0) as f64 / 1e6,
        report.percentile_ps(99.0) as f64 / 1e6,
        report.collectives_per_sec()
    );
    println!(
        "  overload ladder peak: level {} ({} step(s)); quarantine events: {}",
        report.peak_level(),
        report.ladder.len(),
        report.quarantines.len()
    );
    println!("  end clock: {:.1} us", report.end_ps as f64 / 1e6);
    if probe.is_active() {
        println!("{}", probe.metrics.snapshot().render());
    }
    if let Ok(path) = flags.require("log") {
        std::fs::write(path, report.render_log(&cfg)).map_err(|e| e.to_string())?;
        println!("request log -> {path}");
    }
    let violations = serve_violations(&cfg, &report);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "serve found {} soundness violation(s): {}",
            violations.len(),
            violations.join("; ")
        ))
    }
}

fn replay(flags: &Flags) -> Result<(), String> {
    warn_unknown(flags, SERVE_FLAGS);
    let path = flags.require("log")?;
    let pinned = std::fs::read_to_string(path)
        .map_err(|e| format!("flag --log: cannot read '{path}': {e}"))?;
    let cfg = serve_config(flags)?;
    let report = pimnet::serve::serve(&cfg).map_err(|e| e.to_string())?;
    let fresh = report.render_log(&cfg);
    if fresh == pinned {
        println!(
            "replay verified: {} request(s), {} bytes match {path}",
            report.log.len(),
            fresh.len()
        );
        return Ok(());
    }
    let diverged = fresh
        .lines()
        .zip(pinned.lines())
        .position(|(a, b)| a != b)
        .map_or_else(
            || fresh.lines().count().min(pinned.lines().count()) + 1,
            |i| i + 1,
        );
    Err(format!(
        "replay diverged from {path} at line {diverged}: the pinned log is \
         {} byte(s), the fresh run produced {}",
        pinned.len(),
        fresh.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        dispatch(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(parse_kind("AllReduce").unwrap(), CollectiveKind::AllReduce);
        assert_eq!(parse_kind("a2a").unwrap(), CollectiveKind::AllToAll);
        assert!(parse_kind("nope").is_err());
    }

    #[test]
    fn backend_parsing() {
        assert_eq!(parse_backends("all").unwrap().len(), 5);
        assert_eq!(
            parse_backends("BP").unwrap(),
            vec![BackendKind::Baseline, BackendKind::Pimnet]
        );
        assert!(parse_backends("X").is_err());
    }

    #[test]
    fn collective_command_runs() {
        run(&[
            "collective",
            "--kind",
            "allreduce",
            "--kb",
            "4",
            "--dpus",
            "64",
            "--backend",
            "BP",
        ])
        .unwrap();
    }

    #[test]
    fn schedule_command_runs() {
        run(&["schedule", "--kind", "rs", "--dpus", "32", "--elems", "256"]).unwrap();
    }

    #[test]
    fn noc_command_runs() {
        run(&["noc", "--kind", "ar", "--dpus", "16", "--elems", "256"]).unwrap();
    }

    #[test]
    fn noc_command_accepts_fault_flags() {
        run(&[
            "noc",
            "--kind",
            "ar",
            "--dpus",
            "8",
            "--elems",
            "128",
            "--fault-seed",
            "7",
        ])
        .unwrap();
    }

    #[test]
    fn faults_command_runs_clean_and_faulty() {
        run(&["faults", "--kind", "ar", "--dpus", "16", "--elems", "128"]).unwrap();
        run(&[
            "faults",
            "--kind",
            "ar",
            "--dpus",
            "16",
            "--elems",
            "128",
            "--fault-seed",
            "42",
            "--ber",
            "0.05",
            "--straggler-prob",
            "0.25",
        ])
        .unwrap();
    }

    #[test]
    fn faults_command_degrades_around_dead_dpus() {
        run(&[
            "faults", "--kind", "ar", "--dpus", "16", "--elems", "64", "--dead", "1,4,9",
        ])
        .unwrap();
    }

    #[test]
    fn faults_command_rejects_bad_probabilities() {
        assert!(run(&["faults", "--kind", "ar", "--ber", "1.5"]).is_err());
        assert!(run(&["faults", "--kind", "ar", "--dead", "x"]).is_err());
    }

    #[test]
    fn repair_command_reroutes_and_remaps() {
        run(&[
            "repair",
            "--kind",
            "ar",
            "--dpus",
            "64",
            "--elems",
            "256",
            "--perm-faults",
            "r0c0b2E,r0c3tx",
        ])
        .unwrap();
        // Identity case (no faults) also runs.
        run(&["repair", "--kind", "a2a", "--dpus", "16", "--elems", "64"]).unwrap();
    }

    #[test]
    fn repair_command_reports_the_ladder_on_dead_ranks() {
        // A dead rank defeats repair; the command must surface the ladder
        // tier instead of erroring out.
        run(&[
            "repair",
            "--kind",
            "ar",
            "--dpus",
            "256",
            "--elems",
            "64",
            "--perm-faults",
            "rank1",
        ])
        .unwrap();
    }

    #[test]
    fn faults_command_accepts_permanent_faults() {
        run(&[
            "faults",
            "--kind",
            "ar",
            "--dpus",
            "64",
            "--elems",
            "128",
            "--perm-faults",
            "r0c0b1W",
        ])
        .unwrap();
    }

    #[test]
    fn repair_command_rejects_bad_tokens() {
        assert!(run(&["repair", "--perm-faults", "bogus"]).is_err());
    }

    #[test]
    fn lint_command_passes_clean_presets() {
        run(&["lint", "--kind", "ar", "--dpus", "16", "--elems", "128"]).unwrap();
        run(&[
            "lint", "--kind", "ag", "--dpus", "8", "--elems", "64", "--json", "true",
        ])
        .unwrap();
    }

    #[test]
    fn lint_command_incremental_matches_batch() {
        // The streaming verifier must accept exactly what the batch
        // analyzer accepts, on both clean and repaired schedules.
        run(&[
            "lint",
            "--kind",
            "ar",
            "--dpus",
            "16",
            "--elems",
            "128",
            "--incremental",
            "true",
        ])
        .unwrap();
        run(&[
            "lint",
            "--kind",
            "rs",
            "--dpus",
            "64",
            "--elems",
            "64",
            "--incremental",
            "true",
            "--perm-faults",
            "r0c0b2E",
        ])
        .unwrap();
    }

    #[test]
    fn lint_command_proves_repaired_schedules() {
        run(&[
            "lint",
            "--kind",
            "ar",
            "--dpus",
            "64",
            "--elems",
            "128",
            "--perm-faults",
            "r0c0b2E,r0c3tx",
        ])
        .unwrap();
    }

    #[test]
    fn lint_command_rejects_unreachable_fault_sets() {
        // A dead rank leaves DPUs no repair can reach: there is no
        // full-size schedule to lint, and the command must say so.
        assert!(run(&[
            "lint",
            "--kind",
            "ar",
            "--dpus",
            "256",
            "--elems",
            "64",
            "--perm-faults",
            "rank1",
        ])
        .is_err());
    }

    #[test]
    fn trace_command_writes_chrome_json_and_csv() {
        let dir = std::env::temp_dir().join("pimnet-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("t.json");
        let csv = dir.join("t.csv");
        run(&[
            "trace",
            "--kind",
            "allreduce,a2a",
            "--dpus",
            "8",
            "--elems",
            "64",
            "--out",
            json.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ])
        .unwrap();
        let j = std::fs::read_to_string(&json).unwrap();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"allreduce\"") && j.contains("\"all-to-all\""));
        let c = std::fs::read_to_string(&csv).unwrap();
        assert!(c.contains("# part allreduce"));
        assert!(c.contains("barrier"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_command_rejects_bad_kinds() {
        assert!(run(&["trace", "--kind", "allreduce,nope"]).is_err());
    }

    #[test]
    fn metrics_flag_is_accepted_by_instrumented_commands() {
        run(&[
            "faults",
            "--kind",
            "ar",
            "--dpus",
            "16",
            "--elems",
            "64",
            "--metrics",
        ])
        .unwrap();
        run(&[
            "repair",
            "--kind",
            "ar",
            "--dpus",
            "16",
            "--elems",
            "64",
            "--metrics",
        ])
        .unwrap();
        run(&[
            "schedule",
            "--kind",
            "ar",
            "--dpus",
            "16",
            "--elems",
            "64",
            "--metrics",
        ])
        .unwrap();
        run(&[
            "noc",
            "--kind",
            "ar",
            "--dpus",
            "8",
            "--elems",
            "128",
            "--metrics",
        ])
        .unwrap();
    }

    #[test]
    fn soak_command_runs_a_clean_matrix() {
        run(&[
            "soak", "--kind", "ar", "--dpus", "8", "--elems", "16", "--seeds", "2",
        ])
        .unwrap();
    }

    #[test]
    fn soak_command_recovers_a_declared_timeline_and_writes_csv() {
        let dir = std::env::temp_dir().join("pimnet-cli-soak-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("soak.csv");
        run(&[
            "soak",
            "--kind",
            "ar",
            "--dpus",
            "8",
            "--elems",
            "16",
            "--seeds",
            "2",
            "--bursts",
            "ber=1.0@t=0ps+1000000ps",
            "--backoff-base-ps",
            "600000",
            "--csv",
            csv.to_str().unwrap(),
        ])
        .unwrap();
        let c = std::fs::read_to_string(&csv).unwrap();
        assert!(c.starts_with("seed,tier,"));
        assert_eq!(c.lines().count(), 3, "one header + one row per seed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_command_samples_seeded_storms() {
        run(&[
            "soak",
            "--dpus",
            "8",
            "--elems",
            "16",
            "--seeds",
            "3",
            "--timeline-rate",
            "0.3",
            "--horizon-ps",
            "50000000",
        ])
        .unwrap();
    }

    #[test]
    fn soak_command_rejects_bad_inputs() {
        assert!(run(&["soak", "--timeline-rate", "1.5"]).is_err());
        assert!(run(&["soak", "--seeds", "0"]).is_err());
        assert!(run(&["soak", "--bursts", "nonsense"]).is_err());
        assert!(run(&["soak", "--arrivals", "r0c0b0E"]).is_err());
        assert!(run(&["soak", "--flaps", "r0c0b0E@t=1ps"]).is_err());
    }

    #[test]
    fn serve_command_runs_and_writes_the_log() {
        let dir = std::env::temp_dir().join("pimnet-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("serve_log.csv");
        run(&[
            "serve",
            "--tenants",
            "2",
            "--elems",
            "64",
            "--horizon-us",
            "500",
            "--log",
            log.to_str().unwrap(),
        ])
        .unwrap();
        let c = std::fs::read_to_string(&log).unwrap();
        assert!(c.starts_with("id,tenant,seq,"));
        assert!(c.lines().count() > 1, "some requests must have arrived");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_command_verifies_and_catches_divergence() {
        let dir = std::env::temp_dir().join("pimnet-cli-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("serve_log.csv");
        let knobs = [
            "--tenants",
            "2",
            "--elems",
            "64",
            "--horizon-us",
            "500",
            "--log",
            log.to_str().unwrap(),
        ];
        let mut serve_args = vec!["serve"];
        serve_args.extend_from_slice(&knobs);
        run(&serve_args).unwrap();

        let mut replay_args = vec!["replay"];
        replay_args.extend_from_slice(&knobs);
        run(&replay_args).unwrap();

        // A different seed must not byte-match the pinned log.
        let mut skewed = replay_args.clone();
        skewed.extend_from_slice(&["--seed", "99"]);
        assert!(run(&skewed).is_err());

        // Neither may a tampered log file.
        let pinned = std::fs::read_to_string(&log).unwrap();
        std::fs::write(&log, pinned.replace("served", "swerved")).unwrap();
        assert!(run(&replay_args).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_command_composes_with_fault_storms() {
        run(&[
            "serve",
            "--tenants",
            "2",
            "--elems",
            "64",
            "--horizon-us",
            "400",
            "--timeline-rate",
            "0.4",
        ])
        .unwrap();
    }

    #[test]
    fn serve_command_rejects_bad_inputs() {
        assert!(run(&["serve", "--policy", "random"]).is_err());
        assert!(run(&["serve", "--tenants", "0"]).is_err());
        assert!(run(&["serve", "--timeline-rate", "2.0"]).is_err());
        assert!(run(&["replay"]).is_err()); // --log is required
        assert!(run(&["replay", "--log", "/nonexistent/serve_log.csv"]).is_err());
    }

    #[test]
    fn bad_input_is_reported() {
        assert!(run(&["collective"]).is_err()); // missing --kind
        assert!(run(&["collective", "--kind", "ar", "--dpus", "100"]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["workload", "--name", "nope"]).is_err());
    }

    #[test]
    fn help_prints() {
        run(&["help"]).unwrap();
    }
}
