//! `pimnet` — command-line front end for the PIMnet simulator.
//!
//! ```text
//! pimnet-cli collective --kind allreduce --kb 32 [--dpus 256] [--backend P]
//! pimnet-cli workload   --name CC [--backend P]
//! pimnet-cli suite                        # every workload x every backend
//! pimnet-cli schedule   --kind a2a --dpus 64 --elems 1024
//! pimnet-cli noc        --kind a2a --dpus 64 --elems 2048 [--jitter-us 40]
//!                       [--fault-seed 7] [--fault-config faults.cfg]
//! pimnet-cli faults     --kind allreduce --dpus 64 --elems 1024
//!                       [--fault-seed 7] [--fault-config faults.cfg]
//!                       [--ber 0.01] [--straggler-prob 0.2] [--dead 3,17]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
