//! Minimal flag parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs; rejects stray positionals. A flag
    /// followed by another flag (or by nothing) is a bare boolean switch:
    /// `--all-presets` parses as `--all-presets true`.
    pub fn parse(argv: &[String]) -> Result<Flags, String> {
        let mut values = HashMap::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument '{arg}' (flags are --key value)"
                ));
            };
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_string(),
            };
            if values.insert(key.to_string(), value).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Flags { values })
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map_or(default, String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: '{v}' is not a valid number")),
        }
    }

    /// Flags that were provided but never consumed by the command.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Flags, String> {
        Flags::parse(&s.iter().map(|x| (*x).to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs() {
        let f = parse(&["--kind", "allreduce", "--kb", "32"]).unwrap();
        assert_eq!(f.require("kind").unwrap(), "allreduce");
        assert_eq!(f.num_or("kb", 0u64).unwrap(), 32);
        assert_eq!(f.get_or("backend", "P"), "P");
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--a", "1", "--a", "2"]).is_err());
        let f = parse(&["--kb", "x"]).unwrap();
        assert!(f.num_or("kb", 0u64).is_err());
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let f = parse(&["--all-presets", "--kind", "allreduce"]).unwrap();
        assert_eq!(f.get_or("all-presets", "false"), "true");
        assert_eq!(f.require("kind").unwrap(), "allreduce");
        let f = parse(&["--kind", "allreduce", "--json"]).unwrap();
        assert_eq!(f.get_or("json", "false"), "true");
        // The explicit form still works.
        let f = parse(&["--all-presets", "true"]).unwrap();
        assert_eq!(f.get_or("all-presets", "false"), "true");
    }
}
